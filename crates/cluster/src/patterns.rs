//! Costing of the communication patterns the application benchmarks use.
//!
//! Each application proxy either performs its communication through the
//! simulated MPI runtime (which costs individual messages with
//! [`NetModel::ptp_time`]) or — for scaling studies far beyond the number of
//! ranks a development machine can host as threads — describes one
//! time-step/iteration of its communication as a [`CommPattern`] costed
//! analytically here. Both paths use the same link model, so they agree.

use crate::machine::Machine;
use crate::netmodel::NetModel;
use crate::topology::{Distance, Placement};

/// One iteration's worth of communication of an application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CommPattern {
    /// Nearest-neighbour halo exchange on a 3D rank grid: each rank
    /// exchanges two faces per dimension (GROMACS short-range, ICON,
    /// ParFlow, NAStJA, PIConGPU fields).
    Halo3d {
        rank_dims: [u32; 3],
        bytes_per_face: [u64; 3],
    },
    /// Halo exchange on a 4D rank grid (lattice QCD).
    Halo4d {
        rank_dims: [u32; 4],
        bytes_per_face: u64,
    },
    /// Tree/ring allreduce of `bytes` per rank (CG dot products, gradient
    /// reductions).
    AllReduce { bytes: u64 },
    /// Ring allreduce of large gradient buffers (data-parallel training:
    /// each rank cycles 2·(P−1)/P·bytes through its slowest link).
    RingAllReduce { bytes: u64 },
    /// Personalized all-to-all with `bytes_per_pair` between every rank
    /// pair (distributed 3D-FFT transpose: GROMACS PME, Quantum ESPRESSO).
    AllToAll { bytes_per_pair: u64 },
    /// Allgather of `bytes_per_rank` from every rank (Arbor spike exchange,
    /// MMoCLIP embedding gather).
    AllGather { bytes_per_rank: u64 },
    /// Butterfly-style pairwise exchange over `stages` stages with stride
    /// doubling, moving `bytes_per_rank` each stage (JUQCS non-local
    /// gates: stage k pairs ranks differing in bit k).
    Butterfly { bytes_per_rank: u64, stages: u32 },
    /// Every rank in one half exchanges `bytes` with a partner in the other
    /// half, bidirectionally (LinkTest bisection test).
    PairwiseBisection { bytes: u64 },
    /// Point-to-point pipeline transfer of `bytes` between adjacent ranks
    /// (Megatron-LM pipeline parallelism).
    Pipeline { bytes: u64 },
}

/// Distance between a representative pair of ranks `stride` apart.
fn stride_distance(placement: &Placement, stride: u32) -> Distance {
    let p = placement.ranks();
    if p <= 1 || stride == 0 {
        return Distance::SameDevice;
    }
    // Use a node-aligned rank so that strides smaller than the
    // ranks-per-node count stay intra-node, as they do for the typical rank
    // of a block placement — near the middle, but low enough that the
    // partner `a + stride` still exists.
    let rpn = placement.ranks_per_node.max(1);
    let stride = stride.min(p - 1);
    let max_base = ((p - 1 - stride) / rpn) * rpn;
    let a = (((p / 2) / rpn) * rpn).min(max_base);
    let b = a + stride;
    placement.distance(a, b)
}

/// Cost (seconds per iteration) of `pattern` on `placement` under `net`.
pub fn pattern_time(pattern: CommPattern, placement: &Placement, net: &NetModel) -> f64 {
    let p = placement.ranks().max(1);
    let job_nodes = placement.machine.nodes;
    match pattern {
        CommPattern::Halo3d {
            rank_dims,
            bytes_per_face,
        } => halo_time(&rank_dims, &bytes_per_face, placement, net),
        CommPattern::Halo4d {
            rank_dims,
            bytes_per_face,
        } => {
            let faces = [bytes_per_face; 4];
            halo_time_nd(&rank_dims, &faces, placement, net)
        }
        CommPattern::AllReduce { bytes } => {
            if p == 1 {
                return 0.0;
            }
            // Recursive doubling: log2(P) stages over the worst link.
            let stages = (p as f64).log2().ceil();
            let worst = worst_distance(placement);
            stages * net.ptp_time(bytes, worst, job_nodes)
        }
        CommPattern::RingAllReduce { bytes } => {
            if p == 1 {
                return 0.0;
            }
            let worst = worst_distance(placement);
            let chunk = (bytes as f64 / p as f64).ceil() as u64;
            // 2·(P−1) steps of one chunk each.
            2.0 * (p - 1) as f64 * net.ptp_time(chunk, worst, job_nodes)
        }
        CommPattern::AllToAll { bytes_per_pair } => {
            if p == 1 {
                return 0.0;
            }
            // Linear (pairwise) algorithm: each rank serializes (P−1)
            // sends through its NIC; the off-node portion at network
            // bandwidth, the on-node portion at NVLink bandwidth.
            let rpn = placement.ranks_per_node as u64;
            let off_node = (p as u64).saturating_sub(rpn);
            let on_node = (rpn - 1).min(p as u64 - 1);
            let linear = off_node as f64
                * net.ptp_time(bytes_per_pair, off_node_distance(placement), job_nodes)
                + on_node as f64 * net.ptp_time(bytes_per_pair, Distance::IntraNode, job_nodes);
            // Bruck combining algorithm: ⌈log₂P⌉ rounds moving P/2
            // personalized payloads each — what MPI libraries switch to
            // for small messages to avoid P latencies.
            let rounds = (p as f64).log2().ceil();
            let bruck = rounds
                * net.ptp_time(
                    bytes_per_pair * (p as u64 / 2),
                    off_node_distance(placement),
                    job_nodes,
                );
            linear.min(bruck)
        }
        CommPattern::AllGather { bytes_per_rank } => {
            if p == 1 {
                return 0.0;
            }
            // Ring allgather: (P−1) steps of one rank's contribution.
            let worst = worst_distance(placement);
            (p - 1) as f64 * net.ptp_time(bytes_per_rank, worst, job_nodes)
        }
        CommPattern::Butterfly {
            bytes_per_rank,
            stages,
        } => {
            // Stage k exchanges with the partner 2^k ranks away.
            (0..stages)
                .map(|k| {
                    let stride = 1u32 << k.min(30);
                    let dist = stride_distance(placement, stride);
                    net.ptp_time(bytes_per_rank, dist, job_nodes)
                })
                .sum()
        }
        CommPattern::PairwiseBisection { bytes } => {
            // All pairs exchange simultaneously; rank r partners with
            // r + P/2, so every pair crosses the bisection (on a single
            // node this is still NVLink). Bidirectional exchange doubles
            // the volume per adapter.
            let dist = stride_distance(placement, p / 2);
            net.ptp_time(2 * bytes, dist, job_nodes)
        }
        CommPattern::Pipeline { bytes } => {
            let dist = stride_distance(placement, placement.ranks_per_node.max(1));
            net.ptp_time(bytes, dist, job_nodes)
        }
    }
}

/// Worst link class present inside this placement.
fn worst_distance(placement: &Placement) -> Distance {
    if placement.machine.cells() > 1 {
        Distance::InterCell
    } else if placement.machine.nodes > 1 {
        Distance::IntraCell
    } else if placement.ranks() > 1 {
        Distance::IntraNode
    } else {
        Distance::SameDevice
    }
}

/// Link class of a typical off-node partner.
fn off_node_distance(placement: &Placement) -> Distance {
    if placement.machine.cells() > 1 {
        Distance::InterCell
    } else {
        Distance::IntraCell
    }
}

fn halo_time(
    rank_dims: &[u32; 3],
    bytes_per_face: &[u64; 3],
    placement: &Placement,
    net: &NetModel,
) -> f64 {
    let dims4 = [rank_dims[0], rank_dims[1], rank_dims[2], 1];
    let faces4 = [bytes_per_face[0], bytes_per_face[1], bytes_per_face[2], 0];
    halo_time_nd(&dims4, &faces4, placement, net)
}

/// N-dimensional halo: along each decomposed dimension the rank exchanges
/// two faces with neighbours at a stride equal to the product of the faster
/// dimensions (row-major rank ordering).
fn halo_time_nd(
    rank_dims: &[u32; 4],
    bytes_per_face: &[u64; 4],
    placement: &Placement,
    net: &NetModel,
) -> f64 {
    let job_nodes = placement.machine.nodes;
    let mut stride: u32 = 1;
    let mut total = 0.0;
    for (d, &extent) in rank_dims.iter().enumerate() {
        if extent > 1 && bytes_per_face[d] > 0 {
            let dist = stride_distance(placement, stride);
            // Two faces (send+recv overlap assumed; cost one round trip of
            // both faces serialized through the adapter).
            total += 2.0 * net.ptp_time(bytes_per_face[d], dist, job_nodes);
        }
        stride = stride.saturating_mul(extent.max(1));
    }
    total
}

/// Balanced 3D factorization of `n` ranks (used by apps to build rank
/// grids) — factors as close to cubic as possible, preferring more ranks in
/// the leading (fast, intra-node) dimension.
pub fn balanced_dims3(n: u32) -> [u32; 3] {
    let mut best = [n, 1, 1];
    let mut best_score = u64::MAX;
    for a in 1..=n {
        if !n.is_multiple_of(a) {
            continue;
        }
        let rest = n / a;
        for b in 1..=rest {
            if !rest.is_multiple_of(b) {
                continue;
            }
            let c = rest / b;
            // Surface-minimizing score for a unit-volume-per-rank cube.
            let score = (a * b + b * c + a * c) as u64;
            if score < best_score {
                best_score = score;
                best = [a, b, c];
            }
        }
    }
    best.sort_unstable_by(|x, y| y.cmp(x));
    // Row-major rank order: fastest-varying dimension first so neighbours
    // in dim 0 tend to share a node.
    best.reverse();
    best
}

/// Balanced 4D factorization (lattice QCD decomposition).
pub fn balanced_dims4(n: u32) -> [u32; 4] {
    let mut best = [n, 1, 1, 1];
    let mut best_score = u64::MAX;
    for a in 1..=n {
        if !n.is_multiple_of(a) {
            continue;
        }
        for b in 1..=(n / a) {
            if !(n / a).is_multiple_of(b) {
                continue;
            }
            let rest = n / a / b;
            for c in 1..=rest {
                if !rest.is_multiple_of(c) {
                    continue;
                }
                let d = rest / c;
                let dims = [a, b, c, d];
                let max = *dims.iter().max().unwrap() as u64;
                let min = *dims.iter().min().unwrap() as u64;
                let score = max * 1000 / min.max(1);
                if score < best_score {
                    best_score = score;
                    best = dims;
                }
            }
        }
    }
    best
}

/// Convenience: cost a whole machine + one-rank-per-GPU placement.
pub fn cost_on(machine: Machine, pattern: CommPattern) -> f64 {
    let placement = Placement::per_gpu(machine);
    pattern_time(pattern, &placement, &NetModel::juwels_booster())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;

    fn placement(nodes: u32) -> Placement {
        Placement::per_gpu(Machine::juwels_booster().partition(nodes))
    }

    #[test]
    fn single_rank_patterns_cost_nothing() {
        let p = Placement {
            machine: Machine::juwels_booster().partition(1),
            ranks_per_node: 1,
        };
        let net = NetModel::juwels_booster();
        assert_eq!(
            pattern_time(CommPattern::AllReduce { bytes: 1 << 20 }, &p, &net),
            0.0
        );
        assert_eq!(
            pattern_time(
                CommPattern::AllGather {
                    bytes_per_rank: 1024
                },
                &p,
                &net
            ),
            0.0
        );
        assert_eq!(
            pattern_time(CommPattern::RingAllReduce { bytes: 1024 }, &p, &net),
            0.0
        );
    }

    #[test]
    fn allreduce_grows_with_scale() {
        let net = NetModel::juwels_booster();
        let t8 = pattern_time(
            CommPattern::AllReduce { bytes: 1 << 20 },
            &placement(8),
            &net,
        );
        let t512 = pattern_time(
            CommPattern::AllReduce { bytes: 1 << 20 },
            &placement(512),
            &net,
        );
        assert!(t512 > t8);
    }

    #[test]
    fn butterfly_early_stages_are_intra_node() {
        // With 4 ranks per node, stages 0 and 1 stay on NVLink.
        let p = placement(64);
        let net = NetModel::juwels_booster();
        let local = pattern_time(
            CommPattern::Butterfly {
                bytes_per_rank: 1 << 26,
                stages: 2,
            },
            &p,
            &net,
        );
        let global = pattern_time(
            CommPattern::Butterfly {
                bytes_per_rank: 1 << 26,
                stages: 8,
            },
            &p,
            &net,
        );
        // The 6 non-local stages dominate heavily.
        assert!(global > local * 10.0);
    }

    #[test]
    fn halo_exchange_scales_mildly() {
        let net = NetModel::juwels_booster();
        let t = |nodes: u32| {
            let p = placement(nodes);
            let dims = balanced_dims3(p.ranks());
            pattern_time(
                CommPattern::Halo3d {
                    rank_dims: dims,
                    bytes_per_face: [1 << 20; 3],
                },
                &p,
                &net,
            )
        };
        // Weak-scaling halo time grows far slower than alltoall.
        assert!(t(512) < t(8) * 4.0);
    }

    #[test]
    fn alltoall_is_expensive_at_scale() {
        let net = NetModel::juwels_booster();
        let t8 = pattern_time(
            CommPattern::AllToAll {
                bytes_per_pair: 1 << 14,
            },
            &placement(8),
            &net,
        );
        let t128 = pattern_time(
            CommPattern::AllToAll {
                bytes_per_pair: 1 << 14,
            },
            &placement(128),
            &net,
        );
        assert!(t128 > 8.0 * t8);
    }

    #[test]
    fn balanced_dims3_factorizes() {
        for n in [1u32, 2, 4, 8, 12, 32, 64, 100, 2048, 2560] {
            let d = balanced_dims3(n);
            assert_eq!(d[0] * d[1] * d[2], n, "n={n} d={d:?}");
        }
        assert_eq!(balanced_dims3(64), [4, 4, 4]);
    }

    #[test]
    fn balanced_dims4_factorizes() {
        for n in [1u32, 2, 16, 64, 2048] {
            let d = balanced_dims4(n);
            assert_eq!(d.iter().product::<u32>(), n);
        }
        assert_eq!(balanced_dims4(16), [2, 2, 2, 2]);
    }

    #[test]
    fn bisection_pairs_slower_across_cells() {
        let net = NetModel::juwels_booster();
        let single_cell = pattern_time(
            CommPattern::PairwiseBisection { bytes: 16 << 20 },
            &placement(48),
            &net,
        );
        let multi_cell = pattern_time(
            CommPattern::PairwiseBisection { bytes: 16 << 20 },
            &placement(936),
            &net,
        );
        assert!(multi_cell > single_cell);
    }

    #[test]
    fn pipeline_cost_is_one_message() {
        let net = NetModel::juwels_booster();
        let p = placement(8);
        let t = pattern_time(CommPattern::Pipeline { bytes: 1 << 20 }, &p, &net);
        assert!(t > 0.0 && t < 1e-3);
    }
}
