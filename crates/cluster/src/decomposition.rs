//! Domain-decomposition studies.
//!
//! §V-A: "decomposition studies are impossible in the benchmark context,
//! especially for an unknown system design. Through labour- and
//! resource-intensive investigation, estimates, rules, or scripts for
//! ideal domain decomposition were devised, e.g., for Chroma-QCD,
//! PIConGPU, NAStJA, and DynQCD."
//!
//! This module is that script: it enumerates the factorizations of the
//! rank count over the problem's dimensions, costs each candidate's halo
//! exchange with the network model, and returns the cheapest — so a
//! proposal can derive its decomposition from the machine model instead of
//! hand-tuning on unknown hardware.

use crate::machine::Machine;
use crate::netmodel::NetModel;
use crate::patterns::{pattern_time, CommPattern};
use crate::topology::Placement;

/// All factorizations of `n` into `k` ordered factors.
fn factorizations(n: u32, k: usize) -> Vec<Vec<u32>> {
    if k == 1 {
        return vec![vec![n]];
    }
    let mut out = Vec::new();
    for a in 1..=n {
        if n.is_multiple_of(a) {
            for mut rest in factorizations(n / a, k - 1) {
                let mut v = vec![a];
                v.append(&mut rest);
                out.push(v);
            }
        }
    }
    out
}

/// One candidate decomposition with its modeled per-iteration halo cost.
#[derive(Debug, Clone, PartialEq)]
pub struct DecompositionChoice {
    pub rank_dims: Vec<u32>,
    pub halo_seconds: f64,
}

/// Modeled halo cost of one candidate 4D decomposition; `None` when the
/// decomposition does not divide the lattice.
pub fn cost_4d(
    machine: Machine,
    lattice: [u64; 4],
    dims: [u32; 4],
    bytes_per_site_face: u64,
) -> Option<f64> {
    if (0..4).any(|d| lattice[d] < dims[d] as u64 || !lattice[d].is_multiple_of(dims[d] as u64)) {
        return None;
    }
    let placement = Placement::per_gpu(machine);
    let net = NetModel::juwels_booster();
    let local: Vec<u64> = (0..4).map(|d| lattice[d] / dims[d] as u64).collect();
    let volume: u64 = local.iter().product();
    // Cost the worst per-dimension face through the halo pattern.
    let face_bytes = (0..4)
        .map(|d| {
            if dims[d] > 1 {
                volume / local[d] * bytes_per_site_face
            } else {
                0
            }
        })
        .max()
        .unwrap_or(0);
    Some(pattern_time(
        CommPattern::Halo4d {
            rank_dims: dims,
            bytes_per_face: face_bytes,
        },
        &placement,
        &net,
    ))
}

/// Find the cheapest 4D decomposition of `ranks` for a lattice of extents
/// `lattice` with `bytes_per_site_face` bytes exchanged per boundary site
/// (Chroma-QCD / DynQCD).
pub fn best_4d_decomposition(
    machine: Machine,
    lattice: [u64; 4],
    bytes_per_site_face: u64,
) -> DecompositionChoice {
    let ranks = Placement::per_gpu(machine).ranks();
    let mut best: Option<DecompositionChoice> = None;
    for dims in factorizations(ranks, 4) {
        let dims4 = [dims[0], dims[1], dims[2], dims[3]];
        if let Some(t) = cost_4d(machine, lattice, dims4, bytes_per_site_face) {
            let candidate = DecompositionChoice {
                rank_dims: dims,
                halo_seconds: t,
            };
            if best
                .as_ref()
                .is_none_or(|b| candidate.halo_seconds < b.halo_seconds)
            {
                best = Some(candidate);
            }
        }
    }
    best.expect("at least one valid decomposition")
}

/// Find the cheapest 3D decomposition for a grid (PIConGPU / NAStJA).
pub fn best_3d_decomposition(
    machine: Machine,
    grid: [u64; 3],
    bytes_per_cell_face: u64,
    per_node: bool,
) -> DecompositionChoice {
    let placement = if per_node {
        Placement::per_node(machine)
    } else {
        Placement::per_gpu(machine)
    };
    let net = NetModel::juwels_booster();
    let ranks = placement.ranks();
    let mut best: Option<DecompositionChoice> = None;
    for dims in factorizations(ranks, 3) {
        if (0..3).any(|d| grid[d] < dims[d] as u64) {
            continue;
        }
        let local: Vec<u64> = (0..3).map(|d| grid[d] / dims[d] as u64).collect();
        let faces: Vec<u64> = (0..3)
            .map(|d| {
                if dims[d] > 1 {
                    local.iter().product::<u64>() / local[d] * bytes_per_cell_face
                } else {
                    0
                }
            })
            .collect();
        let t = pattern_time(
            CommPattern::Halo3d {
                rank_dims: [dims[0], dims[1], dims[2]],
                bytes_per_face: [faces[0], faces[1], faces[2]],
            },
            &placement,
            &net,
        );
        let candidate = DecompositionChoice {
            rank_dims: dims,
            halo_seconds: t,
        };
        if best
            .as_ref()
            .is_none_or(|b| candidate.halo_seconds < b.halo_seconds)
        {
            best = Some(candidate);
        }
    }
    best.expect("at least one valid decomposition")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booster(n: u32) -> Machine {
        Machine::juwels_booster().partition(n)
    }

    #[test]
    fn factorization_counts() {
        assert_eq!(factorizations(1, 3), vec![vec![1, 1, 1]]);
        // 4 = 1·1·4, 1·4·1, 4·1·1, 1·2·2, 2·1·2, 2·2·1.
        assert_eq!(factorizations(4, 3).len(), 6);
        for f in factorizations(16, 4) {
            assert_eq!(f.iter().product::<u32>(), 16);
        }
    }

    #[test]
    fn nvlink_dense_nodes_prefer_stride1_slabs() {
        // On 4×NVLink-GPU nodes, a single-axis slab keeps every neighbour
        // exchange at rank stride 1 — mostly on NVLink — which the model
        // (correctly) prices below the surface-minimizing balanced cut
        // whose higher-stride dimensions cross the InfiniBand fabric. This
        // is the QUDA-style preference for keeping one lattice direction's
        // split inside the node.
        let machine = booster(4);
        let choice = best_4d_decomposition(machine, [64, 64, 64, 64], 48);
        let active_dims = choice.rank_dims.iter().filter(|&&d| d > 1).count();
        assert_eq!(
            active_dims, 1,
            "expected a slab, got {:?}",
            choice.rank_dims
        );
        let balanced = cost_4d(machine, [64, 64, 64, 64], [2, 2, 2, 2], 48).unwrap();
        assert!(choice.halo_seconds <= balanced);
    }

    #[test]
    fn anisotropic_lattice_cuts_the_long_dimension() {
        // A lattice stretched in t: decomposing the long dimension keeps
        // the cut faces small.
        let choice = best_4d_decomposition(booster(4), [8, 8, 8, 1024], 48);
        assert!(
            choice.rank_dims[3] >= 4,
            "expected the t-dimension cut, got {:?}",
            choice.rank_dims
        );
    }

    #[test]
    fn chosen_decomposition_is_optimal_among_alternatives() {
        let machine = booster(8);
        let lattice = [64u64, 64, 64, 64];
        let best = best_4d_decomposition(machine, lattice, 48);
        for dims in [
            [32u32, 1, 1, 1],
            [1, 32, 1, 1],
            [2, 2, 2, 4],
            [4, 4, 2, 1],
            [2, 16, 1, 1],
        ] {
            if let Some(t) = cost_4d(machine, lattice, dims, 48) {
                assert!(
                    best.halo_seconds <= t + 1e-15,
                    "{:?} at {t} beats the chosen {:?} at {}",
                    dims,
                    best.rank_dims,
                    best.halo_seconds
                );
            }
        }
    }

    #[test]
    fn pic_grid_decomposition_is_valid() {
        // The PIConGPU S grid on 16 nodes: the chosen decomposition must
        // divide the grid and be cheaper than or equal to every axis slab.
        let machine = booster(16);
        let grid = [4096u64, 2048, 1024];
        let best = best_3d_decomposition(machine, grid, 8, false);
        assert_eq!(best.rank_dims.iter().product::<u32>(), 64);
        for (d, &extent) in best.rank_dims.iter().enumerate() {
            assert_eq!(grid[d] % extent as u64, 0);
        }
    }

    #[test]
    fn cpu_codes_decompose_per_node() {
        let choice = best_3d_decomposition(booster(8), [720, 720, 1152], 4, true);
        assert_eq!(choice.rank_dims.iter().product::<u32>(), 8);
        assert!(choice.halo_seconds > 0.0);
    }
}
