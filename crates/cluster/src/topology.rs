//! Rank placement and the DragonFly+ topology of the interconnect.

use crate::machine::Machine;

/// Distance class between two ranks, determining which link model applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Distance {
    /// Same device (no transfer).
    SameDevice,
    /// Same node: NVLink / NVSwitch.
    IntraNode,
    /// Different nodes within the same DragonFly+ cell (2 racks, 48 nodes):
    /// minimal route through the cell's switch group.
    IntraCell,
    /// Across cells: global optical links.
    InterCell,
    /// Across modules of the Modular Supercomputing Architecture (between
    /// the Cluster and the Booster), through the federation gateway.
    InterModule,
}

/// Block placement of MPI ranks onto devices: rank `r` lives on device
/// `r % gpus_per_node` of node `r / gpus_per_node`, matching the usual
/// `--ntasks-per-node=4` launch on JUWELS Booster.
#[derive(Debug, Clone, Copy)]
pub struct Placement {
    pub machine: Machine,
    /// Ranks per node (usually one per GPU; CPU codes use 1 rank/node here
    /// since intra-node parallelism is threads).
    pub ranks_per_node: u32,
}

impl Placement {
    /// One rank per GPU.
    pub fn per_gpu(machine: Machine) -> Self {
        Placement {
            ranks_per_node: machine.node.gpus_per_node,
            machine,
        }
    }

    /// One rank per node (CPU-style codes: NAStJA, DynQCD).
    pub fn per_node(machine: Machine) -> Self {
        Placement {
            machine,
            ranks_per_node: 1,
        }
    }

    /// Total number of ranks.
    pub fn ranks(&self) -> u32 {
        self.machine.nodes * self.ranks_per_node
    }

    /// The node index hosting `rank`.
    pub fn node_of(&self, rank: u32) -> u32 {
        rank / self.ranks_per_node
    }

    /// The DragonFly+ cell index hosting `rank`.
    pub fn cell_of(&self, rank: u32) -> u32 {
        self.node_of(rank) / self.machine.cell_nodes
    }

    /// Distance class between two ranks.
    pub fn distance(&self, a: u32, b: u32) -> Distance {
        if a == b {
            Distance::SameDevice
        } else if self.node_of(a) == self.node_of(b) {
            Distance::IntraNode
        } else if self.cell_of(a) == self.cell_of(b) {
            Distance::IntraCell
        } else {
            Distance::InterCell
        }
    }
}

/// Topology queries over a machine, at node granularity.
#[derive(Debug, Clone, Copy)]
pub struct Topology {
    pub machine: Machine,
}

impl Topology {
    pub fn new(machine: Machine) -> Self {
        Topology { machine }
    }

    /// Switch hops between two nodes in DragonFly+: 0 within a node (n/a),
    /// 2 within a cell (node → leaf switch → node via the cell group), 4
    /// across cells (two leaf hops plus the global link between spine
    /// switches).
    pub fn hops(&self, node_a: u32, node_b: u32) -> u32 {
        if node_a == node_b {
            0
        } else if node_a / self.machine.cell_nodes == node_b / self.machine.cell_nodes {
            2
        } else {
            4
        }
    }

    /// Number of node pairs whose traffic crosses the bisection when the
    /// machine is split into two halves of consecutive nodes.
    pub fn bisection_pairs(&self) -> u32 {
        self.machine.nodes / 2
    }

    /// Aggregate bisection bandwidth in bytes/s: each node in the smaller
    /// half injects through its NICs; global links are taperable, modeled
    /// with a DragonFly+ global taper factor.
    pub fn bisection_bandwidth(&self) -> f64 {
        let per_node = self.machine.node.nic_bw * self.machine.node.nics_per_node as f64;
        // DragonFly+ on JUWELS Booster is ≈ 50 % tapered on global links.
        let taper = if self.machine.cells() > 1 { 0.5 } else { 1.0 };
        per_node * self.bisection_pairs() as f64 * taper
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn booster() -> Machine {
        Machine::juwels_booster()
    }

    #[test]
    fn per_gpu_placement_has_4_ranks_per_node() {
        let p = Placement::per_gpu(booster().partition(8));
        assert_eq!(p.ranks(), 32);
        assert_eq!(p.node_of(0), 0);
        assert_eq!(p.node_of(3), 0);
        assert_eq!(p.node_of(4), 1);
    }

    #[test]
    fn distance_classes() {
        let p = Placement::per_gpu(booster().partition(100));
        assert_eq!(p.distance(5, 5), Distance::SameDevice);
        assert_eq!(p.distance(0, 3), Distance::IntraNode);
        assert_eq!(p.distance(0, 4), Distance::IntraCell);
        // node 0 (cell 0) vs node 50 (cell 1): rank 200 is on node 50.
        assert_eq!(p.distance(0, 200), Distance::InterCell);
    }

    #[test]
    fn per_node_placement() {
        let p = Placement::per_node(booster().partition(8));
        assert_eq!(p.ranks(), 8);
        assert_eq!(p.distance(0, 1), Distance::IntraCell);
    }

    #[test]
    fn distance_is_symmetric() {
        let p = Placement::per_gpu(booster().partition(200));
        for (a, b) in [(0u32, 3u32), (0, 4), (0, 400), (7, 190)] {
            assert_eq!(p.distance(a, b), p.distance(b, a));
        }
    }

    #[test]
    fn hops_in_dragonfly_plus() {
        let t = Topology::new(booster());
        assert_eq!(t.hops(0, 0), 0);
        assert_eq!(t.hops(0, 47), 2, "same 48-node cell");
        assert_eq!(t.hops(0, 48), 4, "different cells");
    }

    #[test]
    fn bisection_bandwidth_scales_with_nodes() {
        let small = Topology::new(booster().partition(48));
        let large = Topology::new(booster());
        assert!(large.bisection_bandwidth() > small.bisection_bandwidth());
        // Single cell is not tapered: 24 pairs × 4 NIC × 25 GB/s = 2.4 TB/s.
        assert!((small.bisection_bandwidth() - 24.0 * 4.0 * 25.0e9).abs() < 1e6);
    }
}
