//! # jubench-cluster
//!
//! Machine model of the systems involved in the JUPITER procurement. This
//! crate is the substitution for the hardware the paper used:
//!
//! - **JUWELS Booster**, the preparation system: 936 nodes in a DragonFly+
//!   topology with 48-node cells, each node with 4 NVIDIA A100 GPUs (40 GB)
//!   and 4 InfiniBand HDR200 adapters (§III-A),
//! - the envisioned **JUPITER Booster**: a 1 EFLOP/s HPL system, i.e. a
//!   partition 20× the 50 PFLOP/s(th) preparation sub-partition (§II-B),
//!
//! together with an analytic **network model** (latency/bandwidth with
//! distinct intra-node, intra-cell, and inter-cell regimes plus a
//! large-scale congestion factor) and a **roofline compute model**. The
//! simulated MPI runtime (`jubench-simmpi`) advances its virtual clocks
//! using these models, so that scaling *shapes* — not absolute runtimes —
//! reproduce the mechanisms of the paper's Figs. 2 and 3.

pub mod cost;
pub mod decomposition;
pub mod machine;
pub mod netmodel;
pub mod patterns;
pub mod roofline;
pub mod topology;

pub use cost::CostModel;
pub use decomposition::{
    best_3d_decomposition, best_4d_decomposition, cost_4d, DecompositionChoice,
};
pub use machine::{intern_name, GpuSpec, Machine, NodeSpec};
pub use netmodel::{LinkParams, NetModel};
pub use patterns::{balanced_dims3, balanced_dims4, cost_on, pattern_time, CommPattern};
pub use roofline::{Roofline, Work};
pub use topology::{Distance, Placement, Topology};
