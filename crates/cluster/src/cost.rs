//! Per-node cost model of a machine backend.
//!
//! Procurement arithmetic (§II) needs a euro figure per machine: the
//! EuroHPC systems are capex-amortized on-prem installations, while the
//! cloud-continuous-evaluation literature prices instance types per
//! node-hour with zero capex. Both shapes fit one model: a machine's
//! total cost of ownership over its evaluation horizon is
//!
//! ```text
//! TCO = capex + electricity + rental
//!     = nodes · capex_per_node
//!     + energy(power_w, utilization, lifetime) · PUE · price_per_kWh
//!     + nodes · rental_per_node_hour · utilization · lifetime_hours
//! ```
//!
//! On-prem backends have nonzero capex and electricity and zero rental;
//! cloud backends have zero capex, zero direct electricity (folded into
//! the hourly price), and nonzero rental. The model is carried on
//! [`crate::Machine`] so every partition of a backend prices itself.

/// Cost parameters of one machine backend, per node so partitions of any
/// size price consistently. All monetary figures in EUR.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Acquisition cost per node (0 for cloud backends).
    pub capex_per_node_eur: f64,
    /// Hourly rental per node (0 for on-prem backends).
    pub rental_eur_per_node_hour: f64,
    /// Electricity price (0 for cloud backends — energy is priced into
    /// the rental rate).
    pub electricity_eur_per_kwh: f64,
    /// Power usage effectiveness of the hosting site (cooling and
    /// distribution overhead multiplying IT power).
    pub pue: f64,
    /// Evaluation horizon in years (system lifetime on-prem, commitment
    /// horizon for rented capacity).
    pub lifetime_years: f64,
    /// Fraction of the horizon the machine spends doing paid work.
    pub utilization: f64,
}

impl CostModel {
    /// EuroHPC-style on-prem defaults: German industrial electricity at
    /// 0.25 EUR/kWh, a warm-water-cooled site at PUE 1.1, a six-year
    /// lifetime, 85% utilization.
    pub fn on_prem(capex_per_node_eur: f64) -> Self {
        CostModel {
            capex_per_node_eur,
            rental_eur_per_node_hour: 0.0,
            electricity_eur_per_kwh: 0.25,
            pue: 1.1,
            lifetime_years: 6.0,
            utilization: 0.85,
        }
    }

    /// Cloud-style pricing: zero capex, energy folded into the hourly
    /// rate, a three-year committed horizon at 85% utilization.
    pub fn cloud(rental_eur_per_node_hour: f64) -> Self {
        CostModel {
            capex_per_node_eur: 0.0,
            rental_eur_per_node_hour,
            electricity_eur_per_kwh: 0.0,
            pue: 1.0,
            lifetime_years: 3.0,
            utilization: 0.85,
        }
    }

    /// Utilized hours over the evaluation horizon.
    pub fn utilized_hours(&self) -> f64 {
        self.lifetime_years * 365.25 * 24.0 * self.utilization
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn on_prem_has_capex_and_electricity_but_no_rent() {
        let c = CostModel::on_prem(78_000.0);
        assert_eq!(c.capex_per_node_eur, 78_000.0);
        assert_eq!(c.rental_eur_per_node_hour, 0.0);
        assert!(c.electricity_eur_per_kwh > 0.0);
        assert!(c.pue > 1.0);
    }

    #[test]
    fn cloud_has_rent_but_no_capex_or_electricity() {
        let c = CostModel::cloud(28.0);
        assert_eq!(c.capex_per_node_eur, 0.0);
        assert_eq!(c.rental_eur_per_node_hour, 28.0);
        assert_eq!(c.electricity_eur_per_kwh, 0.0);
        assert_eq!(c.pue, 1.0);
    }

    #[test]
    fn utilized_hours_scale_with_horizon() {
        let on_prem = CostModel::on_prem(1.0);
        let cloud = CostModel::cloud(1.0);
        assert!(on_prem.utilized_hours() > cloud.utilized_hours());
        // 6 years at 85%: ≈ 44.7 kh.
        assert!((on_prem.utilized_hours() - 44_700.0).abs() < 100.0);
    }
}
