//! Benchmark commitments and proposal evaluation.
//!
//! §II-C: each Base benchmark's time metric, "determined on the reference
//! number of nodes, is the value to be improved upon and committed to by
//! proposals of system designs. The number of nodes used to surpass the
//! time-metric can be freely specified by the proposal, but is typically
//! smaller than the reference number of nodes." The committed values are
//! "weighted and combined to compute a value-for-money metric".

use std::collections::BTreeMap;

use jubench_cluster::Machine;
use jubench_core::{BenchmarkId, SuiteError, TimeMetric};

use crate::tco::TcoModel;

/// The reference results on the preparation system: benchmark → (time
/// metric, reference nodes, weight in the mixed workload).
#[derive(Debug, Clone, Default)]
pub struct ReferenceSet {
    entries: BTreeMap<BenchmarkId, (TimeMetric, u32, f64)>,
}

impl ReferenceSet {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn add(&mut self, id: BenchmarkId, reference: TimeMetric, nodes: u32, weight: f64) {
        assert!(weight > 0.0 && reference.0 > 0.0);
        self.entries.insert(id, (reference, nodes, weight));
    }

    pub fn reference(&self, id: BenchmarkId) -> Option<TimeMetric> {
        self.entries.get(&id).map(|&(t, _, _)| t)
    }

    pub fn ids(&self) -> Vec<BenchmarkId> {
        self.entries.keys().copied().collect()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One committed benchmark result of a proposal.
#[derive(Debug, Clone, Copy)]
pub struct Commitment {
    pub id: BenchmarkId,
    /// The committed time metric on the proposed system.
    pub committed: TimeMetric,
    /// Nodes of the proposed system used.
    pub nodes_used: u32,
}

/// A vendor proposal: a machine design, its price, and the commitments.
#[derive(Debug, Clone)]
pub struct Proposal {
    pub name: String,
    pub machine: Machine,
    pub price_eur: f64,
    pub commitments: Vec<Commitment>,
}

/// The evaluated proposal.
#[derive(Debug, Clone)]
pub struct ProposalEvaluation {
    pub name: String,
    /// Weighted geometric-mean speedup over the reference system.
    pub mean_speedup: f64,
    /// Weighted mean seconds per reference workload on the proposal.
    pub seconds_per_workload: f64,
    /// Reference workloads per million EUR of TCO.
    pub value_for_money: f64,
    pub tco_total_eur: f64,
    /// Per-benchmark speedups.
    pub speedups: BTreeMap<BenchmarkId, f64>,
}

impl Proposal {
    /// Validate and evaluate this proposal against the reference set.
    pub fn evaluate(
        &self,
        reference: &ReferenceSet,
        tco: &TcoModel,
    ) -> Result<ProposalEvaluation, SuiteError> {
        // Every reference benchmark needs a commitment; commitments must
        // improve upon the reference ("the value to be improved upon").
        let mut speedups = BTreeMap::new();
        let mut weighted_log_speedup = 0.0;
        let mut weighted_seconds = 0.0;
        let mut total_weight = 0.0;
        for (&id, &(ref_time, _ref_nodes, weight)) in &reference.entries {
            let commitment = self
                .commitments
                .iter()
                .find(|c| c.id == id)
                .ok_or_else(|| SuiteError::RuleViolation {
                    benchmark: id.name(),
                    rule: format!(
                        "proposal '{}' has no commitment for this benchmark",
                        self.name
                    ),
                })?;
            if commitment.committed.0 <= 0.0 {
                return Err(SuiteError::RuleViolation {
                    benchmark: id.name(),
                    rule: "committed time metric must be positive".into(),
                });
            }
            if commitment.nodes_used == 0 || commitment.nodes_used > self.machine.nodes {
                return Err(SuiteError::InvalidNodeCount {
                    benchmark: id.name(),
                    nodes: commitment.nodes_used,
                    reason: format!(
                        "proposal '{}' only has {} nodes",
                        self.name, self.machine.nodes
                    ),
                });
            }
            if commitment.committed.0 >= ref_time.0 {
                return Err(SuiteError::RuleViolation {
                    benchmark: id.name(),
                    rule: format!(
                        "committed {} s does not improve upon the reference {} s",
                        commitment.committed.0, ref_time.0
                    ),
                });
            }
            let speedup = ref_time.0 / commitment.committed.0;
            speedups.insert(id, speedup);
            weighted_log_speedup += weight * speedup.ln();
            weighted_seconds += weight * commitment.committed.0;
            total_weight += weight;
        }
        let mean_speedup = (weighted_log_speedup / total_weight).exp();
        let seconds_per_workload = weighted_seconds / total_weight;
        let tco_result = tco.evaluate(&self.machine);
        let value_for_money = tco_result.workloads_per_million_eur(seconds_per_workload);
        Ok(ProposalEvaluation {
            name: self.name.clone(),
            mean_speedup,
            seconds_per_workload,
            value_for_money,
            tco_total_eur: tco_result.total_eur,
            speedups,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jubench_core::BenchmarkId as B;

    fn reference() -> ReferenceSet {
        let mut r = ReferenceSet::new();
        r.add(B::Arbor, TimeMetric(498.0), 8, 1.0);
        r.add(B::Gromacs, TimeMetric(600.0), 3, 2.0);
        r
    }

    fn proposal(name: &str, arbor: f64, gromacs: f64) -> Proposal {
        Proposal {
            name: name.into(),
            machine: Machine::jupiter_proposal(),
            price_eur: 500.0e6,
            commitments: vec![
                Commitment {
                    id: B::Arbor,
                    committed: TimeMetric(arbor),
                    nodes_used: 4,
                },
                Commitment {
                    id: B::Gromacs,
                    committed: TimeMetric(gromacs),
                    nodes_used: 2,
                },
            ],
        }
    }

    fn tco() -> TcoModel {
        TcoModel::eurohpc_defaults(500.0e6)
    }

    #[test]
    fn evaluation_computes_weighted_speedup() {
        let eval = proposal("A", 249.0, 200.0)
            .evaluate(&reference(), &tco())
            .unwrap();
        // Arbor speedup 2 (weight 1), GROMACS speedup 3 (weight 2):
        // geometric mean = (2¹·3²)^(1/3).
        let expect = (2.0f64 * 9.0).powf(1.0 / 3.0);
        assert!((eval.mean_speedup - expect).abs() < 1e-12);
        assert_eq!(eval.speedups[&B::Arbor], 2.0);
        assert_eq!(eval.speedups[&B::Gromacs], 3.0);
    }

    #[test]
    fn faster_commitments_win_value_for_money() {
        let slow = proposal("slow", 400.0, 500.0)
            .evaluate(&reference(), &tco())
            .unwrap();
        let fast = proposal("fast", 200.0, 250.0)
            .evaluate(&reference(), &tco())
            .unwrap();
        assert!(fast.value_for_money > slow.value_for_money);
    }

    #[test]
    fn missing_commitment_is_rejected() {
        let mut p = proposal("A", 249.0, 200.0);
        p.commitments.pop();
        let err = p.evaluate(&reference(), &tco()).unwrap_err();
        assert!(matches!(err, SuiteError::RuleViolation { .. }));
    }

    #[test]
    fn non_improving_commitment_is_rejected() {
        // §II-C: the reference value is "the value to be improved upon".
        let err = proposal("A", 498.0, 200.0)
            .evaluate(&reference(), &tco())
            .unwrap_err();
        assert!(matches!(err, SuiteError::RuleViolation { .. }));
    }

    #[test]
    fn oversubscribed_nodes_rejected() {
        let mut p = proposal("A", 249.0, 200.0);
        p.commitments[0].nodes_used = p.machine.nodes + 1;
        assert!(matches!(
            p.evaluate(&reference(), &tco()),
            Err(SuiteError::InvalidNodeCount { .. })
        ));
    }

    #[test]
    fn reference_set_accessors() {
        let r = reference();
        assert_eq!(r.len(), 2);
        assert_eq!(r.reference(B::Arbor), Some(TimeMetric(498.0)));
        assert_eq!(r.reference(B::Hpl), None);
        assert_eq!(r.ids(), vec![B::Arbor, B::Gromacs]);
    }
}
