//! HEPScore-style composite score: one comparable number per machine.
//!
//! The HEP benchmark suite (Giordano et al., HEPiX benchmarking WG)
//! condenses a set of per-workload scores into a single machine score by
//! taking the *geometric* mean — the only mean for which "machine A is
//! x× machine B" is independent of the reference machine chosen to
//! normalize the workloads. The fleet study applies the same recipe to
//! the JUPITER suite: each benchmark contributes the speedup of its
//! runtime on the candidate backend over the reference backend, and a
//! weighted geometric mean condenses them into the backend's composite
//! score. Score 1.0 means "as fast as the reference across the suite";
//! 2.0 means twice as fast in the geometric-mean sense.

/// One benchmark's contribution to a composite score.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreItem {
    /// Benchmark name (a [`jubench_core::BenchmarkId::name`]).
    pub name: String,
    /// Reference runtime over candidate runtime: > 1 is faster than the
    /// reference machine.
    pub speedup: f64,
    /// Relative importance of the benchmark in the composite.
    pub weight: f64,
}

/// A composite score with its per-benchmark breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct CompositeScore {
    pub items: Vec<ScoreItem>,
    /// The weighted geometric mean of the item speedups.
    pub score: f64,
}

impl CompositeScore {
    /// Condense `items` into a composite score. Returns `None` when the
    /// item list is empty, a speedup is non-positive or non-finite, or
    /// the weights do not sum to a positive value — a score over broken
    /// inputs would silently poison a procurement ranking.
    pub fn build(items: Vec<ScoreItem>) -> Option<CompositeScore> {
        if items.is_empty() {
            return None;
        }
        let total_weight: f64 = items.iter().map(|i| i.weight).sum();
        if total_weight.is_nan() || total_weight <= 0.0 {
            return None;
        }
        let mut log_sum = 0.0;
        for item in &items {
            if !item.speedup.is_finite() || item.speedup <= 0.0 || item.weight < 0.0 {
                return None;
            }
            log_sum += item.weight * item.speedup.ln();
        }
        Some(CompositeScore {
            items,
            score: (log_sum / total_weight).exp(),
        })
    }
}

/// The weighted geometric mean of `(value, weight)` pairs — the bare
/// arithmetic behind [`CompositeScore`], usable on any positive series.
pub fn weighted_geometric_mean(items: &[(f64, f64)]) -> Option<f64> {
    let total: f64 = items.iter().map(|&(_, w)| w).sum();
    if total.is_nan() || total <= 0.0 {
        return None;
    }
    let mut log_sum = 0.0;
    for &(v, w) in items {
        if !v.is_finite() || v <= 0.0 || w < 0.0 {
            return None;
        }
        log_sum += w * v.ln();
    }
    Some((log_sum / total).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(name: &str, speedup: f64, weight: f64) -> ScoreItem {
        ScoreItem {
            name: name.to_string(),
            speedup,
            weight,
        }
    }

    #[test]
    fn equal_weights_give_the_plain_geometric_mean() {
        let c = CompositeScore::build(vec![item("a", 2.0, 1.0), item("b", 8.0, 1.0)]).unwrap();
        assert!((c.score - 4.0).abs() < 1e-12);
    }

    #[test]
    fn reference_machine_scores_exactly_one() {
        let c = CompositeScore::build(vec![
            item("a", 1.0, 1.0),
            item("b", 1.0, 2.0),
            item("c", 1.0, 0.5),
        ])
        .unwrap();
        assert_eq!(c.score, 1.0);
    }

    #[test]
    fn weights_shift_the_score_toward_the_heavy_item() {
        let balanced =
            CompositeScore::build(vec![item("a", 2.0, 1.0), item("b", 0.5, 1.0)]).unwrap();
        let heavy_a =
            CompositeScore::build(vec![item("a", 2.0, 3.0), item("b", 0.5, 1.0)]).unwrap();
        assert!((balanced.score - 1.0).abs() < 1e-12);
        assert!(heavy_a.score > balanced.score);
    }

    #[test]
    fn ratio_of_scores_is_reference_independent() {
        // Score(A)/Score(B) must not depend on the normalizing machine:
        // renormalizing every speedup by a machine C (dividing by C's
        // per-benchmark speedups) leaves the ratio intact.
        let a = [(2.0, 1.0), (3.0, 2.0)];
        let b = [(1.5, 1.0), (6.0, 2.0)];
        let c = [(0.7, 1.0), (1.9, 2.0)];
        let plain = weighted_geometric_mean(&a).unwrap() / weighted_geometric_mean(&b).unwrap();
        let renorm_a: Vec<_> = a
            .iter()
            .zip(&c)
            .map(|(&(v, w), &(cv, _))| (v / cv, w))
            .collect();
        let renorm_b: Vec<_> = b
            .iter()
            .zip(&c)
            .map(|(&(v, w), &(cv, _))| (v / cv, w))
            .collect();
        let renorm = weighted_geometric_mean(&renorm_a).unwrap()
            / weighted_geometric_mean(&renorm_b).unwrap();
        assert!((plain - renorm).abs() < 1e-12);
    }

    #[test]
    fn broken_inputs_are_rejected() {
        assert!(CompositeScore::build(vec![]).is_none());
        assert!(CompositeScore::build(vec![item("a", 0.0, 1.0)]).is_none());
        assert!(CompositeScore::build(vec![item("a", -1.0, 1.0)]).is_none());
        assert!(CompositeScore::build(vec![item("a", f64::NAN, 1.0)]).is_none());
        assert!(CompositeScore::build(vec![item("a", 1.0, 0.0)]).is_none());
        assert!(weighted_geometric_mean(&[]).is_none());
    }
}
