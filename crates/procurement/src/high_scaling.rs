//! The High-Scaling assessment (§II-B/§II-C): comparing proposed designs
//! with the preparation system for large-scale executions.
//!
//! "For each high-scaling application, a workload is defined to fill a
//! 50 PFLOP/s(th) sub-partition of the preparation system (about 640
//! nodes) and a 20× larger sub-partition of the future system
//! (20 × 50 PFLOP/s = 1 EFLOP/s). The final assessment is based on the
//! ratio of the runtime value committed for the future 1 EFLOP/s(th)
//! sub-partition and the reference value."

use jubench_cluster::Machine;
use jubench_core::{BenchmarkId, MemoryVariant, SuiteError, TimeMetric};

/// The scale-up factor between the preparation sub-partition and the
/// future sub-partition.
pub const SCALE_UP: f64 = 20.0;

/// Nodes of the proposed machine forming the 1 EFLOP/s(th) sub-partition:
/// enough nodes to reach 20× the peak of the 50 PFLOP/s(th) reference
/// partition.
pub fn exascale_partition_nodes(proposal: &Machine) -> u32 {
    let reference = Machine::high_scaling_partition();
    let target = SCALE_UP * reference.peak_flops();
    (target / proposal.node.peak_flops()).ceil() as u32
}

/// One High-Scaling benchmark's assessment.
#[derive(Debug, Clone)]
pub struct HighScalingAssessment {
    pub id: BenchmarkId,
    /// Variant chosen by the proposal ("the variant that best exploits the
    /// available memory on the proposed accelerator after scale-up").
    pub variant: MemoryVariant,
    /// Reference runtime on the 50 PFLOP/s(th) preparation partition.
    pub reference: TimeMetric,
    /// Committed runtime on the 1 EFLOP/s(th) proposal partition.
    pub committed: TimeMetric,
}

impl HighScalingAssessment {
    /// Choose the best-fitting variant and build the assessment.
    pub fn build(
        id: BenchmarkId,
        offered: &[MemoryVariant],
        proposal_gpu_bytes: u64,
        reference: TimeMetric,
        committed: TimeMetric,
    ) -> Result<Self, SuiteError> {
        let reference_gpu = jubench_cluster::GpuSpec::a100_40gb().memory_bytes;
        let variant = MemoryVariant::best_fit(offered, reference_gpu, proposal_gpu_bytes).ok_or(
            SuiteError::UnsupportedVariant {
                benchmark: id.name(),
                variant: "none fits the proposed accelerator",
            },
        )?;
        if committed.0 <= 0.0 || reference.0 <= 0.0 {
            return Err(SuiteError::RuleViolation {
                benchmark: id.name(),
                rule: "High-Scaling runtimes must be positive".into(),
            });
        }
        Ok(HighScalingAssessment {
            id,
            variant,
            reference,
            committed,
        })
    }

    /// "The final assessment is based on the ratio of the runtime value
    /// committed for the future 1 EFLOP/s(th) sub-partition and the
    /// reference value." Smaller is better.
    pub fn ratio(&self) -> f64 {
        self.committed.ratio_to(self.reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jubench_core::BenchmarkId as B;

    #[test]
    fn exascale_partition_is_20x_peak() {
        let proposal = Machine::jupiter_proposal();
        let nodes = exascale_partition_nodes(&proposal);
        let partition = proposal.partition(nodes.min(proposal.nodes));
        let ratio = partition.peak_flops() / Machine::high_scaling_partition().peak_flops();
        assert!((20.0..21.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn variant_chosen_to_exploit_memory() {
        // A 96 GB accelerator fits all variants: Large is chosen.
        let a = HighScalingAssessment::build(
            B::Arbor,
            &MemoryVariant::ALL,
            96 << 30,
            TimeMetric(100.0),
            TimeMetric(90.0),
        )
        .unwrap();
        assert_eq!(a.variant, MemoryVariant::Large);
        // A 30 GB accelerator only fits up to Medium.
        let b = HighScalingAssessment::build(
            B::Arbor,
            &MemoryVariant::ALL,
            30 << 30,
            TimeMetric(100.0),
            TimeMetric(90.0),
        )
        .unwrap();
        assert_eq!(b.variant, MemoryVariant::Medium);
    }

    #[test]
    fn no_fitting_variant_is_an_error() {
        let err = HighScalingAssessment::build(
            B::Juqcs,
            &[MemoryVariant::Large],
            8 << 30,
            TimeMetric(100.0),
            TimeMetric(90.0),
        )
        .unwrap_err();
        assert!(matches!(err, SuiteError::UnsupportedVariant { .. }));
    }

    #[test]
    fn ratio_is_committed_over_reference() {
        let a = HighScalingAssessment::build(
            B::NekRs,
            &[MemoryVariant::Small, MemoryVariant::Large],
            40 << 30,
            TimeMetric(200.0),
            TimeMetric(100.0),
        )
        .unwrap();
        assert_eq!(a.ratio(), 0.5);
    }
}
