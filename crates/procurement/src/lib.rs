//! # jubench-procurement
//!
//! The procurement methodology of §II: the Total-Cost-of-Ownership-based
//! value-for-money evaluation, benchmark commitments, and the High-Scaling
//! assessment against the 1 EFLOP/s(th) partition.
//!
//! > "The procurement for the JUPITER system uses a
//! > Total-Cost-of-Ownership-based (TCO) value-for-money approach, in
//! > which the number of executed reference workloads over the lifespan of
//! > the system determines the value. [...] costs for electricity and
//! > cooling are a substantial part of the overall project budget."

pub mod commitment;
pub mod composite;
pub mod high_scaling;
pub mod tco;

pub use commitment::{Commitment, Proposal, ProposalEvaluation, ReferenceSet};
pub use composite::{weighted_geometric_mean, CompositeScore, ScoreItem};
pub use high_scaling::{exascale_partition_nodes, HighScalingAssessment};
pub use tco::{energy_to_solution_j, flops_per_joule, TcoModel, TcoResult};
