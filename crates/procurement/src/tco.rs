//! The Total-Cost-of-Ownership model.

use jubench_cluster::Machine;

/// TCO parameters over the system lifetime (or rental horizon). Each
/// backend carries its own energy price, lifetime, and rental rate —
/// on-prem machines amortize capex and pay electricity, cloud machines
/// pay per node-hour with zero capex.
#[derive(Debug, Clone, Copy)]
pub struct TcoModel {
    /// Capital expenditure (system price), in EUR. Zero for rented
    /// (cloud) capacity.
    pub capex_eur: f64,
    /// Hourly rental for the whole machine, in EUR per hour of utilized
    /// operation. Zero for owned systems.
    pub rental_eur_per_hour: f64,
    /// Electricity price, EUR per kWh.
    pub electricity_eur_per_kwh: f64,
    /// Cooling/infrastructure overhead on top of IT power (PUE − 1 adds
    /// ~10–30 % on modern direct-liquid-cooled systems).
    pub pue: f64,
    /// System lifetime in years.
    pub lifetime_years: f64,
    /// Average utilization (fraction of the lifetime the machine draws
    /// load power and runs workloads).
    pub utilization: f64,
}

impl TcoModel {
    /// Typical European HPC-site parameters of the procurement period.
    pub fn eurohpc_defaults(capex_eur: f64) -> Self {
        TcoModel {
            capex_eur,
            rental_eur_per_hour: 0.0,
            electricity_eur_per_kwh: 0.25,
            pue: 1.1,
            lifetime_years: 6.0,
            utilization: 0.85,
        }
    }

    /// The TCO model of a machine backend, derived from its own
    /// [`jubench_cluster::CostModel`]: capex and rental scale with the
    /// partition's node count; energy price, PUE, lifetime, and
    /// utilization come from the backend's economics.
    pub fn for_machine(machine: &Machine) -> Self {
        let c = machine.cost;
        TcoModel {
            capex_eur: c.capex_per_node_eur * machine.nodes as f64,
            rental_eur_per_hour: c.rental_eur_per_node_hour * machine.nodes as f64,
            electricity_eur_per_kwh: c.electricity_eur_per_kwh,
            pue: c.pue,
            lifetime_years: c.lifetime_years,
            utilization: c.utilization,
        }
    }

    /// Lifetime energy of a machine in kWh.
    pub fn lifetime_energy_kwh(&self, machine: &Machine) -> f64 {
        let it_power_kw = machine.nodes as f64 * machine.node.power_w / 1000.0;
        it_power_kw * self.pue * self.utilization * self.lifetime_years * 365.25 * 24.0
    }

    /// Operational expenditure in EUR: electricity plus rental over the
    /// utilized hours of the horizon.
    pub fn opex_eur(&self, machine: &Machine) -> f64 {
        let utilized_hours = self.utilization * self.lifetime_years * 365.25 * 24.0;
        self.lifetime_energy_kwh(machine) * self.electricity_eur_per_kwh
            + self.rental_eur_per_hour * utilized_hours
    }

    /// Full TCO.
    pub fn evaluate(&self, machine: &Machine) -> TcoResult {
        let opex = self.opex_eur(machine);
        TcoResult {
            capex_eur: self.capex_eur,
            opex_eur: opex,
            total_eur: self.capex_eur + opex,
            productive_seconds: self.utilization * self.lifetime_years * 365.25 * 24.0 * 3600.0,
        }
    }
}

/// The evaluated cost structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TcoResult {
    pub capex_eur: f64,
    pub opex_eur: f64,
    pub total_eur: f64,
    /// Seconds of productive operation over the lifetime.
    pub productive_seconds: f64,
}

impl TcoResult {
    /// The value-for-money metric: reference workloads executed per
    /// million EUR of TCO, given the (weighted mean) time per workload.
    pub fn workloads_per_million_eur(&self, seconds_per_workload: f64) -> f64 {
        let workloads = self.productive_seconds / seconds_per_workload;
        workloads / (self.total_eur / 1.0e6)
    }
}

/// Energy efficiency of a machine in FLOP/J — §II-B: the Booster targets
/// "maximum performance with high energy efficiency (FLOP/J)".
pub fn flops_per_joule(machine: &Machine) -> f64 {
    machine.peak_flops() / (machine.nodes as f64 * machine.node.power_w)
}

/// Energy-to-solution of one benchmark execution, in joules: IT power of
/// the partition over the runtime.
pub fn energy_to_solution_j(machine: &Machine, runtime_s: f64) -> f64 {
    machine.nodes as f64 * machine.node.power_w * runtime_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_is_a_substantial_cost_share() {
        // §II-B: "costs for electricity and cooling are a substantial part
        // of the overall project budget". For a 500 M€ exascale system the
        // opex must land in the tens-of-percent range.
        let machine = Machine::jupiter_proposal();
        let tco = TcoModel::eurohpc_defaults(500.0e6);
        let result = tco.evaluate(&machine);
        let share = result.opex_eur / result.total_eur;
        assert!((0.1..0.6).contains(&share), "opex share {share}");
    }

    #[test]
    fn lifetime_energy_scales_with_nodes() {
        let tco = TcoModel::eurohpc_defaults(1.0e6);
        let small = tco.lifetime_energy_kwh(&Machine::juwels_booster().partition(100));
        let large = tco.lifetime_energy_kwh(&Machine::juwels_booster().partition(900));
        assert!((large / small - 9.0).abs() < 1e-9);
    }

    #[test]
    fn value_for_money_prefers_faster_workloads() {
        let machine = Machine::juwels_booster();
        let result = TcoModel::eurohpc_defaults(100.0e6).evaluate(&machine);
        let slow = result.workloads_per_million_eur(1000.0);
        let fast = result.workloads_per_million_eur(500.0);
        assert!((fast / slow - 2.0).abs() < 1e-12);
    }

    #[test]
    fn next_gen_devices_improve_flop_per_joule() {
        // The generational leap the procurement incentivizes.
        let old = flops_per_joule(&Machine::juwels_booster());
        let new = flops_per_joule(&Machine::jupiter_proposal());
        assert!(new > 2.0 * old, "FLOP/J {old:.2e} → {new:.2e}");
    }

    #[test]
    fn energy_to_solution_scales_with_partition_and_time() {
        let m = Machine::juwels_booster().partition(8);
        let e = energy_to_solution_j(&m, 498.0);
        // 8 nodes × 2.5 kW × 498 s ≈ 9.96 MJ ≈ 2.77 kWh.
        assert!((e - 8.0 * 2500.0 * 498.0).abs() < 1.0);
        assert!(energy_to_solution_j(&m, 996.0) > e);
    }

    #[test]
    fn for_machine_prices_the_partition() {
        let full = TcoModel::for_machine(&Machine::juwels_booster());
        let half = TcoModel::for_machine(&Machine::juwels_booster().partition(468));
        assert!((full.capex_eur / half.capex_eur - 2.0).abs() < 1e-12);
        assert_eq!(full.rental_eur_per_hour, 0.0);
        assert_eq!(full.electricity_eur_per_kwh, 0.25);
    }

    #[test]
    fn cloud_backends_pay_rent_instead_of_capex() {
        let mut cloud = Machine::juwels_booster().partition(8);
        cloud.cost = jubench_cluster::CostModel::cloud(28.0);
        let tco = TcoModel::for_machine(&cloud);
        assert_eq!(tco.capex_eur, 0.0);
        assert!((tco.rental_eur_per_hour - 8.0 * 28.0).abs() < 1e-9);
        // Zero electricity price: the whole opex is rent.
        let result = tco.evaluate(&cloud);
        assert_eq!(result.capex_eur, 0.0);
        let utilized_hours = tco.utilization * tco.lifetime_years * 365.25 * 24.0;
        assert!((result.opex_eur - tco.rental_eur_per_hour * utilized_hours).abs() < 1e-6);
    }

    #[test]
    fn pue_inflates_opex() {
        let machine = Machine::juwels_booster();
        let mut a = TcoModel::eurohpc_defaults(1.0e6);
        a.pue = 1.0;
        let mut b = a;
        b.pue = 1.3;
        assert!((b.opex_eur(&machine) / a.opex_eur(&machine) - 1.3).abs() < 1e-12);
    }
}
