//! The NAStJA benchmark definition.

use jubench_apps_common::{outcome, real_exec_world_per_node, AppModel, Phase};
use jubench_cluster::{balanced_dims3, CommPattern, Machine, Work};
use jubench_core::{
    suite_meta, Benchmark, BenchmarkId, BenchmarkMeta, RunConfig, RunOutcome, SuiteError,
    VerificationOutcome,
};
use jubench_simmpi::ReduceOp;

use crate::potts::PottsBlock;

/// The benchmark investigates "the first 5050 Monte Carlo steps of a
/// system of size 720 × 720 × 1152 µm³, containing roughly 600,000 cells".
pub const MC_STEPS: u32 = 5050;
pub const SYSTEM_UM: [u64; 3] = [720, 720, 1152];
pub const CELLS: u64 = 600_000;
/// Lattice sites per µm³ at subcellular resolution (1 site/µm³).
const SITES: f64 = (720 * 720 * 1152) as f64;

pub struct Nastja;

impl Nastja {
    fn model(machine: Machine) -> AppModel {
        // CPU-only: one MPI block per node.
        let nodes = machine.nodes as f64;
        let sites_per_node = SITES / nodes;
        // Per MC step: one attempt per site; ~40 FLOP and ~120 B of
        // scattered access each ("an irregular memory access pattern at
        // each iteration, which is not suitable for GPU execution" — the
        // low flop efficiency reflects that).
        let work = Work::new(40.0 * sites_per_node, 120.0 * sites_per_node);
        let rank_dims = balanced_dims3(machine.nodes);
        let face = (sites_per_node.powf(2.0 / 3.0) * 4.0) as u64;
        AppModel::per_node(machine, MC_STEPS)
            .with_efficiencies(0.1, 0.35)
            .with_phase(Phase::compute("potts sweep", work))
            .with_phase(Phase::comm(
                "boundary exchange",
                CommPattern::Halo3d {
                    rank_dims,
                    bytes_per_face: [face; 3],
                },
            ))
    }
}

impl Benchmark for Nastja {
    fn meta(&self) -> BenchmarkMeta {
        suite_meta()
            .into_iter()
            .find(|m| m.id == BenchmarkId::Nastja)
            .unwrap()
    }

    fn run(&self, cfg: &RunConfig) -> Result<RunOutcome, SuiteError> {
        self.validate_nodes(cfg.nodes)?;
        let machine = cfg.machine();
        let timing = Self::model(machine).timing();

        // Real execution: distributed cell sorting; verification by cell
        // statistics (site conservation, energy descent).
        let world = real_exec_world_per_node(machine);
        let ranks = world.ranks() as usize;
        let seed = cfg.seed;
        let cold_sweeps = jubench_apps_common::scale_steps(cfg.scale, 10, 40, 100);
        let results = world.run(move |comm| {
            let nx = 4 * ranks; // equal slabs of 4 planes
            let mut block = PottsBlock::cell_sorting(comm, [nx, 8, 8], 4, seed);
            let sites0: u64 = block.volumes().values().sum();
            // Hot phase roughens the tissue, the cold phase must relax it
            // (at T → 0 the Metropolis rule only accepts ΔE ≤ 0).
            block.temperature = 50.0;
            let mut accepted = 0;
            for _ in 0..5 {
                accepted += block.sweep(comm).unwrap();
            }
            let e0 = comm
                .allreduce_scalar(block.local_energy(), ReduceOp::Sum)
                .unwrap();
            block.temperature = 0.01;
            for _ in 0..cold_sweeps {
                accepted += block.sweep(comm).unwrap();
            }
            let e1 = comm
                .allreduce_scalar(block.local_energy(), ReduceOp::Sum)
                .unwrap();
            let sites1: u64 = block.volumes().values().sum();
            let composition = block.global_type_volumes(comm).unwrap();
            (sites0, sites1, e0, e1, accepted, composition)
        });
        let (s0, s1, e0, e1, accepted, composition) = results[0].value;
        let verification = if s0 != s1 {
            VerificationOutcome::Failed {
                detail: format!("lattice sites changed: {s0} → {s1}"),
            }
        } else if e1 >= e0 {
            VerificationOutcome::Failed {
                detail: format!("cold relaxation did not lower the energy: {e0} → {e1}"),
            }
        } else {
            VerificationOutcome::KeyMetrics {
                metrics: vec![
                    ("sites".into(), s1 as f64, s0 as f64),
                    ("energy_ratio".into(), e1 / e0, 1.0),
                ],
            }
        };
        Ok(outcome(
            timing,
            verification,
            vec![
                ("mc_steps".into(), MC_STEPS as f64),
                ("cells".into(), CELLS as f64),
                ("accepted_moves".into(), accepted as f64),
                ("type_a_volume".into(), composition[1]),
                ("type_b_volume".into(), composition[2]),
            ],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_verifies_cell_statistics() {
        let out = Nastja.run(&RunConfig::test(8)).unwrap();
        assert!(out.verification.passed());
        assert!(out.metric("accepted_moves").unwrap() > 0.0);
        assert_eq!(out.metric("mc_steps"), Some(5050.0));
    }

    #[test]
    fn workload_matches_paper() {
        assert_eq!(SYSTEM_UM, [720, 720, 1152]);
        assert_eq!(CELLS, 600_000);
        assert_eq!(MC_STEPS, 5050);
    }

    #[test]
    fn cpu_only_per_node_placement() {
        let m = Nastja.meta();
        assert!(m
            .targets
            .contains(&jubench_core::ExecutionTarget::ClusterCpu));
    }

    #[test]
    fn strong_scaling_is_good_for_nearest_neighbour_codes() {
        let t4 = Nastja.run(&RunConfig::test(4)).unwrap();
        let t8 = Nastja.run(&RunConfig::test(8)).unwrap();
        let t16 = Nastja.run(&RunConfig::test(16)).unwrap();
        let speedup = t8.virtual_time_s / t16.virtual_time_s;
        assert!(speedup > 1.7, "8→16 speedup {speedup}");
        assert!(t4.virtual_time_s > t8.virtual_time_s);
    }
}
