//! # jubench-apps-bio
//!
//! Proxies for the biology/soft-matter benchmarks:
//!
//! - **NAStJA** (§IV-A1f): the Cellular Potts Model tissue simulator —
//!   "relies on nearest neighbour interactions and is parallelized by
//!   dividing the overall workload into multiple sub-regions, called
//!   blocks [...] with boundaries being exchanged". The test case is
//!   adhesion-driven cell sorting; the paper's workload runs the first
//!   5050 Monte Carlo steps of a 720 × 720 × 1152 µm³ system with roughly
//!   600,000 cells. CPU-only: "an irregular memory access pattern at each
//!   iteration, which is not suitable for GPU execution".
//! - **SOMA** (prepared but not used): Monte Carlo for the "Single Chain
//!   in Mean Field" model of soft coarse-grained polymer chains — bead
//!   chains interacting only through grid-accumulated density fields.

pub mod nastja;
pub mod potts;
pub mod soma;

pub use nastja::Nastja;
pub use potts::PottsBlock;
pub use soma::{Soma, SomaSystem};
