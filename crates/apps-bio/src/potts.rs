//! The Cellular Potts Model on distributed blocks.
//!
//! Sites carry a cell id (0 = medium); cells have a type (two types for
//! the cell-sorting case). The Hamiltonian is the Graner-Glazier form:
//! adhesion energy J(τ₁, τ₂) over unlike nearest-neighbour site pairs plus
//! a volume constraint λ(V − V_target)². A Monte Carlo step attempts to
//! copy a random neighbour's id into a random site and accepts with the
//! Metropolis rule.
//!
//! Distribution: x-slabs; each sweep updates only interior sites (the
//! boundary layer is frozen within a sweep), then exchanges the boundary
//! planes — NAStJA's "blocks ... with boundaries being exchanged".

use std::collections::BTreeMap;

use jubench_kernels::rank_rng;
use jubench_kernels::DetRng;
use jubench_simmpi::{Comm, ReduceOp, SimError};

/// Cell types: medium (only id 0), plus two sorted cell kinds.
pub const TYPE_MEDIUM: u8 = 0;
pub const TYPE_A: u8 = 1;
pub const TYPE_B: u8 = 2;

/// Adhesion energies J(τ₁, τ₂) for the cell-sorting case: like cells
/// adhere more strongly (lower J) than unlike cells, and both prefer each
/// other over the medium — Steinberg's differential-adhesion setting.
pub fn adhesion(t1: u8, t2: u8) -> f64 {
    match (t1.min(t2), t1.max(t2)) {
        (TYPE_MEDIUM, TYPE_MEDIUM) => 0.0,
        (TYPE_MEDIUM, _) => 16.0,
        (TYPE_A, TYPE_A) => 2.0,
        (TYPE_B, TYPE_B) => 8.0,
        _ => 11.0, // A-B contact: weaker than like-like adhesion
    }
}

/// A rank-local x-slab of the global lattice.
pub struct PottsBlock {
    /// Global dims.
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Local slab `[x0, x1)` plus 1 ghost plane on each side.
    pub x0: usize,
    pub x1: usize,
    /// Site cell ids, padded in x: (lx + 2) × ny × nz.
    pub sites: Vec<u32>,
    /// Cell id → type.
    pub cell_type: BTreeMap<u32, u8>,
    /// Volume constraint strength and per-cell target volume.
    pub lambda: f64,
    pub v_target: f64,
    /// Metropolis temperature.
    pub temperature: f64,
    rng: DetRng,
}

impl PottsBlock {
    /// Random mixture of cubic cells of two types — the unsorted initial
    /// state of the cell-sorting experiment.
    pub fn cell_sorting(comm: &Comm, dims: [usize; 3], cell_side: usize, seed: u64) -> Self {
        let [nx, ny, nz] = dims;
        let p = comm.size() as usize;
        assert!(nx % p == 0, "nx must divide the rank count for equal slabs");
        assert!(nx % cell_side == 0 && ny % cell_side == 0 && nz % cell_side == 0);
        let lx = nx / p;
        let x0 = comm.rank() as usize * lx;
        let x1 = x0 + lx;
        let plane = ny * nz;
        let mut sites = vec![0u32; (lx + 2) * plane];
        // Global deterministic cell layout: cell id from the cube index,
        // type alternating pseudo-randomly (same on every rank).
        let cells_x = nx / cell_side;
        let cells_y = ny / cell_side;
        let cells_z = nz / cell_side;
        let mut type_rng = rank_rng(seed, 0);
        let mut cell_type = BTreeMap::new();
        cell_type.insert(0, TYPE_MEDIUM);
        for c in 0..cells_x * cells_y * cells_z {
            let t = if type_rng.gen_bool(0.5) {
                TYPE_A
            } else {
                TYPE_B
            };
            cell_type.insert(c as u32 + 1, t);
        }
        let cell_id = |gx: usize, gy: usize, gz: usize| -> u32 {
            let cx = gx / cell_side;
            let cy = gy / cell_side;
            let cz = gz / cell_side;
            ((cx * cells_y + cy) * cells_z + cz) as u32 + 1
        };
        for ix in 0..lx {
            for iy in 0..ny {
                for iz in 0..nz {
                    sites[((ix + 1) * ny + iy) * nz + iz] = cell_id(x0 + ix, iy, iz);
                }
            }
        }
        PottsBlock {
            nx,
            ny,
            nz,
            x0,
            x1,
            sites,
            cell_type,
            lambda: 1.0,
            v_target: (cell_side * cell_side * cell_side) as f64,
            temperature: 3.0,
            rng: rank_rng(seed ^ 0x90775, comm.rank()),
        }
    }

    fn lx(&self) -> usize {
        self.x1 - self.x0
    }

    #[inline]
    fn idx(&self, ix: usize, iy: usize, iz: usize) -> usize {
        // ix is padded: 0 = low ghost, 1..=lx interior, lx+1 = high ghost.
        (ix * self.ny + iy) * self.nz + iz
    }

    fn type_of(&self, id: u32) -> u8 {
        *self.cell_type.get(&id).unwrap_or(&TYPE_MEDIUM)
    }

    /// Local volume of each cell id (interior sites only).
    pub fn volumes(&self) -> BTreeMap<u32, u64> {
        let mut v = BTreeMap::new();
        for ix in 1..=self.lx() {
            for iy in 0..self.ny {
                for iz in 0..self.nz {
                    *v.entry(self.sites[self.idx(ix, iy, iz)]).or_insert(0) += 1;
                }
            }
        }
        v
    }

    /// Local adhesion + volume energy (volume part uses the local volume
    /// share; adequate for monitoring energy descent).
    pub fn local_energy(&self) -> f64 {
        let mut adhesion_e = 0.0;
        let lx = self.lx();
        for ix in 1..=lx {
            for iy in 0..self.ny {
                for iz in 0..self.nz {
                    let id = self.sites[self.idx(ix, iy, iz)];
                    let t = self.type_of(id);
                    // Forward neighbours only (each pair counted once);
                    // periodic in y/z, ghost in +x.
                    let neighbours = [
                        self.sites[self.idx(ix + 1, iy, iz)],
                        self.sites[self.idx(ix, (iy + 1) % self.ny, iz)],
                        self.sites[self.idx(ix, iy, (iz + 1) % self.nz)],
                    ];
                    for nid in neighbours {
                        if nid != id {
                            adhesion_e += adhesion(t, self.type_of(nid));
                        }
                    }
                }
            }
        }
        let volume_e: f64 = self
            .volumes()
            .iter()
            .filter(|(id, _)| **id != 0)
            .map(|(_, &v)| self.lambda * (v as f64 - self.v_target).powi(2))
            .sum();
        adhesion_e + volume_e
    }

    /// Energy change of copying `new_id` into site (ix, iy, iz).
    fn delta_e(
        &self,
        ix: usize,
        iy: usize,
        iz: usize,
        new_id: u32,
        volumes: &BTreeMap<u32, u64>,
    ) -> f64 {
        let old_id = self.sites[self.idx(ix, iy, iz)];
        let (t_old, t_new) = (self.type_of(old_id), self.type_of(new_id));
        let mut de = 0.0;
        let neigh = [
            (ix - 1, iy, iz),
            (ix + 1, iy, iz),
            (ix, (iy + 1) % self.ny, iz),
            (ix, (iy + self.ny - 1) % self.ny, iz),
            (ix, iy, (iz + 1) % self.nz),
            (ix, iy, (iz + self.nz - 1) % self.nz),
        ];
        for (jx, jy, jz) in neigh {
            let nid = self.sites[self.idx(jx, jy, jz)];
            let tn = self.type_of(nid);
            let before = if nid != old_id {
                adhesion(t_old, tn)
            } else {
                0.0
            };
            let after = if nid != new_id {
                adhesion(t_new, tn)
            } else {
                0.0
            };
            de += after - before;
        }
        // Volume terms.
        let vol = |id: u32| *volumes.get(&id).unwrap_or(&0) as f64;
        if old_id != 0 {
            let v = vol(old_id);
            de += self.lambda * ((v - 1.0 - self.v_target).powi(2) - (v - self.v_target).powi(2));
        }
        if new_id != 0 {
            let v = vol(new_id);
            de += self.lambda * ((v + 1.0 - self.v_target).powi(2) - (v - self.v_target).powi(2));
        }
        de
    }

    /// One Monte Carlo sweep: as many copy attempts as interior sites,
    /// then a boundary exchange. Returns the number of accepted copies.
    pub fn sweep(&mut self, comm: &mut Comm) -> Result<u64, SimError> {
        let lx = self.lx();
        let mut volumes = self.volumes();
        let attempts = lx * self.ny * self.nz;
        let mut accepted = 0;
        for _ in 0..attempts {
            // Interior sites only — ix ∈ [2, lx−1] in padded coords keeps a
            // one-plane safety margin so ghost data stays consistent
            // within the sweep (for lx < 3 the sweep degenerates).
            if lx < 3 {
                break;
            }
            let ix = self.rng.gen_range(2..lx);
            let iy = self.rng.gen_range(0..self.ny);
            let iz = self.rng.gen_range(0..self.nz);
            // Random 6-neighbour source.
            let dir = self.rng.gen_range(0..6u8);
            let (jx, jy, jz) = match dir {
                0 => (ix - 1, iy, iz),
                1 => (ix + 1, iy, iz),
                2 => (ix, (iy + 1) % self.ny, iz),
                3 => (ix, (iy + self.ny - 1) % self.ny, iz),
                4 => (ix, iy, (iz + 1) % self.nz),
                _ => (ix, iy, (iz + self.nz - 1) % self.nz),
            };
            let new_id = self.sites[self.idx(jx, jy, jz)];
            let old_id = self.sites[self.idx(ix, iy, iz)];
            if new_id == old_id {
                continue;
            }
            let de = self.delta_e(ix, iy, iz, new_id, &volumes);
            let accept = de <= 0.0 || {
                let u: f64 = self.rng.gen_range(0.0..1.0);
                u < (-de / self.temperature).exp()
            };
            if accept {
                let idx = self.idx(ix, iy, iz);
                self.sites[idx] = new_id;
                *volumes.entry(old_id).or_insert(1) -= 1;
                *volumes.entry(new_id).or_insert(0) += 1;
                accepted += 1;
            }
        }
        self.exchange_boundaries(comm)?;
        Ok(accepted)
    }

    /// Exchange the boundary planes with the slab neighbours (periodic).
    fn exchange_boundaries(&mut self, comm: &mut Comm) -> Result<(), SimError> {
        let plane = self.ny * self.nz;
        let lx = self.lx();
        let low: Vec<u64> = (0..plane).map(|q| self.sites[plane + q] as u64).collect();
        let high: Vec<u64> = (0..plane)
            .map(|q| self.sites[lx * plane + q] as u64)
            .collect();
        let (from_left, from_right) = if comm.size() == 1 {
            (high.clone(), low.clone())
        } else {
            let right = (comm.rank() + 1) % comm.size();
            let left = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send_u64(right, &high)?;
            comm.send_u64(left, &low)?;
            (comm.recv_u64(left)?, comm.recv_u64(right)?)
        };
        for (q, v) in from_left.iter().enumerate() {
            self.sites[q] = *v as u32;
        }
        for (q, v) in from_right.iter().enumerate() {
            self.sites[(lx + 1) * plane + q] = *v as u32;
        }
        Ok(())
    }

    /// Global site count per type — the total tissue composition.
    pub fn global_type_volumes(&self, comm: &mut Comm) -> Result<[f64; 3], SimError> {
        let mut local = [0.0f64; 3];
        for (id, v) in self.volumes() {
            local[self.type_of(id) as usize] += v as f64;
        }
        let mut out = [0.0; 3];
        for (t, l) in local.into_iter().enumerate() {
            out[t] = comm.allreduce_scalar(l, ReduceOp::Sum)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jubench_cluster::Machine;
    use jubench_simmpi::World;

    fn world4() -> World {
        World::per_node(Machine::juwels_booster().partition(4))
    }

    #[test]
    fn adhesion_matrix_favours_sorting() {
        // Like-like contacts must be cheaper than unlike contacts.
        assert!(adhesion(TYPE_A, TYPE_A) < adhesion(TYPE_A, TYPE_B));
        assert!(adhesion(TYPE_B, TYPE_B) < adhesion(TYPE_A, TYPE_B));
        assert!(adhesion(TYPE_MEDIUM, TYPE_A) > adhesion(TYPE_A, TYPE_B));
        // Symmetry.
        assert_eq!(adhesion(TYPE_A, TYPE_B), adhesion(TYPE_B, TYPE_A));
    }

    #[test]
    fn initial_state_tiles_the_lattice() {
        let results = world4().run(|comm| {
            let block = PottsBlock::cell_sorting(comm, [8, 8, 8], 4, 1);
            block.volumes().values().sum::<u64>()
        });
        let total: u64 = results.iter().map(|r| r.value).sum();
        assert_eq!(total, 512);
    }

    #[test]
    fn type_volumes_are_conserved_under_sweeps() {
        // Copy attempts move cell boundaries but the global composition
        // changes only by boundary moves — total sites stay constant.
        let results = world4().run(|comm| {
            let mut block = PottsBlock::cell_sorting(comm, [16, 8, 8], 4, 2);
            let before: u64 = block.volumes().values().sum();
            for _ in 0..5 {
                block.sweep(comm).unwrap();
            }
            let after: u64 = block.volumes().values().sum();
            (before, after)
        });
        for r in &results {
            assert_eq!(r.value.0, r.value.1, "sites appeared/vanished");
        }
    }

    #[test]
    fn annealing_relaxes_the_roughened_tissue() {
        // Hot phase roughens the perfect tiling (moves get accepted), a
        // cold phase then strictly relaxes: at T → 0 only ΔE ≤ 0 moves
        // pass the Metropolis test, so the energy cannot increase and in
        // practice drops markedly.
        let results = world4().run(|comm| {
            let mut block = PottsBlock::cell_sorting(comm, [16, 8, 8], 4, 3);
            block.temperature = 50.0;
            for _ in 0..5 {
                block.sweep(comm).unwrap();
            }
            let e_hot = comm
                .allreduce_scalar(block.local_energy(), ReduceOp::Sum)
                .unwrap();
            block.temperature = 0.01;
            for _ in 0..10 {
                block.sweep(comm).unwrap();
            }
            let e_cold = comm
                .allreduce_scalar(block.local_energy(), ReduceOp::Sum)
                .unwrap();
            (e_hot, e_cold)
        });
        for r in &results {
            assert!(
                r.value.1 < r.value.0,
                "energy {} → {}",
                r.value.0,
                r.value.1
            );
        }
    }

    #[test]
    fn hot_sweeps_accept_moves() {
        let results = world4().run(|comm| {
            let mut block = PottsBlock::cell_sorting(comm, [16, 8, 8], 4, 4);
            block.temperature = 50.0;
            let mut total = 0;
            for _ in 0..3 {
                total += block.sweep(comm).unwrap();
            }
            total
        });
        for r in &results {
            assert!(r.value > 0, "no moves accepted on rank {}", r.rank);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let run = |seed: u64| {
            world4().run(move |comm| {
                let mut block = PottsBlock::cell_sorting(comm, [16, 8, 8], 4, seed);
                for _ in 0..3 {
                    block.sweep(comm).unwrap();
                }
                block.local_energy()
            })
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.value, y.value);
        }
        assert!(a.iter().zip(&c).any(|(x, y)| x.value != y.value));
    }
}
