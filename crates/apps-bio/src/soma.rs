//! The SOMA benchmark: "Single Chain in Mean Field" Monte Carlo for soft
//! coarse-grained polymer chains. Beads interact only through density
//! fields accumulated on a grid — chains are independent given the
//! fields, which is what makes the model "massively parallel".

use jubench_apps_common::{outcome, real_exec_world, AppModel, Phase};
use jubench_cluster::{CommPattern, Machine, Work};
use jubench_core::{
    suite_meta, Benchmark, BenchmarkId, BenchmarkMeta, RunConfig, RunOutcome, SuiteError,
    VerificationOutcome,
};
use jubench_kernels::rank_rng;
use jubench_kernels::DetRng;
use jubench_simmpi::{Comm, ReduceOp, SimError};

/// An AB diblock copolymer chain of harmonic-bonded beads.
#[derive(Debug, Clone)]
pub struct Chain {
    /// Bead positions in the unit-cube-per-cell grid coordinates.
    pub beads: Vec<[f64; 3]>,
}

/// The per-rank part of the SCMF system.
pub struct SomaSystem {
    /// Cubic density grid side.
    pub grid: usize,
    /// Beads per chain (first half type A, second half B).
    pub beads_per_chain: usize,
    pub chains: Vec<Chain>,
    /// Global A and B density fields (replicated after the allreduce).
    pub density_a: Vec<f64>,
    pub density_b: Vec<f64>,
    /// Flory-Huggins repulsion between A and B.
    pub chi: f64,
    /// Compressibility penalty.
    pub kappa: f64,
    /// Harmonic bond strength.
    pub bond_k: f64,
    pub temperature: f64,
    rng: DetRng,
    pub accepted: u64,
    pub attempted: u64,
}

impl SomaSystem {
    pub fn new(
        comm: &Comm,
        grid: usize,
        chains_per_rank: usize,
        beads_per_chain: usize,
        seed: u64,
    ) -> Self {
        let mut rng = rank_rng(seed, comm.rank());
        let l = grid as f64;
        let chains = (0..chains_per_rank)
            .map(|_| {
                // A random walk with short steps keeps bonds relaxed.
                let mut pos = [
                    rng.gen_range(0.0..l),
                    rng.gen_range(0.0..l),
                    rng.gen_range(0.0..l),
                ];
                let beads = (0..beads_per_chain)
                    .map(|_| {
                        for p in pos.iter_mut() {
                            *p = (*p + rng.gen_range(-0.3..0.3)).rem_euclid(l);
                        }
                        pos
                    })
                    .collect();
                Chain { beads }
            })
            .collect();
        SomaSystem {
            grid,
            beads_per_chain,
            chains,
            density_a: vec![0.0; grid * grid * grid],
            density_b: vec![0.0; grid * grid * grid],
            chi: 1.0,
            kappa: 2.0,
            bond_k: 3.0,
            temperature: 1.0,
            rng,
            accepted: 0,
            attempted: 0,
        }
    }

    #[inline]
    fn cell(&self, pos: &[f64; 3]) -> usize {
        let g = self.grid;
        let i = (pos[0] as usize).min(g - 1);
        let j = (pos[1] as usize).min(g - 1);
        let k = (pos[2] as usize).min(g - 1);
        (i * g + j) * g + k
    }

    /// Accumulate the local densities and allreduce them to the global
    /// mean fields — the "quasi-instantaneous field approximation".
    pub fn update_fields(&mut self, comm: &mut Comm) -> Result<(), SimError> {
        self.density_a.fill(0.0);
        self.density_b.fill(0.0);
        let half = self.beads_per_chain / 2;
        for chain in &self.chains {
            for (b, pos) in chain.beads.iter().enumerate() {
                let c = self.cell(pos);
                if b < half {
                    self.density_a[c] += 1.0;
                } else {
                    self.density_b[c] += 1.0;
                }
            }
        }
        comm.allreduce_f64(&mut self.density_a, ReduceOp::Sum)?;
        comm.allreduce_f64(&mut self.density_b, ReduceOp::Sum)?;
        Ok(())
    }

    /// Field energy density of one cell.
    #[inline]
    fn cell_energy(&self, c: usize) -> f64 {
        let (a, b) = (self.density_a[c], self.density_b[c]);
        self.chi * a * b + self.kappa * (a + b).powi(2) * 0.01
    }

    /// Total field energy Σ cells (χ·ρA·ρB + compressibility term).
    pub fn field_energy(&self) -> f64 {
        (0..self.density_a.len()).map(|c| self.cell_energy(c)).sum()
    }

    /// Bond energy of a bead with its chain neighbours.
    fn bond_energy(&self, chain: &Chain, bead: usize, pos: &[f64; 3]) -> f64 {
        let l = self.grid as f64;
        let mut e = 0.0;
        for n in [bead.wrapping_sub(1), bead + 1] {
            if let Some(other) = chain.beads.get(n) {
                let mut d2 = 0.0;
                for d in 0..3 {
                    let mut diff = (pos[d] - other[d]).abs();
                    if diff > l / 2.0 {
                        diff = l - diff;
                    }
                    d2 += diff * diff;
                }
                e += 0.5 * self.bond_k * d2;
            }
        }
        e
    }

    /// One SCMF Monte Carlo sweep: one displacement attempt per bead
    /// against the frozen mean fields, then a field refresh.
    pub fn sweep(&mut self, comm: &mut Comm) -> Result<(), SimError> {
        let l = self.grid as f64;
        let half = self.beads_per_chain / 2;
        let mut chains = std::mem::take(&mut self.chains);
        for chain in chains.iter_mut() {
            for bead in 0..chain.beads.len() {
                self.attempted += 1;
                let old = chain.beads[bead];
                let mut new = old;
                for p in new.iter_mut() {
                    *p = (*p + self.rng.gen_range(-0.5..0.5)).rem_euclid(l);
                }
                let is_a = bead < half;
                let (c_old, c_new) = (self.cell(&old), self.cell(&new));
                // Field ΔE: moving one bead between cells.
                let de_field = if c_old == c_new {
                    0.0
                } else {
                    let other_old = if is_a {
                        self.density_b[c_old]
                    } else {
                        self.density_a[c_old]
                    };
                    let other_new = if is_a {
                        self.density_b[c_new]
                    } else {
                        self.density_a[c_new]
                    };
                    let tot_old = self.density_a[c_old] + self.density_b[c_old];
                    let tot_new = self.density_a[c_new] + self.density_b[c_new];
                    self.chi * (other_new - other_old)
                        + self.kappa * 0.02 * (tot_new - tot_old + 1.0)
                };
                let de_bond =
                    self.bond_energy(chain, bead, &new) - self.bond_energy(chain, bead, &old);
                let de = de_field + de_bond;
                let accept =
                    de <= 0.0 || self.rng.gen_range(0.0..1.0) < (-de / self.temperature).exp();
                if accept {
                    chain.beads[bead] = new;
                    self.accepted += 1;
                }
            }
        }
        self.chains = chains;
        self.update_fields(comm)
    }

    /// Total beads across all ranks.
    pub fn global_beads(&self, comm: &mut Comm) -> Result<f64, SimError> {
        let local = (self.chains.len() * self.beads_per_chain) as f64;
        comm.allreduce_scalar(local, ReduceOp::Sum)
    }

    /// Mean squared bond length (local).
    pub fn mean_bond_sq(&self) -> f64 {
        let l = self.grid as f64;
        let mut total = 0.0;
        let mut count = 0;
        for chain in &self.chains {
            for w in chain.beads.windows(2) {
                let mut d2 = 0.0;
                for d in 0..3 {
                    let mut diff = (w[0][d] - w[1][d]).abs();
                    if diff > l / 2.0 {
                        diff = l - diff;
                    }
                    d2 += diff * diff;
                }
                total += d2;
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    pub fn acceptance_rate(&self) -> f64 {
        if self.attempted == 0 {
            0.0
        } else {
            self.accepted as f64 / self.attempted as f64
        }
    }
}

pub struct Soma;

impl Soma {
    fn model(machine: Machine) -> AppModel {
        // Paper-scale polymer melt: ~1e8 beads, field grid 128³.
        let beads_total = 1.0e8;
        let devices = machine.devices() as f64;
        let beads_per_gpu = beads_total / devices;
        let field_cells = 128.0f64.powi(3);
        let work = Work::new(120.0 * beads_per_gpu, 150.0 * beads_per_gpu);
        AppModel::new(machine, 200)
            .with_efficiencies(0.3, 0.7)
            .with_phase(Phase::compute("mc moves", work))
            .with_phase(Phase::comm(
                "field allreduce",
                CommPattern::AllReduce {
                    bytes: (field_cells * 8.0 * 2.0) as u64,
                },
            ))
    }
}

impl Benchmark for Soma {
    fn meta(&self) -> BenchmarkMeta {
        suite_meta()
            .into_iter()
            .find(|m| m.id == BenchmarkId::Soma)
            .unwrap()
    }

    fn run(&self, cfg: &RunConfig) -> Result<RunOutcome, SuiteError> {
        self.validate_nodes(cfg.nodes)?;
        let machine = cfg.machine();
        let timing = Self::model(machine).timing();

        let world = real_exec_world(machine);
        let seed = cfg.seed;
        let results = world.run(move |comm| {
            let mut sys = SomaSystem::new(comm, 6, 4, 8, seed);
            sys.update_fields(comm).unwrap();
            let beads0 = sys.global_beads(comm).unwrap();
            for _ in 0..10 {
                sys.sweep(comm).unwrap();
            }
            let beads1 = sys.global_beads(comm).unwrap();
            (beads0, beads1, sys.acceptance_rate(), sys.mean_bond_sq())
        });
        let (b0, b1, acc, bond_sq) = results[0].value;
        let verification = if b0 != b1 {
            VerificationOutcome::Failed {
                detail: format!("beads changed: {b0} → {b1}"),
            }
        } else if !(0.05..0.999).contains(&acc) {
            VerificationOutcome::Failed {
                detail: format!("acceptance rate {acc} outside the sane window"),
            }
        } else {
            VerificationOutcome::KeyMetrics {
                metrics: vec![("beads".into(), b1, b0), ("acceptance".into(), acc, acc)],
            }
        };
        Ok(outcome(
            timing,
            verification,
            vec![
                ("acceptance_rate".into(), acc),
                ("mean_bond_sq".into(), bond_sq),
            ],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jubench_simmpi::World;

    #[test]
    fn run_on_reference_nodes() {
        let out = Soma.run(&RunConfig::test(4)).unwrap();
        assert!(out.verification.passed());
        let acc = out.metric("acceptance_rate").unwrap();
        assert!((0.05..1.0).contains(&acc), "acceptance {acc}");
    }

    #[test]
    fn fields_count_every_bead() {
        let w = World::new(Machine::juwels_booster().partition(1));
        let results = w.run(|comm| {
            let mut sys = SomaSystem::new(comm, 5, 3, 6, 2);
            sys.update_fields(comm).unwrap();
            let total: f64 = sys.density_a.iter().sum::<f64>() + sys.density_b.iter().sum::<f64>();
            total
        });
        // 4 ranks × 3 chains × 6 beads = 72 beads, all deposited.
        for r in &results {
            assert_eq!(r.value, 72.0);
        }
    }

    #[test]
    fn bonds_keep_chains_compact() {
        let w = World::new(Machine::juwels_booster().partition(1));
        let results = w.run(|comm| {
            let mut sys = SomaSystem::new(comm, 6, 4, 8, 3);
            sys.update_fields(comm).unwrap();
            for _ in 0..20 {
                sys.sweep(comm).unwrap();
            }
            sys.mean_bond_sq()
        });
        for r in &results {
            // Harmonic bonds with k=3 at T=1: ⟨b²⟩ ≈ 3/k per dimension ≈ 1;
            // anything below a few lattice units is healthy.
            assert!(r.value < 4.0, "bonds stretched to ⟨b²⟩ = {}", r.value);
            assert!(r.value > 0.0);
        }
    }

    #[test]
    fn soma_not_used_in_procurement() {
        assert!(!Soma.meta().used_in_procurement);
    }

    #[test]
    fn chi_repulsion_separates_ab() {
        // With strong χ the A and B densities anti-correlate after
        // equilibration: Σ a·b per cell drops from the initial value.
        let w = World::new(Machine::juwels_booster().partition(1));
        let results = w.run(|comm| {
            let mut sys = SomaSystem::new(comm, 4, 6, 8, 4);
            sys.chi = 4.0;
            sys.update_fields(comm).unwrap();
            let overlap0: f64 = sys
                .density_a
                .iter()
                .zip(&sys.density_b)
                .map(|(a, b)| a * b)
                .sum();
            for _ in 0..30 {
                sys.sweep(comm).unwrap();
            }
            let overlap1: f64 = sys
                .density_a
                .iter()
                .zip(&sys.density_b)
                .map(|(a, b)| a * b)
                .sum();
            (overlap0, overlap1)
        });
        for r in &results {
            assert!(
                r.value.1 < r.value.0,
                "A-B overlap did not decrease: {} → {}",
                r.value.0,
                r.value.1
            );
        }
    }
}
