//! The regression gate: compare two `BENCH_*.json` reports.
//!
//! For every benchmark id in either report the gate computes the relative
//! median delta `new/baseline - 1` and classifies it against a
//! symmetric tolerance band. Self-comparison of any report yields zero
//! deltas across the board — the round-trip sanity check CI runs against
//! the committed baseline.

use crate::perf::PerfReport;

/// Gate parameters.
#[derive(Debug, Clone, Copy)]
pub struct GateConfig {
    /// Relative tolerance band: a benchmark regresses when its median
    /// grows by more than this fraction (improves when it shrinks by
    /// more). Wall-clock medians on shared CI runners jitter, so the
    /// default is deliberately loose.
    pub tolerance: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig { tolerance: 0.25 }
    }
}

/// Classification of one benchmark's delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// Median grew beyond the tolerance.
    Regression,
    /// Median shrank beyond the tolerance.
    Improvement,
    /// Within the tolerance band (includes exact equality).
    Unchanged,
    /// Present only in the baseline (benchmark removed or not run).
    OnlyInBaseline,
    /// Present only in the new report (benchmark added).
    OnlyInNew,
}

/// One benchmark's comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    pub id: String,
    pub baseline_ns: Option<u64>,
    pub new_ns: Option<u64>,
    /// `new/baseline - 1` when both sides exist and the baseline is
    /// non-zero; `+0.10` means 10 % slower.
    pub ratio: Option<f64>,
    pub kind: DeltaKind,
}

/// The gate's verdict over a full report pair.
#[derive(Debug, Clone, PartialEq)]
pub struct GateReport {
    /// One row per id in either report, sorted by id.
    pub deltas: Vec<Delta>,
    pub tolerance: f64,
}

impl GateReport {
    /// Rows classified as regressions.
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas
            .iter()
            .filter(|d| d.kind == DeltaKind::Regression)
            .collect()
    }

    /// Rows classified as improvements.
    pub fn improvements(&self) -> Vec<&Delta> {
        self.deltas
            .iter()
            .filter(|d| d.kind == DeltaKind::Improvement)
            .collect()
    }

    /// The gate passes when nothing regressed beyond the tolerance.
    pub fn passed(&self) -> bool {
        self.regressions().is_empty()
    }

    /// Human-readable comparison table plus a verdict line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>14} {:>14} {:>9}  {}\n",
            "benchmark", "baseline", "new", "delta", "verdict"
        ));
        for d in &self.deltas {
            let fmt_side = |ns: Option<u64>| ns.map_or("-".to_string(), fmt_ns);
            let delta = d
                .ratio
                .map_or("-".to_string(), |r| format!("{:+.1}%", r * 100.0));
            let verdict = match d.kind {
                DeltaKind::Regression => "REGRESSION",
                DeltaKind::Improvement => "improvement",
                DeltaKind::Unchanged => "ok",
                DeltaKind::OnlyInBaseline => "removed",
                DeltaKind::OnlyInNew => "new",
            };
            out.push_str(&format!(
                "{:<44} {:>14} {:>14} {:>9}  {}\n",
                d.id,
                fmt_side(d.baseline_ns),
                fmt_side(d.new_ns),
                delta,
                verdict
            ));
        }
        let n_reg = self.regressions().len();
        let n_imp = self.improvements().len();
        out.push_str(&format!(
            "gate: {} — {} benchmarks, {} regression(s), {} improvement(s), tolerance ±{:.0}%\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.deltas.len(),
            n_reg,
            n_imp,
            self.tolerance * 100.0
        ));
        out
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Compare `new` against `baseline` under `config`.
pub fn compare(baseline: &PerfReport, new: &PerfReport, config: GateConfig) -> GateReport {
    let mut ids: Vec<&str> = baseline
        .records
        .iter()
        .chain(&new.records)
        .map(|r| r.id.as_str())
        .collect();
    ids.sort_unstable();
    ids.dedup();
    let deltas = ids
        .into_iter()
        .map(|id| {
            let b = baseline.get(id).map(|r| r.median_ns);
            let n = new.get(id).map(|r| r.median_ns);
            let (ratio, kind) = match (b, n) {
                (Some(b_ns), Some(n_ns)) => {
                    let ratio = if b_ns == 0 {
                        if n_ns == 0 {
                            0.0
                        } else {
                            f64::INFINITY
                        }
                    } else {
                        n_ns as f64 / b_ns as f64 - 1.0
                    };
                    let kind = if ratio > config.tolerance {
                        DeltaKind::Regression
                    } else if ratio < -config.tolerance {
                        DeltaKind::Improvement
                    } else {
                        DeltaKind::Unchanged
                    };
                    (Some(ratio), kind)
                }
                (Some(_), None) => (None, DeltaKind::OnlyInBaseline),
                (None, Some(_)) => (None, DeltaKind::OnlyInNew),
                (None, None) => unreachable!("id came from one of the reports"),
            };
            Delta {
                id: id.to_string(),
                baseline_ns: b,
                new_ns: n,
                ratio,
                kind,
            }
        })
        .collect();
    GateReport {
        deltas,
        tolerance: config.tolerance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::PerfRecord;

    fn report(pairs: &[(&str, u64)]) -> PerfReport {
        PerfReport::new(
            pairs
                .iter()
                .map(|(id, ns)| PerfRecord {
                    id: id.to_string(),
                    median_ns: *ns,
                    p10_ns: *ns,
                    p90_ns: *ns,
                    samples: 10,
                    bytes_per_iter: None,
                })
                .collect(),
        )
    }

    #[test]
    fn self_compare_reports_zero_deltas() {
        let r = report(&[("a/x", 1000), ("b/y", 2000)]);
        let gate = compare(&r, &r, GateConfig::default());
        assert!(gate.passed());
        assert!(gate.deltas.iter().all(|d| d.ratio == Some(0.0)));
        assert!(gate.deltas.iter().all(|d| d.kind == DeltaKind::Unchanged));
    }

    #[test]
    fn synthetic_slowdown_is_flagged() {
        let base = report(&[("a/x", 1000), ("b/y", 2000)]);
        let slow = report(&[("a/x", 2000), ("b/y", 2000)]);
        let gate = compare(&base, &slow, GateConfig::default());
        assert!(!gate.passed());
        let regs = gate.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].id, "a/x");
        assert!((regs[0].ratio.unwrap() - 1.0).abs() < 1e-12);
        assert!(gate.render().contains("REGRESSION"));
    }

    #[test]
    fn improvements_and_membership_changes_do_not_fail_the_gate() {
        let base = report(&[("a/x", 2000), ("gone/z", 10)]);
        let new = report(&[("a/x", 1000), ("added/w", 10)]);
        let gate = compare(&base, &new, GateConfig::default());
        assert!(gate.passed());
        assert_eq!(gate.improvements().len(), 1);
        let kinds: Vec<DeltaKind> = gate.deltas.iter().map(|d| d.kind).collect();
        assert!(kinds.contains(&DeltaKind::OnlyInBaseline));
        assert!(kinds.contains(&DeltaKind::OnlyInNew));
    }

    #[test]
    fn tolerance_band_is_symmetric_and_configurable() {
        let base = report(&[("a/x", 1000)]);
        let ten_pct = report(&[("a/x", 1100)]);
        let loose = compare(&base, &ten_pct, GateConfig { tolerance: 0.25 });
        assert!(loose.passed());
        let strict = compare(&base, &ten_pct, GateConfig { tolerance: 0.05 });
        assert!(!strict.passed());
    }
}
