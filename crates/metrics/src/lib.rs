//! # jubench-metrics — wall-clock self-observability for the suite
//!
//! The suite observes the *simulated* machine through `jubench-trace`
//! (virtual-time events, run reports, Chrome traces). This crate is the
//! complementary layer that observes the suite's *own execution* in wall
//! time, so the hot paths have a measured performance trajectory instead
//! of folklore:
//!
//! - [`registry`]: a process-wide metrics registry — counters, gauges,
//!   and fixed-bucket histograms — sharded per recording thread and
//!   merged deterministically at snapshot time. Snapshots render as a
//!   Prometheus-style text exposition and as a stable JSON encoding.
//! - [`scope`]: wall-clock profiling scopes ([`profile_scope!`]) that
//!   accumulate exclusive/inclusive nanoseconds per named scope and
//!   export a collapsed-stack (`flamegraph.pl`-compatible) self-profile.
//! - [`perf`]: structured per-benchmark records ([`PerfRecord`]) and
//!   their aggregation into a `BENCH_<n>.json` [`PerfReport`] — the
//!   suite's performance baseline artifact.
//! - [`gate`]: the regression gate — compare two `BENCH_*.json` files
//!   and report per-benchmark deltas against a configurable tolerance.
//!
//! ## The hard invariant: observational only
//!
//! Metrics are *read-only observers* of the computation. No deterministic
//! output — result tables, Chrome traces, snapshots — may depend on
//! whether metrics are enabled, on their values, or on the pool width.
//! `tests/parallel_determinism.rs` enforces byte-identity of every
//! artifact with metrics on and off at 1/2/8 pool threads.
//!
//! ## Kill switch
//!
//! The registry compiles in unconditionally but can be disabled at
//! runtime: set `JUBENCH_METRICS=0` in the environment (mirroring
//! `JUBENCH_POOL_THREADS`), or call [`set_enabled`]`(false)` from code.
//! Disabled recording paths are a single relaxed atomic load.

pub mod gate;
pub mod json;
pub mod perf;
pub mod registry;
pub mod scope;

pub use gate::{compare, Delta, DeltaKind, GateConfig, GateReport};
pub use json::JsonValue;
pub use perf::{PerfRecord, PerfReport, BENCH_SCHEMA};
pub use registry::{HistogramSnapshot, MetricsSnapshot, ScopeStat};

use std::sync::atomic::{AtomicU8, Ordering};

/// Environment variable disabling the registry at runtime when set to `0`.
pub const METRICS_ENV: &str = "JUBENCH_METRICS";

/// Tri-state enabled flag: 0 = unresolved (consult the environment),
/// 1 = disabled, 2 = enabled. [`set_enabled`] pins it programmatically.
static ENABLED: AtomicU8 = AtomicU8::new(0);

/// Whether recording is currently enabled. Resolution order: the last
/// [`set_enabled`] call, else `JUBENCH_METRICS` (`0` disables), else on.
#[inline]
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            let on = std::env::var(METRICS_ENV).map_or(true, |v| v.trim() != "0");
            ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Programmatically enable or disable recording, overriding the
/// environment. The determinism harness flips this to prove that every
/// deterministic artifact is byte-identical either way.
pub fn set_enabled(on: bool) {
    ENABLED.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// Add `delta` to the named counter (merged across threads by sum).
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if enabled() {
        registry::shard_counter_add(name, delta);
    }
}

/// Raise the named gauge to at least `value` (merged across threads by
/// max). Gauges record high-water marks — queue depths, buffer
/// capacities — so the max merge is order-independent by construction.
#[inline]
pub fn gauge_max(name: &str, value: i64) {
    if enabled() {
        registry::shard_gauge_max(name, value);
    }
}

/// Record one observation (in nanoseconds, or any non-negative unit) into
/// the named fixed-bucket histogram (merged across threads bucket-wise).
#[inline]
pub fn observe(name: &str, value: u64) {
    if enabled() {
        registry::shard_observe(name, value);
    }
}

/// Merge every live shard into one deterministic [`MetricsSnapshot`].
pub fn snapshot() -> MetricsSnapshot {
    registry::global_snapshot()
}

/// Zero every shard — counters, gauges, histograms, and scope stats.
/// Tests use this to measure one region in isolation.
pub fn reset() {
    registry::global_reset();
}

/// The collapsed-stack self-profile accumulated by [`profile_scope!`]
/// guards so far: one `stack;frames value` line per distinct stack,
/// sorted, with exclusive nanoseconds as the value — feed it straight to
/// `flamegraph.pl`.
pub fn self_profile_collapsed() -> String {
    registry::global_snapshot().render_collapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_switch_suppresses_recording() {
        // Serialize against other tests that flip the global flag.
        let _guard = registry::test_mutex().lock().unwrap();
        reset();
        set_enabled(false);
        counter_add("t/killed", 7);
        gauge_max("t/killed_g", 7);
        observe("t/killed_h", 7);
        assert!(snapshot().counters.is_empty());
        set_enabled(true);
        counter_add("t/live", 7);
        assert_eq!(snapshot().counters.get("t/live"), Some(&7));
        reset();
    }
}
