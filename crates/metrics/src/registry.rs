//! The sharded metrics registry and its deterministic snapshot.
//!
//! Every recording thread owns one `Shard` (created lazily, registered
//! globally, kept alive past thread exit). Recording touches only the
//! owning thread's shard — one short-held lock with no cross-thread
//! contention — and the global snapshot merges all shards into one
//! [`MetricsSnapshot`] with order-independent operators: counters and
//! histograms merge by sum, gauges by max, scope stats by sum. Merge
//! order therefore cannot leak into any rendered output, which is what
//! makes the snapshot deterministic for a deterministic workload even
//! though shard *contents* are wall-clock measurements.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Number of power-of-two histogram buckets. Bucket `i` counts values in
/// `[2^(i-1), 2^i - 1]` (bucket 0 holds zero); 48 buckets cover every
/// nanosecond duration up to ~3.25 days.
pub const HIST_BUCKETS: usize = 48;

/// One thread's private slice of the registry.
#[derive(Default)]
struct Shard {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, i64>>,
    hists: Mutex<BTreeMap<String, Hist>>,
    scopes: Mutex<BTreeMap<String, ScopeStat>>,
}

#[derive(Clone)]
struct Hist {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

/// Bucket index of one observed value: `ceil(log2(v))`, clamped.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

fn shards() -> &'static Mutex<Vec<Arc<Shard>>> {
    static SHARDS: OnceLock<Mutex<Vec<Arc<Shard>>>> = OnceLock::new();
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static SHARD: Arc<Shard> = {
        let shard = Arc::new(Shard::default());
        shards().lock().unwrap().push(Arc::clone(&shard));
        shard
    };
}

pub(crate) fn shard_counter_add(name: &str, delta: u64) {
    SHARD.with(|s| {
        let mut counters = s.counters.lock().unwrap();
        match counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                counters.insert(name.to_string(), delta);
            }
        }
    });
}

pub(crate) fn shard_gauge_max(name: &str, value: i64) {
    SHARD.with(|s| {
        let mut gauges = s.gauges.lock().unwrap();
        match gauges.get_mut(name) {
            Some(v) => *v = (*v).max(value),
            None => {
                gauges.insert(name.to_string(), value);
            }
        }
    });
}

pub(crate) fn shard_observe(name: &str, value: u64) {
    SHARD.with(|s| {
        let mut hists = s.hists.lock().unwrap();
        let h = hists.entry(name.to_string()).or_default();
        h.counts[bucket_of(value)] += 1;
        h.count += 1;
        h.sum = h.sum.saturating_add(value);
        h.min = h.min.min(value);
        h.max = h.max.max(value);
    });
}

pub(crate) fn shard_scope_record(path: &str, inclusive_ns: u64, exclusive_ns: u64) {
    SHARD.with(|s| {
        let mut scopes = s.scopes.lock().unwrap();
        let stat = scopes.entry(path.to_string()).or_default();
        stat.count += 1;
        stat.inclusive_ns = stat.inclusive_ns.saturating_add(inclusive_ns);
        stat.exclusive_ns = stat.exclusive_ns.saturating_add(exclusive_ns);
    });
}

/// Merge every shard registered so far into one snapshot.
pub(crate) fn global_snapshot() -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for shard in shards().lock().unwrap().iter() {
        snap.merge_shard(shard);
    }
    snap
}

/// Clear every shard in place (the shards themselves stay registered).
pub(crate) fn global_reset() {
    for shard in shards().lock().unwrap().iter() {
        shard.counters.lock().unwrap().clear();
        shard.gauges.lock().unwrap().clear();
        shard.hists.lock().unwrap().clear();
        shard.scopes.lock().unwrap().clear();
    }
}

/// Serializes tests that flip process-global metrics state (the enabled
/// flag, [`crate::reset`]) so they cannot race each other.
pub fn test_mutex() -> &'static Mutex<()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    M.get_or_init(|| Mutex::new(()))
}

/// Accumulated wall time of one named profiling scope path.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScopeStat {
    /// Times the scope was entered.
    pub count: u64,
    /// Total wall time inside the scope, children included.
    pub inclusive_ns: u64,
    /// Wall time inside the scope minus time inside child scopes.
    pub exclusive_ns: u64,
}

/// A merged histogram: fixed power-of-two buckets plus count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `counts[i]` observations fell in `[2^(i-1), 2^i - 1]` (`counts[0]`
    /// holds zeros; the last bucket absorbs everything larger).
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    fn from_hist(h: &Hist) -> Self {
        HistogramSnapshot {
            counts: h.counts.to_vec(),
            count: h.count,
            sum: h.sum,
            min: h.min,
            max: h.max,
        }
    }

    /// Mean observation, zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (inclusive) of bucket `i`.
    pub fn bucket_upper(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Bucket-resolution quantile estimate: the upper bound of the first
    /// bucket whose cumulative count reaches `q` of the total.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return Self::bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A deterministic merge of every shard: the exported face of the
/// registry. All maps are `BTreeMap`s, so iteration — and therefore every
/// rendering — is name-sorted and independent of recording order.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub scopes: BTreeMap<String, ScopeStat>,
}

impl MetricsSnapshot {
    fn merge_shard(&mut self, shard: &Shard) {
        for (k, v) in shard.counters.lock().unwrap().iter() {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in shard.gauges.lock().unwrap().iter() {
            let slot = self.gauges.entry(k.clone()).or_insert(i64::MIN);
            *slot = (*slot).max(*v);
        }
        for (k, h) in shard.hists.lock().unwrap().iter() {
            let snap = HistogramSnapshot::from_hist(h);
            match self.histograms.get_mut(k) {
                Some(existing) => existing.merge(&snap),
                None => {
                    self.histograms.insert(k.clone(), snap);
                }
            }
        }
        for (k, v) in shard.scopes.lock().unwrap().iter() {
            let stat = self.scopes.entry(k.clone()).or_default();
            stat.count += v.count;
            stat.inclusive_ns = stat.inclusive_ns.saturating_add(v.inclusive_ns);
            stat.exclusive_ns = stat.exclusive_ns.saturating_add(v.exclusive_ns);
        }
    }

    /// Merge another snapshot into this one. Commutative and associative
    /// (sum/max/sum operators), so any merge order yields the same value —
    /// the property `tests/proptests.rs` sweeps.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(i64::MIN);
            *slot = (*slot).max(*v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(existing) => existing.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        for (k, v) in &other.scopes {
            let stat = self.scopes.entry(k.clone()).or_default();
            stat.count += v.count;
            stat.inclusive_ns = stat.inclusive_ns.saturating_add(v.inclusive_ns);
            stat.exclusive_ns = stat.exclusive_ns.saturating_add(v.exclusive_ns);
        }
    }

    /// The sub-snapshot of metrics whose name starts with `prefix` —
    /// what a service endpoint exposes when a tenant asks for one
    /// subsystem's metrics (e.g. `"serve/"`) instead of the whole
    /// process.
    pub fn filter_prefix(&self, prefix: &str) -> MetricsSnapshot {
        fn keep<V: Clone>(m: &BTreeMap<String, V>, prefix: &str) -> BTreeMap<String, V> {
            m.iter()
                .filter(|(k, _)| k.starts_with(prefix))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        }
        MetricsSnapshot {
            counters: keep(&self.counters, prefix),
            gauges: keep(&self.gauges, prefix),
            histograms: keep(&self.histograms, prefix),
            scopes: keep(&self.scopes, prefix),
        }
    }

    /// Prometheus-style text exposition: `# TYPE` headers, counters and
    /// gauges as plain samples, histograms as cumulative `_bucket{le=…}`
    /// series plus `_sum`/`_count`, scopes as two counters each.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let flat = flatten(name);
            out.push_str(&format!("# TYPE {flat} counter\n{flat} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let flat = flatten(name);
            out.push_str(&format!("# TYPE {flat} gauge\n{flat} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let flat = flatten(name);
            out.push_str(&format!("# TYPE {flat} histogram\n"));
            let mut cumulative = 0u64;
            for (i, &c) in h.counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                out.push_str(&format!(
                    "{flat}_bucket{{le=\"{}\"}} {cumulative}\n",
                    HistogramSnapshot::bucket_upper(i)
                ));
            }
            out.push_str(&format!("{flat}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{flat}_sum {}\n{flat}_count {}\n", h.sum, h.count));
        }
        for (path, s) in &self.scopes {
            let flat = format!("scope_{}", flatten(path));
            out.push_str(&format!(
                "# TYPE {flat}_inclusive_ns counter\n{flat}_inclusive_ns {}\n",
                s.inclusive_ns
            ));
            out.push_str(&format!(
                "# TYPE {flat}_exclusive_ns counter\n{flat}_exclusive_ns {}\n",
                s.exclusive_ns
            ));
        }
        out
    }

    /// Stable JSON encoding: objects keyed by metric name, name-sorted.
    pub fn to_json(&self) -> String {
        use crate::json::escape;
        let mut out = String::from("{\n  \"counters\": {");
        push_map(&mut out, self.counters.iter(), |v| v.to_string());
        out.push_str("},\n  \"gauges\": {");
        push_map(&mut out, self.gauges.iter(), |v| v.to_string());
        out.push_str("},\n  \"histograms\": {");
        let mut first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}}}",
                escape(k),
                h.count,
                h.sum,
                if h.count == 0 { 0 } else { h.min },
                h.max,
                h.quantile_upper(0.50),
                h.quantile_upper(0.90),
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"scopes\": {");
        first = true;
        for (k, s) in &self.scopes {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{}\": {{\"count\": {}, \"inclusive_ns\": {}, \"exclusive_ns\": {}}}",
                escape(k),
                s.count,
                s.inclusive_ns,
                s.exclusive_ns,
            ));
        }
        if !self.scopes.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// The collapsed-stack self-profile: `stack;frames value` lines with
    /// exclusive nanoseconds as values, the format `flamegraph.pl` and
    /// speedscope ingest directly.
    pub fn render_collapsed(&self) -> String {
        let mut out = String::new();
        for (path, s) in &self.scopes {
            out.push_str(&format!("{path} {}\n", s.exclusive_ns));
        }
        out
    }
}

fn push_map<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    fmt: impl Fn(&V) -> String,
) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{}\": {}", crate::json::escape(k), fmt(v)));
    }
    if !first {
        out.push_str("\n  ");
    }
}

/// Metric names use `/` as the namespace separator (`pool/steals`);
/// Prometheus sample names cannot, so flatten to `_`.
fn flatten(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("c".into(), 3);
        a.gauges.insert("g".into(), 5);
        let mut b = MetricsSnapshot::default();
        b.counters.insert("c".into(), 4);
        b.gauges.insert("g".into(), 2);
        b.counters.insert("only_b".into(), 1);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counters["c"], 7);
        assert_eq!(ab.gauges["g"], 5);
    }

    #[test]
    fn snapshot_merges_across_threads() {
        let _guard = test_mutex().lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    crate::counter_add("t/reg_threads", 10);
                    crate::gauge_max("t/reg_peak", 21);
                    crate::observe("t/reg_obs", 100);
                });
            }
        });
        let snap = crate::snapshot();
        assert_eq!(snap.counters["t/reg_threads"], 40);
        assert_eq!(snap.gauges["t/reg_peak"], 21);
        assert_eq!(snap.histograms["t/reg_obs"].count, 4);
        assert_eq!(snap.histograms["t/reg_obs"].sum, 400);
        crate::reset();
    }

    #[test]
    fn quantiles_are_bucket_resolved() {
        let mut h = HistogramSnapshot {
            counts: vec![0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        };
        let mut add = |v: u64| {
            h.counts[bucket_of(v)] += 1;
            h.count += 1;
            h.sum += v;
            h.min = h.min.min(v);
            h.max = h.max.max(v);
        };
        for _ in 0..90 {
            add(10);
        }
        for _ in 0..10 {
            add(5000);
        }
        assert!(h.quantile_upper(0.5) <= 15);
        assert!(h.quantile_upper(0.99) >= 4096);
        assert_eq!(h.quantile_upper(1.0), 5000);
    }

    #[test]
    fn renders_are_stable_and_name_sorted() {
        let mut s = MetricsSnapshot::default();
        s.counters.insert("b/two".into(), 2);
        s.counters.insert("a/one".into(), 1);
        let text = s.render_prometheus();
        let a = text.find("a_one 1").unwrap();
        let b = text.find("b_two 2").unwrap();
        assert!(a < b);
        let json = s.to_json();
        assert!(json.find("a/one").unwrap() < json.find("b/two").unwrap());
    }
}
