//! Wall-clock profiling scopes and the collapsed-stack self-profile.
//!
//! A scope is entered with [`crate::profile_scope!`] and closed when its guard
//! drops. Each thread keeps a stack of open scopes; on close, the scope's
//! inclusive wall time is measured, the time spent in child scopes is
//! subtracted to get exclusive time, and both are accumulated into the
//! registry under the *collapsed stack path* — the `;`-joined names of
//! every open scope, e.g. `campaign/run;sched/backfill`. The accumulated
//! table exports directly as `flamegraph.pl` input via
//! [`crate::self_profile_collapsed`].
//!
//! Scope naming convention: `layer/operation` (e.g. `sched/backfill`,
//! `ckpt/seal`), lowercase, `/`-separated — the same namespace scheme as
//! metric names, so profiles and counters line up.

use std::cell::RefCell;
use std::time::Instant;

struct Frame {
    name: String,
    start: Instant,
    /// Inclusive nanoseconds of directly nested scopes closed so far.
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard of one open profiling scope. Construct via
/// [`crate::profile_scope!`] (or [`ScopeGuard::enter`] where a macro is
/// inconvenient). When metrics are disabled the guard is an inert no-op.
#[must_use = "a scope guard measures until it drops; binding it to _ drops immediately"]
pub struct ScopeGuard {
    active: bool,
}

impl ScopeGuard {
    /// Open a scope named `name` on this thread's stack.
    pub fn enter(name: &str) -> ScopeGuard {
        if !crate::enabled() {
            return ScopeGuard { active: false };
        }
        STACK.with(|stack| {
            stack.borrow_mut().push(Frame {
                name: name.to_string(),
                start: Instant::now(),
                child_ns: 0,
            });
        });
        ScopeGuard { active: true }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let Some(frame) = stack.pop() else { return };
            let inclusive = frame.start.elapsed().as_nanos() as u64;
            let exclusive = inclusive.saturating_sub(frame.child_ns);
            let path = if stack.is_empty() {
                frame.name.clone()
            } else {
                let mut p = String::new();
                for f in stack.iter() {
                    p.push_str(&f.name);
                    p.push(';');
                }
                p.push_str(&frame.name);
                p
            };
            if let Some(parent) = stack.last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(inclusive);
            }
            drop(stack);
            crate::registry::shard_scope_record(&path, inclusive, exclusive);
        });
    }
}

/// Open a wall-clock profiling scope for the rest of the enclosing block:
/// `profile_scope!("sched/backfill");`. Time spent here (exclusive of
/// nested scopes) accumulates under the collapsed stack path.
#[macro_export]
macro_rules! profile_scope {
    ($name:expr) => {
        let _jubench_profile_scope_guard = $crate::scope::ScopeGuard::enter($name);
    };
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    #[test]
    fn nesting_splits_inclusive_and_exclusive() {
        let _guard = crate::registry::test_mutex().lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        {
            profile_scope!("t_outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                profile_scope!("t_inner");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let snap = crate::snapshot();
        let outer = snap.scopes["t_outer"];
        let inner = snap.scopes["t_outer;t_inner"];
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Outer inclusive covers the inner scope; outer exclusive does not.
        assert!(outer.inclusive_ns >= inner.inclusive_ns);
        assert!(outer.exclusive_ns <= outer.inclusive_ns - inner.inclusive_ns);
        let collapsed = crate::self_profile_collapsed();
        assert!(collapsed.contains("t_outer;t_inner "));
        crate::reset();
    }

    #[test]
    fn disabled_scopes_record_nothing() {
        let _guard = crate::registry::test_mutex().lock().unwrap();
        crate::reset();
        crate::set_enabled(false);
        {
            profile_scope!("t_dead");
        }
        crate::set_enabled(true);
        assert!(crate::snapshot().scopes.is_empty());
        crate::reset();
    }

    #[test]
    fn sibling_scopes_share_a_parent_path() {
        let _guard = crate::registry::test_mutex().lock().unwrap();
        crate::reset();
        crate::set_enabled(true);
        {
            profile_scope!("t_parent");
            for _ in 0..3 {
                profile_scope!("t_child");
            }
        }
        let snap = crate::snapshot();
        assert_eq!(snap.scopes["t_parent;t_child"].count, 3);
        crate::reset();
    }
}
