//! Structured benchmark records and the `BENCH_<n>.json` report format.
//!
//! The in-repo Criterion-shaped harness (`jubench-bench`) emits one
//! [`PerfRecord`] per benchmark — median/p10/p90 wall time over its
//! samples, plus bytes-per-iteration where the target declared a
//! throughput. Records stream out as JSON lines (one self-contained
//! object per line, safe to append from several bench binaries) and are
//! merged into one [`PerfReport`], the `BENCH_<n>.json` artifact that the
//! regression gate ([`crate::gate`]) compares across commits.
//!
//! ## `BENCH_<n>.json` schema (`jubench-bench/v1`)
//!
//! ```json
//! {
//!   "schema": "jubench-bench/v1",
//!   "benchmarks": [
//!     {"id": "kernels/gemm_128", "median_ns": 310415, "p10_ns": 309416,
//!      "p90_ns": 317634, "samples": 20, "bytes_per_iter": 131072}
//!   ]
//! }
//! ```
//!
//! `id` is `group/name`, unique and sorted; `bytes_per_iter` is `null`
//! when the target declared no throughput.

use crate::json::{escape, JsonValue};

/// Schema identifier written into every `BENCH_<n>.json`.
pub const BENCH_SCHEMA: &str = "jubench-bench/v1";

/// One benchmark's measured wall-time summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfRecord {
    /// `group/name`, unique within a report.
    pub id: String,
    /// Median wall time of one iteration, nanoseconds.
    pub median_ns: u64,
    /// 10th / 90th percentile wall times, nanoseconds.
    pub p10_ns: u64,
    pub p90_ns: u64,
    /// Number of timed samples the percentiles were computed over.
    pub samples: u32,
    /// Payload bytes processed per iteration, when the target declared a
    /// throughput — turns the record into a bandwidth figure.
    pub bytes_per_iter: Option<u64>,
}

impl PerfRecord {
    /// Summarize raw per-sample nanosecond timings (need not be sorted).
    pub fn from_samples(id: impl Into<String>, ns: &[u64], bytes_per_iter: Option<u64>) -> Self {
        let mut sorted = ns.to_vec();
        sorted.sort_unstable();
        let pick = |q: f64| {
            if sorted.is_empty() {
                0
            } else {
                let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
                sorted[idx]
            }
        };
        PerfRecord {
            id: id.into(),
            median_ns: pick(0.5),
            p10_ns: pick(0.1),
            p90_ns: pick(0.9),
            samples: sorted.len() as u32,
            bytes_per_iter,
        }
    }

    /// Median throughput in bytes per second, when a throughput was
    /// declared and the median is non-zero.
    pub fn bytes_per_sec(&self) -> Option<f64> {
        let bytes = self.bytes_per_iter?;
        if self.median_ns == 0 {
            return None;
        }
        Some(bytes as f64 * 1e9 / self.median_ns as f64)
    }

    /// One self-contained JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let bytes = self
            .bytes_per_iter
            .map_or("null".to_string(), |b| b.to_string());
        format!(
            "{{\"id\": \"{}\", \"median_ns\": {}, \"p10_ns\": {}, \"p90_ns\": {}, \"samples\": {}, \"bytes_per_iter\": {}}}",
            escape(&self.id),
            self.median_ns,
            self.p10_ns,
            self.p90_ns,
            self.samples,
            bytes,
        )
    }

    /// Decode one record object.
    pub fn from_json(v: &JsonValue) -> Result<PerfRecord, String> {
        let field = |k: &str| v.get(k).ok_or_else(|| format!("record missing {k:?}"));
        let num = |k: &str| {
            field(k)?
                .as_u64()
                .ok_or_else(|| format!("record field {k:?} is not a non-negative integer"))
        };
        Ok(PerfRecord {
            id: field("id")?
                .as_str()
                .ok_or("record field \"id\" is not a string")?
                .to_string(),
            median_ns: num("median_ns")?,
            p10_ns: num("p10_ns")?,
            p90_ns: num("p90_ns")?,
            samples: num("samples")? as u32,
            bytes_per_iter: match v.get("bytes_per_iter") {
                None | Some(JsonValue::Null) => None,
                Some(b) => Some(
                    b.as_u64()
                        .ok_or("record field \"bytes_per_iter\" is not an integer")?,
                ),
            },
        })
    }
}

/// A full `BENCH_<n>.json` document: the sorted, deduplicated record set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerfReport {
    pub records: Vec<PerfRecord>,
}

impl PerfReport {
    /// Build a report from records in any order; sorts by id and keeps
    /// the *last* record per id (so a re-run of one bench binary
    /// supersedes its earlier lines in an appended stream).
    pub fn new(records: Vec<PerfRecord>) -> Self {
        let mut last = std::collections::BTreeMap::new();
        for r in records {
            last.insert(r.id.clone(), r);
        }
        PerfReport {
            records: last.into_values().collect(),
        }
    }

    /// Record by id.
    pub fn get(&self, id: &str) -> Option<&PerfRecord> {
        self.records.iter().find(|r| r.id == id)
    }

    /// Encode the `BENCH_<n>.json` document (stable: sorted ids, fixed
    /// layout — identical inputs give identical bytes).
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\n  \"schema\": \"{BENCH_SCHEMA}\",\n  \"benchmarks\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str("    ");
            out.push_str(&r.to_json());
            if i + 1 < self.records.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse a `BENCH_<n>.json` document, validating the schema tag.
    pub fn from_json(text: &str) -> Result<PerfReport, String> {
        let doc = JsonValue::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_str)
            .ok_or("missing \"schema\"")?;
        if schema != BENCH_SCHEMA {
            return Err(format!(
                "unsupported schema {schema:?} (want {BENCH_SCHEMA:?})"
            ));
        }
        let items = doc
            .get("benchmarks")
            .and_then(JsonValue::as_array)
            .ok_or("missing \"benchmarks\" array")?;
        let records = items
            .iter()
            .map(PerfRecord::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(PerfReport::new(records))
    }

    /// Parse an appended JSON-lines stream (the harness's intermediate
    /// format); blank lines are skipped.
    pub fn from_jsonl(text: &str) -> Result<PerfReport, String> {
        let mut records = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = JsonValue::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            records
                .push(PerfRecord::from_json(&v).map_err(|e| format!("line {}: {e}", lineno + 1))?);
        }
        Ok(PerfReport::new(records))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: &str, median: u64) -> PerfRecord {
        PerfRecord {
            id: id.into(),
            median_ns: median,
            p10_ns: median - median / 10,
            p90_ns: median + median / 10,
            samples: 20,
            bytes_per_iter: median.is_multiple_of(2).then_some(4096),
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = PerfReport::new(vec![record("b/two", 2000), record("a/one", 1001)]);
        let text = report.to_json();
        let back = PerfReport::from_json(&text).unwrap();
        assert_eq!(back, report);
        // Stable bytes: encoding the parse result reproduces the text.
        assert_eq!(back.to_json(), text);
        // Sorted by id.
        assert_eq!(back.records[0].id, "a/one");
    }

    #[test]
    fn from_samples_summarizes_percentiles() {
        let ns: Vec<u64> = (1..=100).collect();
        let r = PerfRecord::from_samples("g/n", &ns, Some(1 << 20));
        assert_eq!(r.samples, 100);
        assert_eq!(r.median_ns, 51);
        assert_eq!(r.p10_ns, 11);
        assert_eq!(r.p90_ns, 90);
        let gib = r.bytes_per_sec().unwrap();
        assert!(gib > 0.0);
    }

    #[test]
    fn jsonl_keeps_last_record_per_id() {
        let jsonl = format!(
            "{}\n\n{}\n{}\n",
            record("k/x", 500).to_json(),
            record("k/y", 600).to_json(),
            record("k/x", 900).to_json(),
        );
        let report = PerfReport::from_jsonl(&jsonl).unwrap();
        assert_eq!(report.records.len(), 2);
        assert_eq!(report.get("k/x").unwrap().median_ns, 900);
    }

    #[test]
    fn schema_mismatch_is_rejected() {
        let text = "{\"schema\": \"other/v9\", \"benchmarks\": []}";
        assert!(PerfReport::from_json(text).is_err());
    }

    #[test]
    fn null_bytes_per_iter_round_trips() {
        let r = record("a/odd", 1001);
        assert!(r.bytes_per_iter.is_none());
        let v = JsonValue::parse(&r.to_json()).unwrap();
        assert_eq!(PerfRecord::from_json(&v).unwrap(), r);
    }
}
