//! A minimal JSON reader/writer for the suite's own artifacts.
//!
//! The suite carries no external dependencies, and every JSON document it
//! reads is one it also wrote (`BENCH_*.json`, the per-run record
//! stream), so this parser covers exactly RFC 8259 structure with plain
//! `f64` numbers — enough to round-trip our own output, not a general
//! validator. Objects preserve insertion order, keeping encodings stable.

use std::fmt::Write as _;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member of an object by key (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parse one JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.at));
        }
        Ok(value)
    }
}

/// Escape a string for embedding inside JSON quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.at < self.bytes.len() && self.bytes[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}, found {:?}",
                b as char,
                self.at,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at offset {}",
                other.map(|c| c as char),
                self.at
            )),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at offset {}", self.at))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number {text:?} at offset {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            if self.at + 4 >= self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.at + 1..self.at + 5]).unwrap();
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape: {e}"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from a &str,
                    // so boundaries are valid).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.at..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(JsonValue::Obj(members));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = JsonValue::parse(
            r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}, "f": []}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("f").unwrap().as_array().unwrap().len(), 0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("123 45").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let raw = "line1\nline\\2 \"quoted\"\ttab";
        let doc = format!("{{\"k\": \"{}\"}}", escape(raw));
        let v = JsonValue::parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(raw));
    }

    #[test]
    fn u64_accessor_rejects_fractions_and_negatives() {
        assert_eq!(JsonValue::Num(5.0).as_u64(), Some(5));
        assert_eq!(JsonValue::Num(5.5).as_u64(), None);
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
    }
}
