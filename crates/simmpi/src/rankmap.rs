//! Mapping of ranks onto one machine — or onto the two modules of the
//! Modular Supercomputing Architecture (§II-B: "benchmarks spanning
//! Cluster and Booster, dubbed *MSA* benchmarks").

use jubench_cluster::{
    CostModel, Distance, GpuSpec, Machine, NetModel, NodeSpec, Placement, Roofline,
};

/// Where the ranks of a world live.
// The Msa variant carries two full `Placement`s (each embedding a
// `Machine` with its topology and cost knobs), so it dwarfs `Uniform`;
// `RankMap` must stay `Copy` for the world constructors, which rules
// out boxing the large variant.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy)]
pub enum RankMap {
    /// All ranks on one machine with a uniform device.
    Uniform {
        placement: Placement,
        device: Roofline,
    },
    /// MSA: the first `cluster.ranks()` ranks run on the CPU Cluster (one
    /// rank per node), the rest on the GPU Booster (one rank per GPU).
    Msa {
        cluster: Placement,
        cluster_device: Roofline,
        booster: Placement,
        booster_device: Roofline,
    },
}

impl RankMap {
    /// A JUWELS-like MSA world: `cluster_nodes` CPU nodes plus
    /// `booster_nodes` GPU nodes.
    pub fn msa(cluster_nodes: u32, booster_nodes: u32) -> Self {
        let booster = Machine::juwels_booster().partition(booster_nodes);
        let cluster = Machine {
            name: "JUWELS Cluster",
            nodes: cluster_nodes,
            node: NodeSpec {
                gpu: GpuSpec::epyc_rome_node(),
                gpus_per_node: 1,
                nics_per_node: 2,
                nic_bw: 12.5e9,
                power_w: 700.0,
            },
            cell_nodes: 48,
            net: NetModel::cpu_cluster(),
            cost: CostModel::on_prem(25_000.0),
        };
        RankMap::Msa {
            cluster: Placement::per_node(cluster),
            cluster_device: Roofline::new(GpuSpec::epyc_rome_node()),
            booster: Placement::per_gpu(booster),
            booster_device: Roofline::new(booster.node.gpu),
        }
    }

    /// Total rank count.
    pub fn ranks(&self) -> u32 {
        match self {
            RankMap::Uniform { placement, .. } => placement.ranks(),
            RankMap::Msa {
                cluster, booster, ..
            } => cluster.ranks() + booster.ranks(),
        }
    }

    /// Ranks living on the Cluster module (0 for uniform worlds).
    pub fn cluster_ranks(&self) -> u32 {
        match self {
            RankMap::Uniform { .. } => 0,
            RankMap::Msa { cluster, .. } => cluster.ranks(),
        }
    }

    /// Distance class between two ranks.
    pub fn distance(&self, a: u32, b: u32) -> Distance {
        match self {
            RankMap::Uniform { placement, .. } => placement.distance(a, b),
            RankMap::Msa {
                cluster, booster, ..
            } => {
                let split = cluster.ranks();
                match (a < split, b < split) {
                    (true, true) => cluster.distance(a, b),
                    (false, false) => booster.distance(a - split, b - split),
                    _ if a == b => Distance::SameDevice,
                    _ => Distance::InterModule,
                }
            }
        }
    }

    /// The node index hosting `rank`, unique across the whole world
    /// (MSA Booster nodes are numbered after the Cluster nodes).
    pub fn node_of(&self, rank: u32) -> u32 {
        match self {
            RankMap::Uniform { placement, .. } => placement.node_of(rank),
            RankMap::Msa {
                cluster, booster, ..
            } => {
                let split = cluster.ranks();
                if rank < split {
                    cluster.node_of(rank)
                } else {
                    cluster.machine.nodes + booster.node_of(rank - split)
                }
            }
        }
    }

    /// The roofline device of `rank`.
    pub fn device(&self, rank: u32) -> Roofline {
        match self {
            RankMap::Uniform { device, .. } => *device,
            RankMap::Msa {
                cluster,
                cluster_device,
                booster_device,
                ..
            } => {
                if rank < cluster.ranks() {
                    *cluster_device
                } else {
                    *booster_device
                }
            }
        }
    }

    /// Total node count of the job (for the congestion model).
    pub fn job_nodes(&self) -> u32 {
        match self {
            RankMap::Uniform { placement, .. } => placement.machine.nodes,
            RankMap::Msa {
                cluster, booster, ..
            } => cluster.machine.nodes + booster.machine.nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_map_delegates() {
        let machine = Machine::juwels_booster().partition(2);
        let map = RankMap::Uniform {
            placement: Placement::per_gpu(machine),
            device: Roofline::new(machine.node.gpu),
        };
        assert_eq!(map.ranks(), 8);
        assert_eq!(map.cluster_ranks(), 0);
        assert_eq!(map.distance(0, 1), Distance::IntraNode);
        assert_eq!(map.job_nodes(), 2);
    }

    #[test]
    fn msa_split_and_distances() {
        let map = RankMap::msa(4, 2); // 4 CPU ranks + 8 GPU ranks
        assert_eq!(map.ranks(), 12);
        assert_eq!(map.cluster_ranks(), 4);
        // Within the cluster: node-to-node.
        assert_eq!(map.distance(0, 1), Distance::IntraCell);
        // Within the booster: NVLink.
        assert_eq!(map.distance(4, 5), Distance::IntraNode);
        // Across modules: the federation gateway.
        assert_eq!(map.distance(0, 4), Distance::InterModule);
        assert_eq!(map.distance(11, 3), Distance::InterModule);
    }

    #[test]
    fn msa_devices_differ_per_module() {
        let map = RankMap::msa(2, 2);
        let cpu = map.device(0);
        let gpu = map.device(5);
        assert!(gpu.gpu.fp64_flops > cpu.gpu.fp64_flops);
        assert!(
            cpu.gpu.memory_bytes > gpu.gpu.memory_bytes,
            "CPU nodes have more memory"
        );
    }

    #[test]
    fn msa_job_nodes_sum_modules() {
        assert_eq!(RankMap::msa(4, 2).job_nodes(), 6);
    }

    #[test]
    fn node_of_is_globally_unique_across_modules() {
        let machine = Machine::juwels_booster().partition(2);
        let map = RankMap::Uniform {
            placement: Placement::per_gpu(machine),
            device: Roofline::new(machine.node.gpu),
        };
        assert_eq!(map.node_of(0), 0);
        assert_eq!(map.node_of(3), 0);
        assert_eq!(map.node_of(4), 1);

        let msa = RankMap::msa(4, 2); // 4 CPU ranks (1/node) + 8 GPU ranks (4/node)
        assert_eq!(msa.node_of(0), 0);
        assert_eq!(msa.node_of(3), 3);
        assert_eq!(msa.node_of(4), 4, "first Booster node follows the Cluster");
        assert_eq!(msa.node_of(8), 5);
    }
}
