//! The per-rank communicator: typed point-to-point messages, collectives,
//! and virtual-time accounting.

use std::sync::Arc;

use std::sync::mpsc::{Receiver, Sender};
use std::sync::Mutex;

use jubench_cluster::{Distance, NetModel, Roofline, Work};
use jubench_events::EventQueue;
use jubench_faults::{DetRng, FaultPlan, RetryPolicy};
use jubench_trace::{CollectiveKind, EventKind, Regime, TraceEvent, TraceSink};

use crate::clock::{ClockStats, VirtualClock};
use crate::error::SimError;
use crate::rankmap::RankMap;
use crate::world::{fault_arrivals, FAULT_CRASH_CLASS};

/// The topology regime a transfer over `dist` is accounted to.
pub(crate) fn regime_of(dist: Distance) -> Regime {
    match dist {
        Distance::SameDevice => Regime::SameDevice,
        Distance::IntraNode => Regime::IntraNode,
        Distance::IntraCell => Regime::IntraCell,
        Distance::InterCell => Regime::InterCell,
        Distance::InterModule => Regime::InterModule,
    }
}

/// Typed message payload. Using an enum instead of raw bytes keeps the data
/// path allocation-light and lets the runtime detect datatype mismatches.
#[derive(Debug, Clone)]
pub enum Payload {
    F64(Vec<f64>),
    U64(Vec<u64>),
    Bytes(Vec<u8>),
}

impl Payload {
    fn type_name(&self) -> &'static str {
        match self {
            Payload::F64(_) => "f64",
            Payload::U64(_) => "u64",
            Payload::Bytes(_) => "bytes",
        }
    }

    fn nbytes(&self) -> u64 {
        match self {
            Payload::F64(v) => (v.len() * 8) as u64,
            Payload::U64(v) => (v.len() * 8) as u64,
            Payload::Bytes(v) => v.len() as u64,
        }
    }
}

/// A message in flight, carrying the sender's virtual post time so the
/// receiver can respect causality. A *dropped* message (an injected
/// message-drop fault) is sent as a tombstone — `dropped: true` — so the
/// receiver never blocks in wall time; it charges the virtual receive
/// timeout and reports [`SimError::Timeout`] instead of a payload.
pub(crate) struct Message {
    payload: Payload,
    tag: u32,
    sent_at: f64,
    dropped: bool,
}

/// Reduction operators for the collective operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Max,
    Min,
}

impl ReduceOp {
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Max => a.max(b),
            ReduceOp::Min => a.min(b),
        }
    }
}

/// Virtual-time barrier: synchronizes all rank clocks to the maximum.
pub(crate) struct VBarrier {
    barrier: std::sync::Barrier,
    max: Mutex<f64>,
}

impl VBarrier {
    pub(crate) fn new(n: usize) -> Self {
        VBarrier {
            barrier: std::sync::Barrier::new(n),
            max: Mutex::new(0.0),
        }
    }

    /// Enter with local virtual time `t`; returns the maximum over all
    /// participants.
    fn wait(&self, t: f64) -> f64 {
        {
            let mut m = self.max.lock().unwrap();
            if t > *m {
                *m = t;
            }
        }
        self.barrier.wait();
        let v = *self.max.lock().unwrap();
        let res = self.barrier.wait();
        if res.is_leader() {
            *self.max.lock().unwrap() = 0.0;
        }
        self.barrier.wait();
        v
    }
}

/// The communicator handed to each rank closure by
/// [`World::run`](crate::world::World::run).
pub struct Comm {
    rank: u32,
    size: u32,
    /// senders[to] — this rank's outgoing channels.
    senders: Vec<Sender<Message>>,
    /// receivers[from] — this rank's incoming channels.
    receivers: Vec<Receiver<Message>>,
    clock: VirtualClock,
    map: RankMap,
    net: NetModel,
    device: Roofline,
    barrier: Arc<VBarrier>,
    /// Injected faults this communicator consults at operation boundaries.
    /// `None` keeps every fault hook a no-op.
    plan: Option<Arc<FaultPlan>>,
    /// Lazily created deterministic message-drop stream (only consumed on
    /// sends towards a destination with a positive drop probability).
    drop_rng: Option<DetRng>,
    /// This rank's scheduled fault arrivals (today: at most one crash),
    /// built once from the plan by
    /// [`fault_arrivals`](crate::world::fault_arrivals) and popped at
    /// operation boundaries as the clock passes each instant.
    arrivals: EventQueue<()>,
    /// Set once the crash arrival has been popped; every further
    /// communication attempt fails with [`SimError::RankCrashed`].
    crashed: bool,
    /// Node hosting this rank (cached for event stamping).
    node: u32,
    /// Opt-in trace sink; `None` keeps every hook a no-op.
    sink: Option<Arc<dyn TraceSink>>,
    /// Per-rank event sequence number: `(rank, seq)` totally orders the
    /// trace deterministically.
    seq: u64,
}

impl Comm {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        rank: u32,
        size: u32,
        senders: Vec<Sender<Message>>,
        receivers: Vec<Receiver<Message>>,
        map: RankMap,
        net: NetModel,
        barrier: Arc<VBarrier>,
    ) -> Self {
        Comm {
            rank,
            size,
            senders,
            receivers,
            clock: VirtualClock::new(),
            device: map.device(rank),
            node: map.node_of(rank),
            map,
            net,
            barrier,
            plan: None,
            drop_rng: None,
            arrivals: EventQueue::new(),
            crashed: false,
            sink: None,
            seq: 0,
        }
    }

    pub(crate) fn with_fault_plan(mut self, plan: Option<Arc<FaultPlan>>) -> Self {
        if let Some(p) = &plan {
            self.arrivals = fault_arrivals(p, self.rank);
        }
        self.plan = plan;
        self
    }

    pub(crate) fn with_sink(mut self, sink: Option<Arc<dyn TraceSink>>) -> Self {
        self.sink = sink;
        self
    }

    /// Record one event ending at the current clock time. A no-op without
    /// a sink installed (the `EventKind`s emitted here are plain enums, so
    /// the disabled path allocates nothing).
    #[inline]
    fn emit(&mut self, t_start: f64, kind: EventKind) {
        if let Some(sink) = &self.sink {
            let seq = self.seq;
            self.seq += 1;
            sink.record(TraceEvent {
                rank: self.rank,
                node: self.node,
                seq,
                t_start,
                t_end: self.clock.now(),
                kind,
            });
        }
    }

    pub fn rank(&self) -> u32 {
        self.rank
    }

    pub fn size(&self) -> u32 {
        self.size
    }

    /// Current virtual time of this rank.
    pub fn now(&self) -> f64 {
        self.clock.now()
    }

    /// Clock statistics so far.
    pub fn stats(&self) -> ClockStats {
        self.clock.stats()
    }

    /// The device roofline of this rank.
    pub fn device(&self) -> &Roofline {
        &self.device
    }

    /// Advance the virtual clock by the roofline time of `work`.
    pub fn compute(&mut self, work: Work) {
        self.advance_compute(self.device.time(work));
    }

    /// Advance the virtual clock by `seconds` of computation directly. A
    /// slow-node fault active on this rank's node stretches the span by
    /// its factor (the emitted event carries the stretched duration, so
    /// trace accounting still reproduces the clock exactly).
    pub fn advance_compute(&mut self, seconds: f64) {
        let t0 = self.clock.now();
        let mut charged = seconds;
        if let Some(plan) = &self.plan {
            let factor = plan.compute_factor(self.node, t0);
            if factor > 1.0 {
                charged *= factor;
            }
        }
        self.clock.advance_compute(charged);
        self.emit(t0, EventKind::Compute { seconds: charged });
    }

    fn check_rank(&self, r: u32) -> Result<(), SimError> {
        if r >= self.size {
            Err(SimError::InvalidRank {
                rank: r,
                size: self.size,
            })
        } else {
            Ok(())
        }
    }

    /// Link properties towards `peer` for a `bytes`-sized transfer: wire
    /// time, topology regime, and whether a link fault applied at the
    /// current virtual time.
    fn link(&self, peer: u32, bytes: u64) -> (f64, Regime, bool) {
        let dist = self.map.distance(self.rank, peer);
        let mut t = self.net.ptp_time(bytes, dist, self.map.job_nodes());
        let mut degraded = false;
        if let Some(plan) = &self.plan {
            let factor = plan.link_factor(self.rank, peer, self.clock.now());
            if factor > 1.0 {
                t *= factor;
                degraded = true;
            }
        }
        (t, regime_of(dist), degraded)
    }

    /// Fail every communication attempt once this rank's scheduled crash
    /// time has passed. The first detection emits a zero-duration `Crash`
    /// marker event.
    ///
    /// Crash instants arrive on the rank's fault-arrival event queue; the
    /// queue is popped here, at operation boundaries, under the exact
    /// condition the cached-scalar path used (`now >= at_s` is the
    /// negation of `now < key.time`), so detection instants and the
    /// emitted marker are byte-identical to the pre-event-core engine.
    fn fail_if_crashed(&mut self) -> Result<(), SimError> {
        if self.crashed {
            return Err(SimError::RankCrashed { rank: self.rank });
        }
        while let Some((&key, _)) = self.arrivals.peek() {
            if self.clock.now() < key.time {
                break;
            }
            self.arrivals.pop();
            if key.class == FAULT_CRASH_CLASS {
                self.crashed = true;
                let t0 = self.clock.now();
                self.emit(t0, EventKind::Crash { at_s: key.time });
                return Err(SimError::RankCrashed { rank: self.rank });
            }
        }
        Ok(())
    }

    /// Draw the drop fate of one message towards `to`. Consumes the
    /// deterministic drop stream only when a drop fault applies, so plans
    /// without drops (and empty plans) leave the send path untouched.
    fn draw_drop(&mut self, to: u32) -> bool {
        let Some(plan) = &self.plan else {
            return false;
        };
        let p = plan.drop_probability(self.rank, to);
        if p <= 0.0 {
            return false;
        }
        self.drop_rng
            .get_or_insert_with(|| plan.drop_rng(self.rank))
            .gen_bool(p)
    }

    // ----- point-to-point -------------------------------------------------

    fn send_payload(&mut self, to: u32, tag: u32, payload: Payload) -> Result<(), SimError> {
        self.send_payload_inner(to, tag, payload).map(|_| ())
    }

    /// Send one message; returns whether it was *delivered* (`false`: an
    /// injected drop consumed it — a tombstone went out instead, so the
    /// receiver still unblocks and observes a timeout).
    fn send_payload_inner(
        &mut self,
        to: u32,
        tag: u32,
        payload: Payload,
    ) -> Result<bool, SimError> {
        self.fail_if_crashed()?;
        self.check_rank(to)?;
        let bytes = payload.nbytes();
        jubench_metrics::counter_add("simmpi/msgs/send", 1);
        jubench_metrics::counter_add("simmpi/bytes/send", bytes);
        let (transfer, regime, degraded) = self.link(to, bytes);
        let t0 = self.clock.now();
        // The sender serializes the message through its adapter (dropped
        // or not — the bytes entered the wire either way).
        self.clock.advance_comm(transfer);
        let dropped = self.draw_drop(to);
        let msg = Message {
            payload,
            tag,
            sent_at: self.clock.now(),
            dropped,
        };
        // Unbounded channel: never blocks; a gone peer just drops the data.
        let _ = self.senders[to as usize].send(msg);
        if dropped {
            self.emit(
                t0,
                EventKind::Drop {
                    peer: to,
                    tag,
                    bytes,
                    regime,
                },
            );
        } else {
            self.emit(
                t0,
                EventKind::Send {
                    peer: to,
                    tag,
                    bytes,
                    regime,
                    degraded,
                },
            );
        }
        Ok(!dropped)
    }

    fn recv_payload(&mut self, from: u32, tag: Option<u32>) -> Result<Payload, SimError> {
        self.fail_if_crashed()?;
        self.check_rank(from)?;
        let msg = self.receivers[from as usize]
            .recv()
            .map_err(|_| SimError::PeerGone { from })?;
        if msg.dropped {
            // The payload was lost on the wire: wait (in virtual time) up
            // to the sender's post time, then charge the receive timeout.
            let timeout_s = self
                .plan
                .as_ref()
                .map_or(FaultPlan::DEFAULT_RECV_TIMEOUT_S, |p| p.recv_timeout_s());
            let t0 = self.clock.now();
            self.clock.recv_until(msg.sent_at, timeout_s);
            self.emit(
                t0,
                EventKind::Timeout {
                    peer: from,
                    tag: msg.tag,
                    timeout_s,
                },
            );
            return Err(SimError::Timeout { from });
        }
        if let Some(expected) = tag {
            if msg.tag != expected {
                return Err(SimError::TagMismatch {
                    from,
                    expected,
                    found: msg.tag,
                });
            }
        }
        let bytes = msg.payload.nbytes();
        jubench_metrics::counter_add("simmpi/msgs/recv", 1);
        jubench_metrics::counter_add("simmpi/bytes/recv", bytes);
        let (transfer, regime, _) = self.link(from, bytes);
        let t0 = self.clock.now();
        let wait_s = (msg.sent_at - t0).max(0.0);
        self.clock.recv_until(msg.sent_at, transfer);
        self.emit(
            t0,
            EventKind::Recv {
                peer: from,
                tag: msg.tag,
                bytes,
                regime,
                wait_s,
                transfer_s: transfer,
            },
        );
        Ok(msg.payload)
    }

    /// Send a slice of `f64` to `to` with tag 0.
    pub fn send_f64(&mut self, to: u32, data: &[f64]) -> Result<(), SimError> {
        self.send_payload(to, 0, Payload::F64(data.to_vec()))
    }

    /// Send with an explicit tag.
    pub fn send_f64_tag(&mut self, to: u32, tag: u32, data: &[f64]) -> Result<(), SimError> {
        self.send_payload(to, tag, Payload::F64(data.to_vec()))
    }

    pub fn send_u64(&mut self, to: u32, data: &[u64]) -> Result<(), SimError> {
        self.send_payload(to, 0, Payload::U64(data.to_vec()))
    }

    pub fn send_bytes(&mut self, to: u32, data: &[u8]) -> Result<(), SimError> {
        self.send_payload(to, 0, Payload::Bytes(data.to_vec()))
    }

    /// Receive the next `f64` message from `from` (any tag).
    pub fn recv_f64(&mut self, from: u32) -> Result<Vec<f64>, SimError> {
        match self.recv_payload(from, None)? {
            Payload::F64(v) => Ok(v),
            other => Err(SimError::TypeMismatch {
                from,
                expected: "f64",
                found: other.type_name(),
            }),
        }
    }

    /// Receive an `f64` message from `from`, requiring `tag`.
    pub fn recv_f64_tag(&mut self, from: u32, tag: u32) -> Result<Vec<f64>, SimError> {
        match self.recv_payload(from, Some(tag))? {
            Payload::F64(v) => Ok(v),
            other => Err(SimError::TypeMismatch {
                from,
                expected: "f64",
                found: other.type_name(),
            }),
        }
    }

    pub fn recv_u64(&mut self, from: u32) -> Result<Vec<u64>, SimError> {
        match self.recv_payload(from, None)? {
            Payload::U64(v) => Ok(v),
            other => Err(SimError::TypeMismatch {
                from,
                expected: "u64",
                found: other.type_name(),
            }),
        }
    }

    pub fn recv_bytes(&mut self, from: u32) -> Result<Vec<u8>, SimError> {
        match self.recv_payload(from, None)? {
            Payload::Bytes(v) => Ok(v),
            other => Err(SimError::TypeMismatch {
                from,
                expected: "bytes",
                found: other.type_name(),
            }),
        }
    }

    /// Simultaneous exchange with `peer`: send `data`, receive the peer's
    /// buffer. Safe against deadlock because sends never block.
    pub fn sendrecv_f64(&mut self, peer: u32, data: &[f64]) -> Result<Vec<f64>, SimError> {
        self.send_f64(peer, data)?;
        self.recv_f64(peer)
    }

    /// Exchange `u64` data with `peer`.
    pub fn sendrecv_u64(&mut self, peer: u32, data: &[u64]) -> Result<Vec<u64>, SimError> {
        self.send_u64(peer, data)?;
        self.recv_u64(peer)
    }

    // ----- resilient point-to-point ---------------------------------------

    /// Send `data` to `to` with bounded retry under `policy`, modeling an
    /// acknowledged transport: a dropped message is re-sent after an
    /// exponential backoff charged to the **virtual** clock (recorded as a
    /// `Retry` trace event). Returns the number of attempts used. The
    /// matching receiver must call [`Comm::recv_f64_reliable`] with the
    /// same policy so both sides consume the same number of messages.
    pub fn send_f64_reliable(
        &mut self,
        to: u32,
        data: &[f64],
        policy: RetryPolicy,
    ) -> Result<u32, SimError> {
        for attempt in 1..=policy.max_attempts {
            if self.send_payload_inner(to, 0, Payload::F64(data.to_vec()))? {
                return Ok(attempt);
            }
            if attempt < policy.max_attempts {
                let backoff_s = policy.backoff_s(attempt);
                let t0 = self.clock.now();
                self.clock.advance_comm(backoff_s);
                self.emit(
                    t0,
                    EventKind::Retry {
                        peer: to,
                        attempt,
                        backoff_s,
                    },
                );
            }
        }
        Err(SimError::RetriesExhausted {
            peer: to,
            attempts: policy.max_attempts,
        })
    }

    /// Receive from `from`, absorbing up to `policy.max_attempts − 1`
    /// timeouts (each one the tombstone of a dropped attempt by a
    /// [`Comm::send_f64_reliable`] sender under the same policy). Returns
    /// the payload and the number of attempts consumed.
    pub fn recv_f64_reliable(
        &mut self,
        from: u32,
        policy: RetryPolicy,
    ) -> Result<(Vec<f64>, u32), SimError> {
        let mut attempts = 0;
        loop {
            attempts += 1;
            match self.recv_f64(from) {
                Ok(v) => return Ok((v, attempts)),
                Err(SimError::Timeout { .. }) if attempts < policy.max_attempts => continue,
                Err(SimError::Timeout { .. }) => {
                    return Err(SimError::RetriesExhausted {
                        peer: from,
                        attempts,
                    })
                }
                Err(e) => return Err(e),
            }
        }
    }

    // ----- collectives ----------------------------------------------------

    /// Barrier: synchronizes all virtual clocks to the maximum.
    pub fn barrier(&mut self) {
        jubench_metrics::counter_add("simmpi/ops/barrier", 1);
        let t0 = self.clock.now();
        let target = self.barrier.wait(t0);
        self.clock.sync_to(target);
        let sync_wait_s = self.clock.now() - t0;
        self.emit(
            t0,
            EventKind::Collective {
                kind: CollectiveKind::Barrier,
                algorithm: "max-sync",
                bytes: 0,
                sync_wait_s,
            },
        );
    }

    /// Record a collective span `[t0, now]` wrapping the constituent
    /// point-to-point events. Wire time lives in those wrapped events, so
    /// the span itself carries `sync_wait_s = 0` and does not enter the
    /// clock accounting a second time.
    fn emit_collective(
        &mut self,
        t0: f64,
        kind: CollectiveKind,
        algorithm: &'static str,
        bytes: u64,
    ) {
        // Guarded so the name formatting is free when metrics are off.
        if jubench_metrics::enabled() {
            jubench_metrics::counter_add(&format!("simmpi/ops/{}", kind.label()), 1);
            jubench_metrics::counter_add(&format!("simmpi/bytes/{}", kind.label()), bytes);
        }
        self.emit(
            t0,
            EventKind::Collective {
                kind,
                algorithm,
                bytes,
                sync_wait_s: 0.0,
            },
        );
    }

    /// In-place ring allreduce (reduce-scatter + allgather).
    pub fn allreduce_f64(&mut self, buf: &mut [f64], op: ReduceOp) -> Result<(), SimError> {
        let t0 = self.clock.now();
        self.allreduce_impl(buf, op)?;
        self.emit_collective(
            t0,
            CollectiveKind::Allreduce,
            "ring",
            (buf.len() * 8) as u64,
        );
        Ok(())
    }

    fn allreduce_impl(&mut self, buf: &mut [f64], op: ReduceOp) -> Result<(), SimError> {
        let p = self.size as usize;
        if p == 1 || buf.is_empty() {
            return Ok(());
        }
        let r = self.rank as usize;
        let right = ((r + 1) % p) as u32;
        let left = ((r + p - 1) % p) as u32;
        let n = buf.len();
        let chunk = move |i: usize| -> std::ops::Range<usize> {
            let base = n / p;
            let rem = n % p;
            let start = i * base + i.min(rem);
            let len = base + usize::from(i < rem);
            start..start + len
        };
        // Reduce-scatter.
        for s in 0..p - 1 {
            let send_idx = (r + p - s) % p;
            let recv_idx = (r + p - s - 1) % p;
            let out = buf[chunk(send_idx)].to_vec();
            self.send_f64(right, &out)?;
            let incoming = self.recv_f64(left)?;
            for (dst, src) in buf[chunk(recv_idx)].iter_mut().zip(incoming) {
                *dst = op.apply(*dst, src);
            }
        }
        // Allgather of the reduced chunks.
        for s in 0..p - 1 {
            let send_idx = (r + 1 + p - s) % p;
            let recv_idx = (r + p - s) % p;
            let out = buf[chunk(send_idx)].to_vec();
            self.send_f64(right, &out)?;
            let incoming = self.recv_f64(left)?;
            buf[chunk(recv_idx)].copy_from_slice(&incoming);
        }
        Ok(())
    }

    /// Allreduce of a single scalar (CG dot products and friends).
    pub fn allreduce_scalar(&mut self, value: f64, op: ReduceOp) -> Result<f64, SimError> {
        let mut buf = [value];
        self.allreduce_f64(&mut buf, op)?;
        Ok(buf[0])
    }

    /// Ring allgather: returns the concatenation of every rank's `local`
    /// contribution, ordered by rank. All contributions must have equal
    /// length.
    pub fn allgather_f64(&mut self, local: &[f64]) -> Result<Vec<f64>, SimError> {
        let t0 = self.clock.now();
        let out = self.allgather_impl(local)?;
        self.emit_collective(
            t0,
            CollectiveKind::Allgather,
            "ring",
            (local.len() * 8) as u64,
        );
        Ok(out)
    }

    fn allgather_impl(&mut self, local: &[f64]) -> Result<Vec<f64>, SimError> {
        let p = self.size as usize;
        let n = local.len();
        let r = self.rank as usize;
        let mut out = vec![0.0; n * p];
        out[r * n..(r + 1) * n].copy_from_slice(local);
        if p == 1 {
            return Ok(out);
        }
        let right = ((r + 1) % p) as u32;
        let left = ((r + p - 1) % p) as u32;
        let mut cur = local.to_vec();
        for s in 0..p - 1 {
            self.send_f64(right, &cur)?;
            cur = self.recv_f64(left)?;
            let src = (r + p - 1 - s) % p;
            out[src * n..(src + 1) * n].copy_from_slice(&cur);
        }
        Ok(out)
    }

    /// Personalized all-to-all: `send[i]` goes to rank `i`; returns the
    /// vector of buffers received from each rank (`recv[i]` from rank `i`).
    pub fn alltoall_f64(&mut self, send: Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>, SimError> {
        let t0 = self.clock.now();
        let bytes = send.iter().map(|b| (b.len() * 8) as u64).sum();
        let recv = self.alltoall_impl(send)?;
        self.emit_collective(t0, CollectiveKind::Alltoall, "pairwise", bytes);
        Ok(recv)
    }

    fn alltoall_impl(&mut self, send: Vec<Vec<f64>>) -> Result<Vec<Vec<f64>>, SimError> {
        let p = self.size as usize;
        assert_eq!(send.len(), p, "alltoall needs one buffer per rank");
        let r = self.rank as usize;
        let mut recv: Vec<Vec<f64>> = vec![Vec::new(); p];
        recv[r] = send[r].clone();
        for round in 1..p {
            let dst = ((r + round) % p) as u32;
            let src = ((r + p - round) % p) as u32;
            self.send_f64(dst, &send[dst as usize])?;
            recv[src as usize] = self.recv_f64(src)?;
        }
        Ok(recv)
    }

    /// Binomial-tree broadcast from `root`, in place.
    pub fn broadcast_f64(&mut self, root: u32, buf: &mut Vec<f64>) -> Result<(), SimError> {
        let t0 = self.clock.now();
        self.broadcast_impl(root, buf)?;
        // Payload size is known once the buffer arrived (non-root ranks
        // start empty).
        self.emit_collective(
            t0,
            CollectiveKind::Broadcast,
            "binomial-tree",
            (buf.len() * 8) as u64,
        );
        Ok(())
    }

    fn broadcast_impl(&mut self, root: u32, buf: &mut Vec<f64>) -> Result<(), SimError> {
        self.check_rank(root)?;
        let p = self.size;
        if p == 1 {
            return Ok(());
        }
        let relrank = (self.rank + p - root) % p;
        let mut mask = 1u32;
        while mask < p {
            if relrank & mask != 0 {
                let src = (self.rank + p - mask) % p;
                *buf = self.recv_f64(src)?;
                break;
            }
            mask <<= 1;
        }
        mask >>= 1;
        while mask > 0 {
            if relrank + mask < p {
                let dst = (self.rank + mask) % p;
                self.send_f64(dst, buf)?;
            }
            mask >>= 1;
        }
        Ok(())
    }

    /// Gather every rank's `local` buffer at `root`. Returns `Some` at the
    /// root (indexed by rank), `None` elsewhere.
    pub fn gather_f64(
        &mut self,
        root: u32,
        local: &[f64],
    ) -> Result<Option<Vec<Vec<f64>>>, SimError> {
        let t0 = self.clock.now();
        let out = self.gather_impl(root, local)?;
        self.emit_collective(
            t0,
            CollectiveKind::Gather,
            "linear",
            (local.len() * 8) as u64,
        );
        Ok(out)
    }

    fn gather_impl(&mut self, root: u32, local: &[f64]) -> Result<Option<Vec<Vec<f64>>>, SimError> {
        self.check_rank(root)?;
        if self.rank == root {
            let mut all = vec![Vec::new(); self.size as usize];
            all[root as usize] = local.to_vec();
            for from in 0..self.size {
                if from != root {
                    all[from as usize] = self.recv_f64(from)?;
                }
            }
            Ok(Some(all))
        } else {
            self.send_f64(root, local)?;
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_ops() {
        assert_eq!(ReduceOp::Sum.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
    }

    #[test]
    fn payload_sizes_and_names() {
        assert_eq!(Payload::F64(vec![0.0; 4]).nbytes(), 32);
        assert_eq!(Payload::U64(vec![0; 2]).nbytes(), 16);
        assert_eq!(Payload::Bytes(vec![0; 3]).nbytes(), 3);
        assert_eq!(Payload::F64(vec![]).type_name(), "f64");
    }

    #[test]
    fn vbarrier_returns_max() {
        let b = Arc::new(VBarrier::new(3));
        let mut handles = Vec::new();
        for t in 0..3 {
            let b = Arc::clone(&b);
            handles.push(std::thread::spawn(move || b.wait(t as f64)));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 2.0);
        }
    }

    #[test]
    fn vbarrier_resets_between_rounds() {
        let b = Arc::new(VBarrier::new(2));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || {
            let first = b2.wait(5.0);
            let second = b2.wait(1.0);
            (first, second)
        });
        let first = b.wait(3.0);
        let second = b.wait(2.0);
        let (pf, ps) = h.join().unwrap();
        assert_eq!((first, pf), (5.0, 5.0));
        assert_eq!((second, ps), (2.0, 2.0));
    }
}
