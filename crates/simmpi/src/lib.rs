//! # jubench-simmpi
//!
//! A simulated message-passing runtime: the substitution for MPI on the
//! real machines. Ranks run as operating-system threads exchanging real
//! data through channels, so distributed algorithms execute genuinely (halo
//! exchanges move actual ghost cells, the JUQCS state-vector swap moves
//! actual amplitudes). In addition, every rank owns a **virtual clock**:
//!
//! - computation advances it by the roofline model's prediction for the
//!   declared work (see [`jubench_cluster::Roofline`]),
//! - every message advances it by the network model's prediction for the
//!   message size and the sender/receiver placement on the machine
//!   ([`jubench_cluster::NetModel`]), respecting causality (a receive
//!   cannot complete before the matching send was posted, in virtual time).
//!
//! The *virtual makespan* of a run — the maximum rank clock — is the
//! quantity the scaling studies (Figs. 2 and 3 of the paper) report. It is
//! independent of the host's wall-clock speed, which is what makes
//! scaling studies reproducible on a development machine.

pub mod clock;
pub mod comm;
pub mod error;
pub mod rankmap;
pub mod world;

pub use clock::{ClockStats, VirtualClock};
pub use comm::{Comm, ReduceOp};
pub use error::SimError;
pub use rankmap::RankMap;
pub use world::{RankResult, World};
