//! # jubench-simmpi
//!
//! A simulated message-passing runtime: the substitution for MPI on the
//! real machines. Ranks run as operating-system threads exchanging real
//! data through channels, so distributed algorithms execute genuinely (halo
//! exchanges move actual ghost cells, the JUQCS state-vector swap moves
//! actual amplitudes). In addition, every rank owns a **virtual clock**:
//!
//! - computation advances it by the roofline model's prediction for the
//!   declared work (see [`jubench_cluster::Roofline`]),
//! - every message advances it by the network model's prediction for the
//!   message size and the sender/receiver placement on the machine
//!   ([`jubench_cluster::NetModel`]), respecting causality (a receive
//!   cannot complete before the matching send was posted, in virtual time).
//!
//! The *virtual makespan* of a run — the maximum rank clock — is the
//! quantity the scaling studies (Figs. 2 and 3 of the paper) report. It is
//! independent of the host's wall-clock speed, which is what makes
//! scaling studies reproducible on a development machine.
//!
//! ## Fault injection
//!
//! A [`World`] optionally carries a [`jubench_faults::FaultPlan`]
//! ([`World::with_fault_plan`]): degraded and flapping links stretch
//! transfer times, slow-node faults stretch compute spans, message drops
//! turn receives into virtual-time timeouts ([`SimError::Timeout`]), and
//! rank crashes fail every operation past the scheduled instant
//! ([`SimError::RankCrashed`]). Dropped messages are delivered as
//! *tombstones*, so receivers never block in wall time. The resilient
//! pair [`Comm::send_f64_reliable`] / [`Comm::recv_f64_reliable`] retries
//! over drops with exponential backoff charged to the virtual clock. The
//! barrier is **not** crash-safe: a crashed rank must still reach it (or
//! the run must avoid barriers after the crash time).

pub mod clock;
pub mod comm;
pub mod error;
pub mod rankmap;
pub mod world;

pub use clock::{ClockStats, VirtualClock};
pub use comm::{Comm, ReduceOp};
pub use error::SimError;
pub use rankmap::RankMap;
pub use world::{fault_arrivals, makespan, RankResult, World, FAULT_CRASH_CLASS};
