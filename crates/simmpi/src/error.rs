//! Runtime errors of the simulated MPI layer.

use std::fmt;

/// Errors raised by simulated communication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A receive found a message of a different payload type than requested
    /// (e.g. `recv_f64` on a `u64` message) — the moral equivalent of an
    /// MPI datatype mismatch.
    TypeMismatch {
        from: u32,
        expected: &'static str,
        found: &'static str,
    },
    /// A receive found a message with an unexpected tag.
    TagMismatch {
        from: u32,
        expected: u32,
        found: u32,
    },
    /// The peer rank terminated (panicked or returned) while this rank was
    /// waiting for a message.
    PeerGone { from: u32 },
    /// Rank index out of range.
    InvalidRank { rank: u32, size: u32 },
    /// A receive observed a dropped message (an injected message-drop
    /// fault) and gave up after the fault plan's virtual-time receive
    /// timeout.
    Timeout { from: u32 },
    /// The operating rank passed its scheduled crash time: every further
    /// communication attempt fails with this error.
    RankCrashed { rank: u32 },
    /// A resilient operation used up its whole retry budget without
    /// succeeding.
    RetriesExhausted { peer: u32, attempts: u32 },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TypeMismatch {
                from,
                expected,
                found,
            } => {
                write!(
                    f,
                    "type mismatch receiving from rank {from}: expected {expected}, found {found}"
                )
            }
            SimError::TagMismatch {
                from,
                expected,
                found,
            } => {
                write!(
                    f,
                    "tag mismatch receiving from rank {from}: expected {expected}, found {found}"
                )
            }
            SimError::PeerGone { from } => {
                write!(f, "rank {from} terminated while being waited on")
            }
            SimError::InvalidRank { rank, size } => {
                write!(
                    f,
                    "rank {rank} out of range for communicator of size {size}"
                )
            }
            SimError::Timeout { from } => {
                write!(f, "receive from rank {from} timed out (message dropped)")
            }
            SimError::RankCrashed { rank } => {
                write!(f, "rank {rank} has crashed (scheduled fault)")
            }
            SimError::RetriesExhausted { peer, attempts } => {
                write!(
                    f,
                    "operation with rank {peer} failed after {attempts} attempts"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SimError::TypeMismatch {
            from: 3,
            expected: "f64",
            found: "u64",
        };
        assert!(e.to_string().contains("rank 3"));
        let e = SimError::InvalidRank { rank: 9, size: 4 };
        assert!(e.to_string().contains('9') && e.to_string().contains('4'));
    }
}
