//! The [`World`]: construction of communicators and thread-based execution
//! of rank closures.
//!
//! The world is also where a [`FaultPlan`] is translated into the
//! event-driven view each communicator consumes: [`fault_arrivals`]
//! compiles the plan's *discontinuous* instants (today, rank crashes)
//! into a per-rank [`EventQueue`] on the global `(time, class, rank,
//! seq)` order, while *continuous* faults (degraded links, slow nodes)
//! stay closed-form lookups because they modulate durations rather than
//! schedule instants.

use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};

use jubench_cluster::{Machine, NetModel, Placement, Roofline};
use jubench_events::EventQueue;
use jubench_faults::FaultPlan;
use jubench_trace::TraceSink;

use crate::clock::ClockStats;
use crate::comm::{Comm, VBarrier};
use crate::rankmap::RankMap;

/// Result of one rank's execution: the closure's return value plus the
/// rank's final virtual-clock statistics.
#[derive(Debug, Clone)]
pub struct RankResult<T> {
    pub rank: u32,
    pub value: T,
    pub clock: ClockStats,
}

/// A simulated machine (or MSA machine pair) on which rank programs can
/// be launched.
#[derive(Clone)]
pub struct World {
    map: RankMap,
    net: NetModel,
    /// Fault injection: a seeded, declarative schedule of faults every
    /// communicator consults at operation boundaries — degraded/flapping
    /// links, slow nodes, message drops, rank crashes. `None` (and the
    /// empty plan) is the unfaulted machine.
    plan: Option<Arc<FaultPlan>>,
    /// Opt-in observability: every communicator records structured events
    /// here. `None` (the default) keeps all instrumentation hooks no-ops.
    sink: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("map", &self.map)
            .field("net", &self.net)
            .field("fault_plan", &self.plan)
            .field("traced", &self.sink.is_some())
            .finish()
    }
}

impl World {
    /// One rank per GPU (the normal Booster launch configuration). The
    /// machine's own network model drives the communication clocks, so
    /// worlds on different catalog backends time differently.
    pub fn new(machine: Machine) -> Self {
        World {
            map: RankMap::Uniform {
                placement: Placement::per_gpu(machine),
                device: Roofline::new(machine.node.gpu),
            },
            net: machine.net,
            plan: None,
            sink: None,
        }
    }

    /// One rank per node (CPU-only codes: NAStJA, DynQCD).
    pub fn per_node(machine: Machine) -> Self {
        World {
            map: RankMap::Uniform {
                placement: Placement::per_node(machine),
                device: Roofline::new(jubench_cluster::GpuSpec::epyc_rome_node()),
            },
            net: machine.net,
            plan: None,
            sink: None,
        }
    }

    /// An MSA world spanning the Cluster and Booster modules (§II-B): the
    /// first `cluster_nodes` ranks are CPU-node ranks, the rest GPU ranks.
    pub fn msa(cluster_nodes: u32, booster_nodes: u32) -> Self {
        World {
            map: RankMap::msa(cluster_nodes, booster_nodes),
            net: NetModel::juwels_booster(),
            plan: None,
            sink: None,
        }
    }

    /// Inject a full fault plan: every communicator of subsequent runs
    /// consults it at operation boundaries. Replaces any previous plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = Some(Arc::new(plan));
        self
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.plan.as_deref()
    }

    /// Override the kernel efficiencies of the device roofline (uniform
    /// worlds only).
    pub fn with_efficiencies(mut self, flop: f64, bw: f64) -> Self {
        if let RankMap::Uniform { device, .. } = &mut self.map {
            *device = device.with_efficiencies(flop, bw);
        }
        self
    }

    /// Override the network model.
    pub fn with_net(mut self, net: NetModel) -> Self {
        self.net = net;
        self
    }

    /// Install a trace sink: every communicator of subsequent runs records
    /// compute spans, point-to-point transfers, and collectives into it.
    /// Without a recorder installed the instrumentation hooks are no-ops.
    pub fn with_recorder(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Number of ranks this world launches.
    pub fn ranks(&self) -> u32 {
        self.map.ranks()
    }

    /// The rank map (placement + devices).
    pub fn rank_map(&self) -> &RankMap {
        &self.map
    }

    pub fn net(&self) -> &NetModel {
        &self.net
    }

    /// Launch one thread per rank, run `f`, and collect the results in rank
    /// order. Panics in a rank are propagated with the rank number.
    ///
    /// Rank programs block on each other (channels, the virtual barrier),
    /// so they execute on counted *dedicated* threads via
    /// [`jubench_pool::run_dedicated`], never on the bounded work-stealing
    /// pool — a pool with fewer workers than ranks would deadlock the
    /// first collective.
    pub fn run<T, F>(&self, f: F) -> Vec<RankResult<T>>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let n = self.ranks() as usize;
        assert!(n >= 1, "world needs at least one rank");
        // channels[from][to]
        let mut senders: Vec<Vec<_>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        let mut receivers: Vec<Vec<_>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
        let mut rx_matrix: Vec<Vec<Option<_>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for (from, row) in senders.iter_mut().enumerate() {
            for to in 0..n {
                let (s, r) = channel();
                row.push(s);
                rx_matrix[to][from] = Some(r);
            }
        }
        for (to, row) in rx_matrix.into_iter().enumerate() {
            receivers[to] = row.into_iter().map(|r| r.unwrap()).collect();
        }

        let barrier = Arc::new(VBarrier::new(n));
        // Each rank claims its own channel endpoints out of this handoff
        // table; `run_dedicated` shares one `Fn(u32)` across all ranks.
        let endpoints: Vec<Mutex<Option<(Vec<_>, Vec<_>)>>> = senders
            .drain(..)
            .zip(receivers.drain(..))
            .map(|pair| Mutex::new(Some(pair)))
            .collect();

        let outcomes = jubench_pool::run_dedicated(n as u32, |rank| {
            let (tx, rx) = endpoints[rank as usize]
                .lock()
                .unwrap()
                .take()
                .expect("rank endpoints claimed once");
            let mut comm = Comm::new(
                rank,
                n as u32,
                tx,
                rx,
                self.map,
                self.net,
                Arc::clone(&barrier),
            )
            .with_fault_plan(self.plan.clone())
            .with_sink(self.sink.clone());
            let value = f(&mut comm);
            RankResult {
                rank,
                value,
                clock: comm.stats(),
            }
        });

        outcomes
            .into_iter()
            .enumerate()
            .map(|(rank, outcome)| match outcome {
                Ok(res) => res,
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<String>()
                        .cloned()
                        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                        .unwrap_or_else(|| "unknown panic".into());
                    panic!("rank {rank} panicked: {msg}");
                }
            })
            .collect()
    }

    /// Run and return the virtual makespan: the maximum rank clock total,
    /// together with the maximum compute and communication shares.
    pub fn run_timed<T, F>(&self, f: F) -> (Vec<RankResult<T>>, ClockStats)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let results = self.run(f);
        let makespan = makespan(&results);
        (results, makespan)
    }
}

/// Event class of a rank's permanent crash on its fault-arrival queue.
/// Zero so a crash sorts ahead of any other arrival that may later share
/// its instant — a crashed rank experiences nothing afterwards.
pub const FAULT_CRASH_CLASS: u8 = 0;

/// The fault-arrival event queue of one rank under `plan`: every instant
/// at which the rank's behaviour changes discontinuously — today only
/// the permanent crash, class [`FAULT_CRASH_CLASS`] — keyed into the
/// global `(time, class, rank, seq)` order. Communicators pop this
/// queue at operation boundaries instead of re-deriving the schedule on
/// every call, and the queue form means future fault kinds (flapping
/// power caps, staged recoveries) merge into the same total order
/// without new per-operation scans.
pub fn fault_arrivals(plan: &FaultPlan, rank: u32) -> EventQueue<()> {
    let mut q = EventQueue::new();
    if let Some(at_s) = plan.crash_time(rank) {
        q.push(at_s, FAULT_CRASH_CLASS, rank, ());
    }
    q
}

/// Aggregate per-rank clocks into a makespan: total = max over ranks of the
/// rank totals; the compute/comm split is taken from the critical rank.
pub fn makespan<T>(results: &[RankResult<T>]) -> ClockStats {
    results
        .iter()
        .map(|r| r.clock)
        .max_by(|a, b| a.total_s().partial_cmp(&b.total_s()).unwrap())
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::ReduceOp;

    fn small_world(nodes: u32) -> World {
        World::new(Machine::juwels_booster().partition(nodes))
    }

    #[test]
    fn ranks_counts() {
        assert_eq!(small_world(2).ranks(), 8);
        assert_eq!(
            World::per_node(Machine::juwels_booster().partition(3)).ranks(),
            3
        );
    }

    #[test]
    fn ring_message_round_trip() {
        let w = small_world(1); // 4 ranks
        let results = w.run(|comm| {
            let p = comm.size();
            let right = (comm.rank() + 1) % p;
            let left = (comm.rank() + p - 1) % p;
            comm.send_f64(right, &[comm.rank() as f64]).unwrap();
            let got = comm.recv_f64(left).unwrap();
            got[0]
        });
        for r in &results {
            let left = (r.rank + 4 - 1) % 4;
            assert_eq!(r.value, left as f64);
            assert!(r.clock.comm_s > 0.0);
        }
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let w = small_world(2); // 8 ranks
        let results = w.run(|comm| {
            let mut buf: Vec<f64> = (0..10).map(|i| (comm.rank() * 10 + i) as f64).collect();
            comm.allreduce_f64(&mut buf, ReduceOp::Sum).unwrap();
            buf
        });
        // Element i: sum over r of (10 r + i) = 10*28 + 8 i.
        for r in &results {
            for (i, v) in r.value.iter().enumerate() {
                assert_eq!(*v, 280.0 + 8.0 * i as f64, "rank {} elem {}", r.rank, i);
            }
        }
    }

    #[test]
    fn allreduce_max_and_min() {
        let w = small_world(1);
        let results = w.run(|comm| {
            let mx = comm
                .allreduce_scalar(comm.rank() as f64, ReduceOp::Max)
                .unwrap();
            let mn = comm
                .allreduce_scalar(comm.rank() as f64, ReduceOp::Min)
                .unwrap();
            (mx, mn)
        });
        for r in &results {
            assert_eq!(r.value, (3.0, 0.0));
        }
    }

    #[test]
    fn allreduce_with_buffer_smaller_than_ranks() {
        let w = small_world(2); // 8 ranks, 3-element buffer
        let results = w.run(|comm| {
            let mut buf = vec![1.0, 2.0, 3.0];
            comm.allreduce_f64(&mut buf, ReduceOp::Sum).unwrap();
            buf
        });
        for r in &results {
            assert_eq!(r.value, vec![8.0, 16.0, 24.0]);
        }
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let w = small_world(1);
        let results = w.run(|comm| comm.allgather_f64(&[comm.rank() as f64; 2]).unwrap());
        for r in &results {
            assert_eq!(r.value, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
        }
    }

    #[test]
    fn alltoall_delivers_personalized_buffers() {
        let w = small_world(1);
        let results = w.run(|comm| {
            let p = comm.size();
            let send: Vec<Vec<f64>> = (0..p)
                .map(|to| vec![(comm.rank() * 100 + to) as f64])
                .collect();
            comm.alltoall_f64(send).unwrap()
        });
        for r in &results {
            for (from, buf) in r.value.iter().enumerate() {
                assert_eq!(buf, &vec![(from as u32 * 100 + r.rank) as f64]);
            }
        }
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let w = small_world(2);
        let results = w.run(|comm| {
            let mut buf = if comm.rank() == 5 {
                vec![42.0, 7.0]
            } else {
                Vec::new()
            };
            comm.broadcast_f64(5, &mut buf).unwrap();
            buf
        });
        for r in &results {
            assert_eq!(r.value, vec![42.0, 7.0]);
        }
    }

    #[test]
    fn gather_collects_at_root() {
        let w = small_world(1);
        let results = w.run(|comm| comm.gather_f64(2, &[comm.rank() as f64]).unwrap());
        for r in &results {
            if r.rank == 2 {
                let all = r.value.as_ref().unwrap();
                assert_eq!(all.len(), 4);
                for (i, b) in all.iter().enumerate() {
                    assert_eq!(b, &vec![i as f64]);
                }
            } else {
                assert!(r.value.is_none());
            }
        }
    }

    #[test]
    fn barrier_synchronizes_virtual_clocks() {
        let w = small_world(1);
        let results = w.run(|comm| {
            // Rank 3 computes for 10 virtual seconds, others are idle.
            if comm.rank() == 3 {
                comm.advance_compute(10.0);
            }
            comm.barrier();
            comm.now()
        });
        for r in &results {
            assert!(
                (r.value - 10.0).abs() < 1e-9,
                "rank {} at {}",
                r.rank,
                r.value
            );
        }
    }

    #[test]
    fn receive_respects_causality() {
        let w = small_world(1);
        let results = w.run(|comm| {
            if comm.rank() == 0 {
                comm.advance_compute(5.0);
                comm.send_f64(1, &[1.0]).unwrap();
                0.0
            } else if comm.rank() == 1 {
                comm.recv_f64(0).unwrap();
                comm.now()
            } else {
                0.0
            }
        });
        // Rank 1 cannot finish its receive before rank 0's virtual send
        // time (5.0 + transfer).
        assert!(results[1].value > 5.0);
    }

    #[test]
    fn type_mismatch_is_detected() {
        let w = small_world(1);
        let results = w.run(|comm| {
            if comm.rank() == 0 {
                comm.send_u64(1, &[42]).unwrap();
                Ok(vec![])
            } else if comm.rank() == 1 {
                comm.recv_f64(0)
            } else {
                Ok(vec![])
            }
        });
        assert!(matches!(
            results[1].value,
            Err(crate::error::SimError::TypeMismatch { from: 0, .. })
        ));
    }

    #[test]
    fn tag_mismatch_is_detected() {
        let w = small_world(1);
        let results = w.run(|comm| {
            if comm.rank() == 0 {
                comm.send_f64_tag(1, 7, &[1.0]).unwrap();
                Ok(vec![])
            } else if comm.rank() == 1 {
                comm.recv_f64_tag(0, 9)
            } else {
                Ok(vec![])
            }
        });
        assert!(matches!(
            results[1].value,
            Err(crate::error::SimError::TagMismatch {
                from: 0,
                expected: 9,
                found: 7
            })
        ));
    }

    #[test]
    fn invalid_rank_is_rejected() {
        let w = small_world(1);
        let results = w.run(|comm| comm.send_f64(99, &[1.0]));
        assert!(matches!(
            results[0].value,
            Err(crate::error::SimError::InvalidRank { rank: 99, size: 4 })
        ));
    }

    #[test]
    #[should_panic(expected = "rank 2 panicked")]
    fn rank_panic_is_propagated_with_rank() {
        let w = small_world(1);
        w.run(|comm| {
            if comm.rank() == 2 {
                panic!("injected failure");
            }
        });
    }

    #[test]
    fn makespan_is_max_rank_clock() {
        let w = small_world(1);
        let (_, span) = w.run_timed(|comm| {
            comm.advance_compute(comm.rank() as f64);
        });
        assert_eq!(span.compute_s, 3.0);
    }

    #[test]
    fn recorder_reproduces_clock_stats_exactly() {
        use jubench_trace::{Recorder, TraceEvent};
        let rec = Arc::new(Recorder::new());
        let w = small_world(2).with_recorder(rec.clone());
        let results = w.run(|comm| {
            comm.advance_compute(0.5 * (comm.rank() + 1) as f64);
            let peer = comm.rank() ^ 1;
            comm.sendrecv_f64(peer, &[comm.rank() as f64; 100]).unwrap();
            let mut buf = vec![comm.rank() as f64; 16];
            comm.allreduce_f64(&mut buf, ReduceOp::Sum).unwrap();
            comm.barrier();
        });
        let events = rec.take_events();
        assert!(!events.is_empty());
        for r in &results {
            let mine: Vec<&TraceEvent> = events.iter().filter(|e| e.rank == r.rank).collect();
            let compute: f64 = mine.iter().map(|e| e.compute_seconds()).sum();
            let comm: f64 = mine.iter().map(|e| e.comm_seconds()).sum();
            assert!(
                (compute - r.clock.compute_s).abs() < 1e-12,
                "rank {} compute {} vs {}",
                r.rank,
                compute,
                r.clock.compute_s
            );
            assert!(
                (comm - r.clock.comm_s).abs() < 1e-9,
                "rank {} comm {} vs {}",
                r.rank,
                comm,
                r.clock.comm_s
            );
        }
    }

    #[test]
    fn untraced_world_records_nothing_and_behaves_identically() {
        let run = |w: &World| {
            w.run(|comm| {
                let peer = comm.rank() ^ 1;
                comm.sendrecv_f64(peer, &[1.0; 64]).unwrap();
                comm.now()
            })
        };
        let plain = small_world(1);
        let rec = Arc::new(jubench_trace::Recorder::new());
        let traced = small_world(1).with_recorder(rec.clone());
        let a = run(&plain);
        let b = run(&traced);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.value, y.value);
            assert_eq!(x.clock, y.clock);
        }
        assert!(!rec.is_empty(), "traced world recorded events");
    }

    #[test]
    fn degraded_link_is_flagged_in_trace() {
        use jubench_trace::EventKind;
        let rec = Arc::new(jubench_trace::Recorder::new());
        let w = small_world(1)
            .with_fault_plan(FaultPlan::new(0).with_degraded_link(0, 1, 8.0))
            .with_recorder(rec.clone());
        w.run(|comm| {
            if comm.rank() == 0 {
                comm.send_f64(1, &[1.0; 32]).unwrap();
                comm.send_f64(2, &[1.0; 32]).unwrap();
            } else if comm.rank() == 1 || comm.rank() == 2 {
                comm.recv_f64(0).unwrap();
            }
        });
        let events = rec.take_events();
        let degraded_of = |peer: u32| {
            events
                .iter()
                .find_map(|e| match e.kind {
                    EventKind::Send {
                        peer: p, degraded, ..
                    } if e.rank == 0 && p == peer => Some(degraded),
                    _ => None,
                })
                .unwrap()
        };
        assert!(degraded_of(1), "0->1 crosses the degraded pair");
        assert!(!degraded_of(2), "0->2 is healthy");
    }

    #[test]
    fn slow_node_stretches_compute_spans() {
        let w = small_world(2); // 8 ranks on 2 nodes (4 ranks each)
        let faulted = w
            .clone()
            .with_fault_plan(FaultPlan::new(1).with_slow_node(1, 4.0));
        let results = faulted.run(|comm| {
            comm.advance_compute(1.0);
            comm.now()
        });
        for r in &results {
            let expect = if r.rank >= 4 { 4.0 } else { 1.0 };
            assert_eq!(r.value, expect, "rank {}", r.rank);
        }
    }

    #[test]
    fn empty_plan_is_bit_identical_to_no_plan() {
        let run = |w: &World| {
            w.run(|comm| {
                comm.advance_compute(0.3 * (comm.rank() + 1) as f64);
                let mut buf = vec![comm.rank() as f64; 32];
                comm.allreduce_f64(&mut buf, ReduceOp::Sum).unwrap();
                comm.stats()
            })
        };
        let plain = run(&small_world(2));
        let empty = run(&small_world(2).with_fault_plan(FaultPlan::new(99)));
        for (a, b) in plain.iter().zip(&empty) {
            assert_eq!(a.value, b.value);
            assert_eq!(a.clock, b.clock);
        }
    }

    #[test]
    fn dropped_message_times_out_and_charges_virtual_time() {
        // Certain drop 0 → 1: the receiver gets a tombstone, not a payload.
        let w = small_world(1).with_fault_plan(
            FaultPlan::new(5)
                .with_message_drop(0, 1, 1.0)
                .with_recv_timeout(0.25),
        );
        let results = w.run(|comm| {
            if comm.rank() == 0 {
                comm.send_f64(1, &[1.0; 8]).map(|_| 0.0)
            } else if comm.rank() == 1 {
                let err = comm.recv_f64(0).unwrap_err();
                assert_eq!(err, crate::error::SimError::Timeout { from: 0 });
                Ok(comm.now())
            } else {
                Ok(0.0)
            }
        });
        // Rank 1 waited until the (lost) send's post time plus the timeout.
        let t = results[1].value.clone().unwrap();
        assert!(t > 0.25, "timeout charged virtual time, got {t}");
    }

    #[test]
    fn reliable_pair_survives_drops() {
        let policy = jubench_faults::RetryPolicy::new(20, 0.01);
        let w = small_world(1).with_fault_plan(FaultPlan::new(7).with_message_drop(0, 1, 0.5));
        let results = w.run(move |comm| {
            if comm.rank() == 0 {
                let attempts = comm.send_f64_reliable(1, &[42.0; 4], policy).unwrap();
                (attempts, vec![])
            } else if comm.rank() == 1 {
                let (data, attempts) = comm.recv_f64_reliable(0, policy).unwrap();
                (attempts, data)
            } else {
                (0, vec![])
            }
        });
        let (send_attempts, _) = &results[0].value;
        let (recv_attempts, data) = &results[1].value;
        assert_eq!(data, &vec![42.0; 4]);
        assert_eq!(send_attempts, recv_attempts, "both sides stay in step");
        assert!(*send_attempts >= 1 && *send_attempts <= 20);
    }

    #[test]
    fn exhausted_retries_error_on_both_sides() {
        let policy = jubench_faults::RetryPolicy::new(3, 0.01);
        let w = small_world(1).with_fault_plan(FaultPlan::new(7).with_message_drop(0, 1, 1.0));
        let results = w.run(move |comm| {
            if comm.rank() == 0 {
                comm.send_f64_reliable(1, &[1.0], policy).map(|_| ())
            } else if comm.rank() == 1 {
                comm.recv_f64_reliable(0, policy).map(|_| ())
            } else {
                Ok(())
            }
        });
        use crate::error::SimError;
        assert_eq!(
            results[0].value,
            Err(SimError::RetriesExhausted {
                peer: 1,
                attempts: 3
            })
        );
        assert_eq!(
            results[1].value,
            Err(SimError::RetriesExhausted {
                peer: 0,
                attempts: 3
            })
        );
    }

    #[test]
    fn crashed_rank_fails_operations_and_peers_see_it_gone() {
        let w = small_world(1).with_fault_plan(FaultPlan::new(0).with_rank_crash(2, 1.0));
        let results = w.run(|comm| {
            if comm.rank() == 2 {
                comm.advance_compute(2.0); // sail past the crash time
                let err = comm.send_f64(0, &[1.0]).unwrap_err();
                Err(err)
            } else if comm.rank() == 0 {
                // Rank 2's send never happened; its channel closes when it
                // returns.
                Err(comm.recv_f64(2).unwrap_err())
            } else {
                Ok(())
            }
        });
        use crate::error::SimError;
        assert_eq!(results[2].value, Err(SimError::RankCrashed { rank: 2 }));
        assert_eq!(results[0].value, Err(SimError::PeerGone { from: 2 }));
    }

    #[test]
    fn fault_arrival_queue_matches_plan_closed_form() {
        let plan = FaultPlan::new(3)
            .with_rank_crash(1, 2.5)
            .with_slow_node(0, 4.0); // continuous fault: not an arrival
        let mut q = fault_arrivals(&plan, 1);
        assert_eq!(q.len(), 1);
        let ev = q.pop().unwrap();
        assert_eq!(ev.key.time, plan.crash_time(1).unwrap());
        assert_eq!(ev.key.class, FAULT_CRASH_CLASS);
        assert_eq!(ev.key.rank, 1);
        assert!(fault_arrivals(&plan, 0).is_empty(), "rank 0 never crashes");
    }

    #[test]
    fn crash_arrival_detection_matches_cached_scalar_semantics() {
        // The event-queue crash path must reproduce the old cached-`at_s`
        // check bit for bit: detection happens at the first operation
        // boundary with now >= at_s, the Crash marker carries the plan's
        // at_s verbatim, and it is emitted exactly once.
        use jubench_trace::{EventKind, Recorder};
        let at_s = 1.0;
        let rec = Arc::new(Recorder::new());
        let w = small_world(1)
            .with_fault_plan(FaultPlan::new(0).with_rank_crash(2, at_s))
            .with_recorder(rec.clone());
        let results = w.run(|comm| {
            if comm.rank() == 2 {
                // Three op boundaries past the crash time: only the first
                // may emit the marker.
                comm.advance_compute(0.75); // now < at_s: survives
                comm.send_f64(3, &[0.5]).expect("before the crash");
                comm.advance_compute(0.75); // now = 1.5 >= at_s
                let e1 = comm.send_f64(3, &[1.0]).unwrap_err();
                let e2 = comm.send_f64(3, &[2.0]).unwrap_err();
                (comm.now(), Some((e1, e2)))
            } else if comm.rank() == 3 {
                let got = comm.recv_f64(2).expect("pre-crash send arrives");
                assert_eq!(got, vec![0.5]);
                (comm.now(), None)
            } else {
                (comm.now(), None)
            }
        });
        use crate::error::SimError;
        let (t_detect, errs) = &results[2].value;
        let (e1, e2) = errs.clone().unwrap();
        assert_eq!(e1, SimError::RankCrashed { rank: 2 });
        assert_eq!(e2, SimError::RankCrashed { rank: 2 });
        assert!(*t_detect >= at_s);
        let crashes: Vec<_> = rec
            .take_events()
            .into_iter()
            .filter(|e| matches!(e.kind, EventKind::Crash { .. }))
            .collect();
        assert_eq!(crashes.len(), 1, "marker emitted exactly once");
        assert_eq!(crashes[0].rank, 2);
        assert!(matches!(crashes[0].kind, EventKind::Crash { at_s: a } if a == at_s));
    }

    #[test]
    fn fault_runs_are_reproducible_per_seed() {
        let run = |seed: u64| {
            let w =
                small_world(1).with_fault_plan(FaultPlan::new(seed).with_message_drop(0, 1, 0.5));
            let policy = jubench_faults::RetryPolicy::new(50, 0.01);
            w.run(move |comm| {
                if comm.rank() == 0 {
                    comm.send_f64_reliable(1, &[1.0; 16], policy).unwrap();
                } else if comm.rank() == 1 {
                    comm.recv_f64_reliable(0, policy).unwrap();
                }
                comm.stats()
            })
        };
        let a = run(11);
        let b = run(11);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.clock, y.clock);
        }
        // A different seed draws a different drop pattern (with 50 %
        // drops over 50 attempts this differs with overwhelming odds).
        let c = run(12);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.clock != y.clock),
            "different seeds should perturb the run"
        );
    }

    #[test]
    fn sendrecv_exchanges_between_pairs() {
        let w = small_world(1);
        let results = w.run(|comm| {
            let peer = comm.rank() ^ 1;
            comm.sendrecv_f64(peer, &[comm.rank() as f64]).unwrap()[0]
        });
        for r in &results {
            assert_eq!(r.value, (r.rank ^ 1) as f64);
        }
    }

    #[test]
    fn inter_node_comm_costs_more_than_intra_node() {
        // Same exchange volume; 8 ranks on 2 nodes vs 4 ranks on 1 node.
        let data = vec![0.0f64; 1 << 16];
        let intra = {
            let w = small_world(1);
            let d = data.clone();
            let (_, span) = w.run_timed(move |comm| {
                let peer = comm.rank() ^ 1; // same node always
                comm.sendrecv_f64(peer, &d).unwrap();
            });
            span.comm_s
        };
        let inter = {
            let w = small_world(2);
            let (_, span) = w.run_timed(move |comm| {
                let peer = comm.rank() ^ 4; // always the other node
                comm.sendrecv_f64(peer, &data).unwrap();
            });
            span.comm_s
        };
        assert!(inter > 2.0 * intra, "inter {inter} vs intra {intra}");
    }
}
