//! Per-rank virtual clocks.

use jubench_cluster::{Roofline, Work};

/// A rank's virtual clock, split into compute and communication shares.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct VirtualClock {
    compute_s: f64,
    comm_s: f64,
}

/// Immutable snapshot of a clock at the end of a run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ClockStats {
    pub compute_s: f64,
    pub comm_s: f64,
}

impl ClockStats {
    pub fn total_s(&self) -> f64 {
        self.compute_s + self.comm_s
    }

    /// Fraction of the total virtual time spent communicating.
    pub fn comm_fraction(&self) -> f64 {
        let t = self.total_s();
        if t == 0.0 {
            0.0
        } else {
            self.comm_s / t
        }
    }
}

impl VirtualClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.compute_s + self.comm_s
    }

    /// Advance by `seconds` of computation.
    pub fn advance_compute(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.compute_s += seconds;
    }

    /// Advance by the roofline prediction for `work` on `device`.
    pub fn advance_work(&mut self, device: &Roofline, work: Work) {
        self.advance_compute(device.time(work));
    }

    /// Advance by `seconds` of communication.
    pub fn advance_comm(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.comm_s += seconds;
    }

    /// Wait (in communication time) until at least `target` virtual time,
    /// then advance by `transfer` seconds of communication. Returns the new
    /// time. This realizes causality: a receive completes no earlier than
    /// the matching send's post time plus the transfer time.
    ///
    /// The wait and the transfer are summed *before* the single
    /// `advance_comm` call. Splitting them into two additions would change
    /// the float rounding of the clock and ripple into every downstream
    /// artifact, so this expression must stay one add.
    pub fn recv_until(&mut self, target: f64, transfer: f64) {
        let wait = (target - self.now()).max(0.0);
        self.advance_comm(wait + transfer);
    }

    /// Jump the clock forward to `target` if it is in the future,
    /// accounting the skipped span as communication time. A `target`
    /// already in the past is a no-op — time never runs backwards.
    ///
    /// This is the event-pop primitive of the virtual-time core: landing
    /// on the next event's timestamp is a single subtraction and addition
    /// regardless of how many idle ticks it replaces, so skipping is
    /// byte-identical to stepping.
    pub fn advance_to(&mut self, target: f64) {
        let wait = (target - self.now()).max(0.0);
        self.advance_comm(wait);
    }

    /// Synchronize to a collective completion time (e.g. a barrier): waits
    /// until `target` if it is in the future, accounting the wait as
    /// communication. Alias of [`advance_to`](Self::advance_to) named for
    /// the collective call sites.
    pub fn sync_to(&mut self, target: f64) {
        self.advance_to(target);
    }

    pub fn stats(&self) -> ClockStats {
        ClockStats {
            compute_s: self.compute_s,
            comm_s: self.comm_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jubench_cluster::GpuSpec;

    #[test]
    fn clock_accumulates_both_shares() {
        let mut c = VirtualClock::new();
        c.advance_compute(1.0);
        c.advance_comm(0.5);
        assert_eq!(c.now(), 1.5);
        assert_eq!(
            c.stats(),
            ClockStats {
                compute_s: 1.0,
                comm_s: 0.5
            }
        );
    }

    #[test]
    fn recv_waits_for_late_sender() {
        let mut c = VirtualClock::new();
        c.advance_compute(1.0);
        // Sender posted at t=3.0; transfer takes 0.25.
        c.recv_until(3.0, 0.25);
        assert!((c.now() - 3.25).abs() < 1e-12);
        assert!((c.stats().comm_s - 2.25).abs() < 1e-12);
    }

    #[test]
    fn recv_from_early_sender_costs_only_transfer() {
        let mut c = VirtualClock::new();
        c.advance_compute(5.0);
        c.recv_until(1.0, 0.25);
        assert!((c.now() - 5.25).abs() < 1e-12);
    }

    #[test]
    fn sync_to_past_is_free() {
        let mut c = VirtualClock::new();
        c.advance_compute(2.0);
        c.sync_to(1.0);
        assert_eq!(c.now(), 2.0);
    }

    #[test]
    fn advance_to_jumps_and_matches_sync_to_bytes() {
        // One event-pop jump lands on the same bits as the sync path,
        // whatever the target, because both are the same single add.
        for target in [0.0, 0.3, 2.0, 2.0 + 1e-16, 1.0e9] {
            let mut a = VirtualClock::new();
            let mut b = VirtualClock::new();
            a.advance_compute(2.0);
            b.advance_compute(2.0);
            a.advance_to(target);
            b.sync_to(target);
            assert_eq!(a.now().to_bits(), b.now().to_bits());
            assert_eq!(a.stats().comm_s.to_bits(), b.stats().comm_s.to_bits());
        }
        let mut c = VirtualClock::new();
        c.advance_to(1.0e6);
        assert_eq!(c.now(), 1.0e6, "skip over a million idle seconds");
        assert_eq!(c.stats().comm_s, 1.0e6, "the skip is accounted as comm");
    }

    #[test]
    fn advance_work_uses_roofline() {
        let mut c = VirtualClock::new();
        let dev = Roofline::new(GpuSpec::a100_40gb());
        c.advance_work(&dev, Work::new(9.7e12 * 0.7, 0.0));
        assert!((c.now() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn comm_fraction() {
        let s = ClockStats {
            compute_s: 3.0,
            comm_s: 1.0,
        };
        assert!((s.comm_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(ClockStats::default().comm_fraction(), 0.0);
    }
}
