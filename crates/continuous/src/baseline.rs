//! Durable storage of accepted benchmark baselines.
//!
//! The format is a deliberately simple line-oriented text file
//! (`<benchmark name>\t<seconds>\n`) so baselines are diffable and
//! mergeable in the benchmark repository, the way the suite keeps
//! "benchmark results" next to the JUBE scripts (§III-D).

use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

use jubench_core::{BenchmarkId, SuiteError};

/// Accepted reference results: benchmark → virtual runtime in seconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineStore {
    entries: BTreeMap<BenchmarkId, f64>,
}

impl BaselineStore {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn set(&mut self, id: BenchmarkId, seconds: f64) {
        assert!(seconds.is_finite() && seconds > 0.0);
        self.entries.insert(id, seconds);
    }

    pub fn get(&self, id: BenchmarkId) -> Option<f64> {
        self.entries.get(&id).copied()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (BenchmarkId, f64)> + '_ {
        self.entries.iter().map(|(&k, &v)| (k, v))
    }

    /// Serialize to the line format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (id, v) in &self.entries {
            out.push_str(&format!("{}\t{v:.17e}\n", id.name()));
        }
        out
    }

    /// Parse the line format; unknown benchmark names are an error.
    pub fn from_text(text: &str) -> Result<Self, SuiteError> {
        let mut store = BaselineStore::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, value) = line.split_once('\t').ok_or_else(|| {
                SuiteError::Io(format!("baseline line {} has no tab separator", lineno + 1))
            })?;
            let id = BenchmarkId::ALL
                .into_iter()
                .find(|id| id.name() == name)
                .ok_or_else(|| SuiteError::Io(format!("unknown benchmark '{name}'")))?;
            let v: f64 = value
                .trim()
                .parse()
                .map_err(|e| SuiteError::Io(format!("bad value for {name}: {e}")))?;
            if !(v.is_finite() && v > 0.0) {
                return Err(SuiteError::Io(format!("non-positive baseline for {name}")));
            }
            store.entries.insert(id, v);
        }
        Ok(store)
    }

    /// Write to a file.
    pub fn save(&self, path: &Path) -> Result<(), SuiteError> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_text().as_bytes())?;
        Ok(())
    }

    /// Read from a file.
    pub fn load(path: &Path) -> Result<Self, SuiteError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_text(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jubench_core::BenchmarkId as B;

    #[test]
    fn text_round_trip() {
        let mut store = BaselineStore::new();
        store.set(B::Arbor, 497.07);
        store.set(B::Juqcs, 17.12);
        let text = store.to_text();
        let back = BaselineStore::from_text(&text).unwrap();
        assert_eq!(back, store);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# accepted after the 2026-06 maintenance\n\nArbor\t4.970700000e2\n";
        let store = BaselineStore::from_text(text).unwrap();
        assert_eq!(store.get(B::Arbor), Some(497.07));
    }

    #[test]
    fn unknown_benchmark_is_rejected() {
        assert!(BaselineStore::from_text("NotABenchmark\t1.0\n").is_err());
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(BaselineStore::from_text("Arbor 497\n").is_err(), "no tab");
        assert!(BaselineStore::from_text("Arbor\t-3\n").is_err(), "negative");
        assert!(BaselineStore::from_text("Arbor\tNaN\n").is_err(), "nan");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("jubench-baselines");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test-baselines.tsv");
        let mut store = BaselineStore::new();
        store.set(B::Hpl, 123.456);
        store.save(&path).unwrap();
        let back = BaselineStore::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, store);
    }
}
