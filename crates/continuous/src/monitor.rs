//! The monitoring loop: measure, compare against baselines, classify.

use std::collections::{BTreeMap, BTreeSet};

use jubench_core::{Benchmark, BenchmarkId, Registry, RunConfig};
use jubench_faults::FaultPlan;

use crate::baseline::BaselineStore;

/// Classification of one benchmark in a continuous-benchmarking pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CheckStatus {
    /// Within tolerance of the baseline.
    Ok,
    /// Slower than baseline × (1 + tolerance) — the degradation the
    /// monitoring exists to catch.
    Regressed,
    /// Faster than baseline × (1 − tolerance) — also worth flagging (the
    /// system changed, or the baseline is stale).
    Improved,
    /// No baseline recorded for this benchmark.
    MissingBaseline,
    /// The benchmark failed to run or verify.
    Failed,
    /// Slower than tolerance allows, but the run was under an active fault
    /// plan that touches this benchmark — an outlier to attribute to the
    /// injected fault, not a regression to page anyone about.
    FaultSuspect,
}

/// Where a compared number came from: the metric and the run
/// configuration that produced it. Regression triage starts with
/// reproducing the measurement; this is the recipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricProvenance {
    /// The [`jubench_core::RunOutcome`] field compared.
    pub metric: &'static str,
    /// Seed of the monitoring run.
    pub seed: u64,
    /// Node count of the monitoring run (`None` when the comparison was
    /// made from a bare measurement map without registry access).
    pub nodes: Option<u32>,
}

impl MetricProvenance {
    /// Compact render for report tables, e.g. `seed 193 @ 8n`.
    pub fn label(&self) -> String {
        match self.nodes {
            Some(n) => format!("seed {} @ {}n", self.seed, n),
            None => format!("seed {}", self.seed),
        }
    }
}

/// One row of a [`RegressionReport`].
#[derive(Debug, Clone)]
pub struct CheckEntry {
    pub id: BenchmarkId,
    pub baseline_s: Option<f64>,
    pub measured_s: Option<f64>,
    pub status: CheckStatus,
    /// How the measured value was obtained.
    pub provenance: MetricProvenance,
}

/// The outcome of one monitoring pass.
#[derive(Debug, Clone, Default)]
pub struct RegressionReport {
    pub entries: Vec<CheckEntry>,
}

impl RegressionReport {
    /// True when no benchmark regressed or failed.
    pub fn healthy(&self) -> bool {
        !self
            .entries
            .iter()
            .any(|e| matches!(e.status, CheckStatus::Regressed | CheckStatus::Failed))
    }

    pub fn regressions(&self) -> Vec<BenchmarkId> {
        self.entries
            .iter()
            .filter(|e| e.status == CheckStatus::Regressed)
            .map(|e| e.id)
            .collect()
    }

    /// Benchmarks that ran slow under an active fault plan — outliers
    /// attributed to injected faults rather than regressions.
    pub fn fault_suspects(&self) -> Vec<BenchmarkId> {
        self.entries
            .iter()
            .filter(|e| e.status == CheckStatus::FaultSuspect)
            .map(|e| e.id)
            .collect()
    }

    /// Render the concise status table the operators would read.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "| benchmark        | baseline[s] | measured[s] | status    | run            |\n\
             |------------------|-------------|-------------|-----------|----------------|\n",
        );
        for e in &self.entries {
            let fmt = |v: Option<f64>| v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "| {:<16} | {:>11} | {:>11} | {:<9} | {:<14} |\n",
                e.id.name(),
                fmt(e.baseline_s),
                fmt(e.measured_s),
                match e.status {
                    CheckStatus::Ok => "ok",
                    CheckStatus::Regressed => "REGRESSED",
                    CheckStatus::Improved => "improved",
                    CheckStatus::MissingBaseline => "no-base",
                    CheckStatus::Failed => "FAILED",
                    CheckStatus::FaultSuspect => "fault?",
                },
                e.provenance.label()
            ));
        }
        out
    }
}

/// The continuous-benchmarking driver.
#[derive(Debug, Clone, Copy)]
pub struct Monitor {
    /// Relative deviation from the baseline that still counts as OK
    /// (runtimes on real systems jitter; the virtual times here are
    /// deterministic, so any deviation indicates a model/system change).
    pub tolerance: f64,
    /// Seed of the monitoring runs.
    pub seed: u64,
}

impl Default for Monitor {
    fn default() -> Self {
        Monitor {
            tolerance: 0.05,
            seed: 0xC1,
        }
    }
}

/// The benchmarks a fault plan can touch: every monitored id when the
/// plan carries any fault (the whole simulated runtime shares its links
/// and nodes), none under an empty plan. Feed the result to
/// [`Monitor::compare_with_faults`].
pub fn fault_affected(plan: &FaultPlan, ids: &[BenchmarkId]) -> BTreeSet<BenchmarkId> {
    if plan.is_empty() {
        BTreeSet::new()
    } else {
        ids.iter().copied().collect()
    }
}

/// A valid small node count for monitoring runs of `bench`.
fn monitor_nodes(bench: &dyn Benchmark) -> Option<u32> {
    let preferred = match bench.meta().id {
        BenchmarkId::Ior => 65,
        BenchmarkId::Stream | BenchmarkId::Amber => 1,
        _ => bench.reference_nodes().min(16),
    };
    (1..=preferred)
        .rev()
        .find(|&n| bench.validate_nodes(n).is_ok())
}

impl Monitor {
    /// Measure the given benchmarks (virtual runtimes); failures yield no
    /// entry in the map.
    pub fn measure(
        &self,
        registry: &Registry,
        ids: &[BenchmarkId],
    ) -> BTreeMap<BenchmarkId, Option<f64>> {
        let mut out = BTreeMap::new();
        for &id in ids {
            let measured = registry.get(id).and_then(|bench| {
                let nodes = monitor_nodes(bench)?;
                let cfg = RunConfig {
                    seed: self.seed,
                    ..RunConfig::test(nodes)
                };
                match bench.run(&cfg) {
                    Ok(res) if res.verification.passed() => Some(res.virtual_time_s),
                    _ => None,
                }
            });
            out.insert(id, measured);
        }
        out
    }

    /// Record fresh baselines for the given benchmarks.
    pub fn record_baselines(&self, registry: &Registry, ids: &[BenchmarkId]) -> BaselineStore {
        let mut store = BaselineStore::new();
        for (id, measured) in self.measure(registry, ids) {
            if let Some(v) = measured {
                store.set(id, v);
            }
        }
        store
    }

    /// Compare fresh measurements against the baselines.
    pub fn compare(
        &self,
        baselines: &BaselineStore,
        measurements: &BTreeMap<BenchmarkId, Option<f64>>,
    ) -> RegressionReport {
        let mut entries = Vec::new();
        for (&id, &measured) in measurements {
            let baseline = baselines.get(id);
            let status = match (baseline, measured) {
                (_, None) => CheckStatus::Failed,
                (None, Some(_)) => CheckStatus::MissingBaseline,
                (Some(b), Some(m)) => {
                    if m > b * (1.0 + self.tolerance) {
                        CheckStatus::Regressed
                    } else if m < b * (1.0 - self.tolerance) {
                        CheckStatus::Improved
                    } else {
                        CheckStatus::Ok
                    }
                }
            };
            entries.push(CheckEntry {
                id,
                baseline_s: baseline,
                measured_s: measured,
                status,
                provenance: MetricProvenance {
                    metric: "virtual_time_s",
                    seed: self.seed,
                    nodes: None,
                },
            });
        }
        RegressionReport { entries }
    }

    /// Like [`Monitor::compare`], but when the monitoring pass ran under an
    /// active fault plan, entries that would be flagged `Regressed` and
    /// belong to `fault_affected` are classified
    /// [`CheckStatus::FaultSuspect`] instead: the slowdown is an outlier
    /// attributed to the injected fault, not a system regression, and
    /// [`RegressionReport::healthy`] stays true for it.
    pub fn compare_with_faults(
        &self,
        baselines: &BaselineStore,
        measurements: &BTreeMap<BenchmarkId, Option<f64>>,
        fault_affected: &BTreeSet<BenchmarkId>,
    ) -> RegressionReport {
        let mut report = self.compare(baselines, measurements);
        for e in &mut report.entries {
            if e.status == CheckStatus::Regressed && fault_affected.contains(&e.id) {
                e.status = CheckStatus::FaultSuspect;
            }
        }
        report
    }

    /// The full pass: measure the benchmarks present in the baseline store
    /// and compare. With registry access the entries carry full
    /// provenance, including the node count of each monitoring run.
    pub fn check(&self, registry: &Registry, baselines: &BaselineStore) -> RegressionReport {
        let ids: Vec<BenchmarkId> = baselines.iter().map(|(id, _)| id).collect();
        let measurements = self.measure(registry, &ids);
        let mut report = self.compare(baselines, &measurements);
        for e in &mut report.entries {
            e.provenance.nodes = registry.get(e.id).and_then(monitor_nodes);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jubench_core::BenchmarkId as B;

    #[test]
    fn classification_logic() {
        let monitor = Monitor {
            tolerance: 0.10,
            seed: 1,
        };
        let mut baselines = BaselineStore::new();
        baselines.set(B::Arbor, 100.0);
        baselines.set(B::Hpl, 50.0);
        baselines.set(B::NekRs, 20.0);
        let mut measurements = BTreeMap::new();
        measurements.insert(B::Arbor, Some(125.0)); // +25 % → regressed
        measurements.insert(B::Hpl, Some(52.0)); // +4 % → ok
        measurements.insert(B::NekRs, Some(15.0)); // −25 % → improved
        measurements.insert(B::Stream, Some(1.0)); // no baseline
        measurements.insert(B::Juqcs, None); // failed
        let report = monitor.compare(&baselines, &measurements);
        let status = |id: B| report.entries.iter().find(|e| e.id == id).unwrap().status;
        assert_eq!(status(B::Arbor), CheckStatus::Regressed);
        assert_eq!(status(B::Hpl), CheckStatus::Ok);
        assert_eq!(status(B::NekRs), CheckStatus::Improved);
        assert_eq!(status(B::Stream), CheckStatus::MissingBaseline);
        assert_eq!(status(B::Juqcs), CheckStatus::Failed);
        assert!(!report.healthy());
        assert_eq!(report.regressions(), vec![B::Arbor]);
        let rendered = report.render();
        assert!(rendered.contains("REGRESSED") && rendered.contains("no-base"));
        assert!(rendered.contains("seed 1"), "provenance column present");
    }

    #[test]
    fn compare_stamps_metric_provenance() {
        let monitor = Monitor {
            tolerance: 0.05,
            seed: 7,
        };
        let mut baselines = BaselineStore::new();
        baselines.set(B::Arbor, 10.0);
        let mut measurements = BTreeMap::new();
        measurements.insert(B::Arbor, Some(10.0));
        let report = monitor.compare(&baselines, &measurements);
        let p = report.entries[0].provenance;
        assert_eq!(p.metric, "virtual_time_s");
        assert_eq!(p.seed, 7);
        assert_eq!(p.nodes, None);
        assert_eq!(p.label(), "seed 7");
        let full = MetricProvenance {
            nodes: Some(8),
            ..p
        };
        assert_eq!(full.label(), "seed 7 @ 8n");
    }

    #[test]
    fn fault_plan_demotes_regressions_to_suspects() {
        let monitor = Monitor {
            tolerance: 0.10,
            seed: 1,
        };
        let mut baselines = BaselineStore::new();
        baselines.set(B::Arbor, 100.0);
        baselines.set(B::Hpl, 50.0);
        let mut measurements = BTreeMap::new();
        measurements.insert(B::Arbor, Some(150.0)); // slow, fault-affected
        measurements.insert(B::Hpl, Some(75.0)); // slow, NOT fault-affected
        let plan = FaultPlan::new(9).with_slow_node(0, 4.0);
        let affected = fault_affected(&plan, &[B::Arbor]);
        let report = monitor.compare_with_faults(&baselines, &measurements, &affected);
        let status = |id: B| report.entries.iter().find(|e| e.id == id).unwrap().status;
        assert_eq!(status(B::Arbor), CheckStatus::FaultSuspect);
        assert_eq!(
            status(B::Hpl),
            CheckStatus::Regressed,
            "real regression kept"
        );
        assert_eq!(report.fault_suspects(), vec![B::Arbor]);
        assert_eq!(report.regressions(), vec![B::Hpl]);
        assert!(
            !report.healthy(),
            "the genuine regression still fails the pass"
        );
        assert!(report.render().contains("fault?"));
    }

    #[test]
    fn fault_suspects_alone_keep_the_pass_healthy() {
        let monitor = Monitor::default();
        let mut baselines = BaselineStore::new();
        baselines.set(B::Arbor, 100.0);
        let mut measurements = BTreeMap::new();
        measurements.insert(B::Arbor, Some(400.0));
        let plan = FaultPlan::new(9).with_degraded_link(0, 5, 20.0);
        let affected = fault_affected(&plan, &[B::Arbor]);
        let report = monitor.compare_with_faults(&baselines, &measurements, &affected);
        assert!(report.healthy());
        assert!(report.regressions().is_empty());
        assert_eq!(report.fault_suspects(), vec![B::Arbor]);
    }

    #[test]
    fn empty_plan_affects_nothing() {
        let affected = fault_affected(&FaultPlan::new(0), &[B::Arbor, B::Hpl]);
        assert!(affected.is_empty(), "empty plan cannot excuse a regression");
    }

    #[test]
    fn healthy_when_everything_matches() {
        let monitor = Monitor::default();
        let mut baselines = BaselineStore::new();
        baselines.set(B::Arbor, 100.0);
        let mut measurements = BTreeMap::new();
        measurements.insert(B::Arbor, Some(100.0));
        assert!(monitor.compare(&baselines, &measurements).healthy());
    }
}
