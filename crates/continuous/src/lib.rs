//! # jubench-continuous
//!
//! Continuous Benchmarking — the paper's stated future work (§VI):
//!
//! > "Running the suite at regular intervals (e.g., after maintenances),
//! > we will ensure that the system does not see performance degradation
//! > over its lifetime or after updates."
//!
//! This crate provides the pieces: a durable [`BaselineStore`] of accepted
//! reference results, a [`Monitor`] that re-measures the suite and
//! compares against the baselines with per-benchmark tolerances, and a
//! [`RegressionReport`] that classifies each benchmark as OK, regressed,
//! improved, or missing.

pub mod baseline;
pub mod monitor;

pub use baseline::BaselineStore;
pub use monitor::{CheckEntry, CheckStatus, MetricProvenance, Monitor, RegressionReport};
