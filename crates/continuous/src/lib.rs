//! # jubench-continuous
//!
//! Continuous Benchmarking — the paper's stated future work (§VI):
//!
//! > "Running the suite at regular intervals (e.g., after maintenances),
//! > we will ensure that the system does not see performance degradation
//! > over its lifetime or after updates."
//!
//! This crate provides the pieces: a durable [`BaselineStore`] of accepted
//! reference results, a [`Monitor`] that re-measures the suite and
//! compares against the baselines with per-benchmark tolerances, and a
//! [`RegressionReport`] that classifies each benchmark as OK, regressed,
//! improved, or missing.
//!
//! When a pass runs under an injected [`jubench_faults::FaultPlan`]
//! (maintenance drills, resilience exercises), feed
//! [`monitor::fault_affected`] into [`Monitor::compare_with_faults`]:
//! slow results on fault-touched benchmarks are classified
//! [`CheckStatus::FaultSuspect`] — outliers attributed to the fault —
//! rather than regressions, so the drill does not page anyone.

pub mod baseline;
pub mod monitor;

pub use baseline::BaselineStore;
pub use monitor::{
    fault_affected, CheckEntry, CheckStatus, MetricProvenance, Monitor, RegressionReport,
};
