//! The distributed Lennard-Jones molecular-dynamics engine.
//!
//! Particles live in a periodic cubic box slab-decomposed along x. Each
//! step: exchange ghost particles within the cutoff of the slab faces,
//! compute shifted-LJ forces from a cell list, integrate with velocity
//! Verlet, and migrate particles that crossed slab boundaries.

use jubench_ckpt::{open, seal, Checkpointable, CkptError, SnapshotReader, SnapshotWriter};
use jubench_kernels::rank_rng;
use jubench_simmpi::{Comm, ReduceOp, SimError};

/// A point particle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    pub pos: [f64; 3],
    pub vel: [f64; 3],
    pub force: [f64; 3],
}

/// The rank-local slab of a periodic LJ system (σ = ε = m = 1 units).
pub struct MdSystem {
    /// Cubic box side.
    pub box_l: f64,
    /// Slab bounds along x.
    pub x_lo: f64,
    pub x_hi: f64,
    pub cutoff: f64,
    pub dt: f64,
    pub atoms: Vec<Atom>,
    /// Ghost positions from the neighbouring slabs (within cutoff).
    ghosts: Vec<[f64; 3]>,
    /// Shifted-potential energy offset so U(r_c) = 0.
    u_shift: f64,
}

impl MdSystem {
    /// Place `per_rank` atoms per rank on a perturbed lattice inside each
    /// slab, with small random velocities (zeroed net momentum per rank).
    pub fn lattice(comm: &Comm, box_l: f64, per_rank: usize, cutoff: f64, seed: u64) -> Self {
        let p = comm.size() as f64;
        let r = comm.rank() as f64;
        let x_lo = box_l * r / p;
        let x_hi = box_l * (r + 1.0) / p;
        let mut rng = rank_rng(seed, comm.rank());
        // Lattice spacing ~1.2 σ inside the slab.
        let slab_w = x_hi - x_lo;
        let nx = ((per_rank as f64).powf(1.0 / 3.0) * (slab_w / box_l).powf(2.0 / 3.0))
            .ceil()
            .max(1.0) as usize;
        let nyz = ((per_rank as f64 / nx as f64).sqrt()).ceil().max(1.0) as usize;
        let mut atoms = Vec::with_capacity(per_rank);
        'fill: for ix in 0..nx {
            for iy in 0..nyz {
                for iz in 0..nyz {
                    if atoms.len() >= per_rank {
                        break 'fill;
                    }
                    let jitter = 0.05;
                    let pos = [
                        x_lo + (ix as f64 + 0.5) / nx as f64 * slab_w
                            + rng.gen_range(-jitter..jitter),
                        (iy as f64 + 0.5) / nyz as f64 * box_l + rng.gen_range(-jitter..jitter),
                        (iz as f64 + 0.5) / nyz as f64 * box_l + rng.gen_range(-jitter..jitter),
                    ];
                    let vel = [
                        rng.gen_range(-0.1..0.1),
                        rng.gen_range(-0.1..0.1),
                        rng.gen_range(-0.1..0.1),
                    ];
                    atoms.push(Atom {
                        pos,
                        vel,
                        force: [0.0; 3],
                    });
                }
            }
        }
        // Zero the net momentum so the box does not drift.
        let n = atoms.len() as f64;
        let mut mean = [0.0; 3];
        for a in &atoms {
            for d in 0..3 {
                mean[d] += a.vel[d] / n;
            }
        }
        for a in atoms.iter_mut() {
            for d in 0..3 {
                a.vel[d] -= mean[d];
            }
        }
        let sr6 = (1.0 / cutoff).powi(6);
        MdSystem {
            box_l,
            x_lo,
            x_hi,
            cutoff,
            dt: 1.0e-3,
            atoms,
            ghosts: Vec::new(),
            u_shift: 4.0 * (sr6 * sr6 - sr6),
        }
    }

    /// Minimum-image displacement.
    #[inline]
    fn min_image(&self, mut d: f64) -> f64 {
        let l = self.box_l;
        if d > l / 2.0 {
            d -= l;
        } else if d < -l / 2.0 {
            d += l;
        }
        d
    }

    /// Exchange boundary-layer positions with the slab neighbours so every
    /// rank sees all atoms within the cutoff of its slab.
    pub fn exchange_ghosts(&mut self, comm: &mut Comm) -> Result<(), SimError> {
        self.ghosts.clear();
        let pack = |atoms: &[Atom], pred: &dyn Fn(&Atom) -> bool| -> Vec<f64> {
            let mut buf = Vec::new();
            for a in atoms.iter().filter(|a| pred(a)) {
                buf.extend_from_slice(&a.pos);
            }
            buf
        };
        let cut = self.cutoff;
        let (lo, hi, l) = (self.x_lo, self.x_hi, self.box_l);
        // Periodic distance to a slab face.
        let near_lo = move |a: &Atom| {
            let d = (a.pos[0] - lo).rem_euclid(l);
            d < cut || d > l - cut
        };
        let near_hi = move |a: &Atom| {
            let d = (hi - a.pos[0]).rem_euclid(l);
            d < cut || d > l - cut
        };
        if comm.size() == 1 {
            // Single slab: ghosts are its own periodic images; minimum
            // image convention already handles them in force().
            return Ok(());
        }
        let right = (comm.rank() + 1) % comm.size();
        let left = (comm.rank() + comm.size() - 1) % comm.size();
        let to_right = pack(&self.atoms, &near_hi);
        let to_left = pack(&self.atoms, &near_lo);
        comm.send_f64(right, &to_right)?;
        comm.send_f64(left, &to_left)?;
        for buf in [comm.recv_f64(left)?, comm.recv_f64(right)?] {
            for chunk in buf.chunks_exact(3) {
                self.ghosts.push([chunk[0], chunk[1], chunk[2]]);
            }
        }
        Ok(())
    }

    /// Shifted Lennard-Jones pair force magnitude / r and energy at
    /// squared distance `r2` (zero beyond the cutoff).
    #[inline]
    fn lj(&self, r2: f64) -> (f64, f64) {
        if r2 >= self.cutoff * self.cutoff {
            return (0.0, 0.0);
        }
        let inv_r2 = 1.0 / r2;
        let sr6 = inv_r2 * inv_r2 * inv_r2;
        let sr12 = sr6 * sr6;
        // F/r = 24(2·r⁻¹²−r⁻⁶)/r²; U = 4(r⁻¹²−r⁻⁶) − U(r_c).
        let f_over_r = 24.0 * (2.0 * sr12 - sr6) * inv_r2;
        let u = 4.0 * (sr12 - sr6) - self.u_shift;
        (f_over_r, u)
    }

    /// Compute forces and return the local potential energy (pairs counted
    /// half for local-local, half for local-ghost by symmetry).
    pub fn compute_forces(&mut self) -> f64 {
        for a in self.atoms.iter_mut() {
            a.force = [0.0; 3];
        }
        let n = self.atoms.len();
        let mut potential = 0.0;
        // Local-local pairs.
        for i in 0..n {
            for j in i + 1..n {
                let (pi, pj) = (self.atoms[i].pos, self.atoms[j].pos);
                let d = [
                    self.min_image(pi[0] - pj[0]),
                    self.min_image(pi[1] - pj[1]),
                    self.min_image(pi[2] - pj[2]),
                ];
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                let (f_over_r, u) = self.lj(r2);
                if f_over_r != 0.0 {
                    potential += u;
                    for k in 0..3 {
                        let f = f_over_r * d[k];
                        self.atoms[i].force[k] += f;
                        self.atoms[j].force[k] -= f;
                    }
                }
            }
        }
        // Local-ghost pairs (half the pair energy is owned locally).
        let ghosts = std::mem::take(&mut self.ghosts);
        for i in 0..n {
            let pi = self.atoms[i].pos;
            for g in &ghosts {
                let d = [
                    self.min_image(pi[0] - g[0]),
                    self.min_image(pi[1] - g[1]),
                    self.min_image(pi[2] - g[2]),
                ];
                let r2 = d[0] * d[0] + d[1] * d[1] + d[2] * d[2];
                if r2 < 1e-12 {
                    continue;
                }
                let (f_over_r, u) = self.lj(r2);
                if f_over_r != 0.0 {
                    potential += 0.5 * u;
                    for k in 0..3 {
                        self.atoms[i].force[k] += f_over_r * d[k];
                    }
                }
            }
        }
        self.ghosts = ghosts;
        potential
    }

    /// Local kinetic energy.
    pub fn kinetic(&self) -> f64 {
        0.5 * self
            .atoms
            .iter()
            .map(|a| a.vel.iter().map(|v| v * v).sum::<f64>())
            .sum::<f64>()
    }

    /// One velocity-Verlet step; returns the local potential energy.
    pub fn step(&mut self, comm: &mut Comm) -> Result<f64, SimError> {
        let dt = self.dt;
        // Half kick + drift using the current forces.
        for a in self.atoms.iter_mut() {
            for d in 0..3 {
                a.vel[d] += 0.5 * dt * a.force[d];
                a.pos[d] += dt * a.vel[d];
            }
            for d in 0..3 {
                a.pos[d] = a.pos[d].rem_euclid(self.box_l);
            }
        }
        self.migrate(comm)?;
        self.exchange_ghosts(comm)?;
        let potential = self.compute_forces();
        // Second half kick.
        for a in self.atoms.iter_mut() {
            for d in 0..3 {
                a.vel[d] += 0.5 * dt * a.force[d];
            }
        }
        Ok(potential)
    }

    /// Initialize forces before the first step.
    pub fn prepare(&mut self, comm: &mut Comm) -> Result<f64, SimError> {
        self.exchange_ghosts(comm)?;
        Ok(self.compute_forces())
    }

    /// Ship atoms that left the slab to the owning neighbour.
    fn migrate(&mut self, comm: &mut Comm) -> Result<(), SimError> {
        if comm.size() == 1 {
            return Ok(());
        }
        let p = comm.size() as f64;
        let slab = self.box_l / p;
        let right = (comm.rank() + 1) % comm.size();
        let left = (comm.rank() + comm.size() - 1) % comm.size();
        let mut staying = Vec::with_capacity(self.atoms.len());
        let mut to_left = Vec::new();
        let mut to_right = Vec::new();
        for a in self.atoms.drain(..) {
            let owner = ((a.pos[0] / slab) as u32).min(comm.size() - 1);
            if owner == comm.rank() {
                staying.push(a);
            } else if owner == right {
                to_right.extend_from_slice(&a.pos);
                to_right.extend_from_slice(&a.vel);
                to_right.extend_from_slice(&a.force);
            } else {
                to_left.extend_from_slice(&a.pos);
                to_left.extend_from_slice(&a.vel);
                to_left.extend_from_slice(&a.force);
            }
        }
        comm.send_f64(left, &to_left)?;
        comm.send_f64(right, &to_right)?;
        for buf in [comm.recv_f64(left)?, comm.recv_f64(right)?] {
            for c in buf.chunks_exact(9) {
                staying.push(Atom {
                    pos: [c[0], c[1], c[2]],
                    vel: [c[3], c[4], c[5]],
                    force: [c[6], c[7], c[8]],
                });
            }
        }
        self.atoms = staying;
        Ok(())
    }

    /// Global energies (kinetic, potential).
    pub fn global_energies(
        &self,
        comm: &mut Comm,
        potential_local: f64,
    ) -> Result<(f64, f64), SimError> {
        let ke = comm.allreduce_scalar(self.kinetic(), ReduceOp::Sum)?;
        let pe = comm.allreduce_scalar(potential_local, ReduceOp::Sum)?;
        Ok((ke, pe))
    }
}

impl Checkpointable for MdSystem {
    fn kind(&self) -> &'static str {
        "md-system"
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_f64(self.box_l);
        w.put_f64(self.x_lo);
        w.put_f64(self.x_hi);
        w.put_f64(self.cutoff);
        w.put_f64(self.dt);
        w.put_f64(self.u_shift);
        w.put_usize(self.atoms.len());
        for a in &self.atoms {
            for v in a.pos.iter().chain(&a.vel).chain(&a.force) {
                w.put_f64(*v);
            }
        }
        // Ghosts are re-derivable by exchange_ghosts, but a snapshot
        // taken between exchange and integration must resume mid-step
        // bit-exactly, so they travel too.
        w.put_usize(self.ghosts.len());
        for g in &self.ghosts {
            for v in g {
                w.put_f64(*v);
            }
        }
        seal(self.kind(), &w.finish())
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let payload = open("md-system", bytes)?;
        let mut r = SnapshotReader::new(&payload);
        let box_l = r.get_f64("box_l")?;
        let x_lo = r.get_f64("x_lo")?;
        let x_hi = r.get_f64("x_hi")?;
        let cutoff = r.get_f64("cutoff")?;
        let dt = r.get_f64("dt")?;
        let u_shift = r.get_f64("u_shift")?;
        let n = r.get_usize("atom count")?;
        let mut atoms = Vec::with_capacity(n);
        for _ in 0..n {
            let mut vals = [0.0; 9];
            for v in vals.iter_mut() {
                *v = r.get_f64("atom field")?;
            }
            atoms.push(Atom {
                pos: [vals[0], vals[1], vals[2]],
                vel: [vals[3], vals[4], vals[5]],
                force: [vals[6], vals[7], vals[8]],
            });
        }
        let n_ghosts = r.get_usize("ghost count")?;
        let mut ghosts = Vec::with_capacity(n_ghosts);
        for _ in 0..n_ghosts {
            let mut g = [0.0; 3];
            for v in g.iter_mut() {
                *v = r.get_f64("ghost coordinate")?;
            }
            ghosts.push(g);
        }
        r.expect_end()?;
        *self = MdSystem {
            box_l,
            x_lo,
            x_hi,
            cutoff,
            dt,
            atoms,
            ghosts,
            u_shift,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jubench_cluster::Machine;
    use jubench_simmpi::World;

    fn world(nodes: u32) -> World {
        World::new(Machine::juwels_booster().partition(nodes))
    }

    #[test]
    fn two_isolated_atoms_feel_newtons_third_law() {
        let w = World::per_node(Machine::juwels_booster().partition(1));
        let results = w.run(|comm| {
            let mut sys = MdSystem::lattice(comm, 20.0, 1, 2.5, 1);
            sys.atoms.clear();
            sys.atoms.push(Atom {
                pos: [5.0, 5.0, 5.0],
                vel: [0.0; 3],
                force: [0.0; 3],
            });
            sys.atoms.push(Atom {
                pos: [6.2, 5.0, 5.0],
                vel: [0.0; 3],
                force: [0.0; 3],
            });
            sys.prepare(comm).unwrap();
            (sys.atoms[0].force, sys.atoms[1].force)
        });
        let (f0, f1) = results[0].value;
        for d in 0..3 {
            assert!((f0[d] + f1[d]).abs() < 1e-12);
        }
        // r = 1.2 > 2^(1/6): attractive — atom 0 pulled towards +x.
        assert!(f0[0] > 0.0);
    }

    #[test]
    fn minimum_at_r6_of_2() {
        let w = World::per_node(Machine::juwels_booster().partition(1));
        let results = w.run(|comm| {
            let mut sys = MdSystem::lattice(comm, 20.0, 1, 3.0, 1);
            let r_min = 2.0f64.powf(1.0 / 6.0);
            sys.atoms.clear();
            sys.atoms.push(Atom {
                pos: [5.0, 5.0, 5.0],
                vel: [0.0; 3],
                force: [0.0; 3],
            });
            sys.atoms.push(Atom {
                pos: [5.0 + r_min, 5.0, 5.0],
                vel: [0.0; 3],
                force: [0.0; 3],
            });
            sys.prepare(comm).unwrap();
            sys.atoms[0].force[0].abs()
        });
        assert!(
            results[0].value < 1e-10,
            "force at the LJ minimum: {}",
            results[0].value
        );
    }

    #[test]
    fn atom_count_is_conserved() {
        let results = world(1).run(|comm| {
            let mut sys = MdSystem::lattice(comm, 8.0, 32, 1.5, 2);
            sys.prepare(comm).unwrap();
            let n0 = comm
                .allreduce_scalar(sys.atoms.len() as f64, ReduceOp::Sum)
                .unwrap();
            for _ in 0..20 {
                sys.step(comm).unwrap();
            }
            let n1 = comm
                .allreduce_scalar(sys.atoms.len() as f64, ReduceOp::Sum)
                .unwrap();
            (n0, n1)
        });
        for r in &results {
            assert_eq!(r.value.0, r.value.1);
        }
    }

    #[test]
    fn energy_is_approximately_conserved() {
        let results = world(1).run(|comm| {
            let mut sys = MdSystem::lattice(comm, 8.0, 24, 2.0, 3);
            let pe0 = sys.prepare(comm).unwrap();
            let (ke0, pe0) = sys.global_energies(comm, pe0).unwrap();
            let mut pe1 = 0.0;
            for _ in 0..100 {
                pe1 = sys.step(comm).unwrap();
            }
            let (ke1, pe1) = sys.global_energies(comm, pe1).unwrap();
            (ke0 + pe0, ke1 + pe1)
        });
        for r in &results {
            let (e0, e1) = r.value;
            let scale = e0.abs().max(1.0);
            assert!(
                (e1 - e0).abs() / scale < 0.05,
                "energy drifted from {e0} to {e1}"
            );
        }
    }

    #[test]
    fn momentum_is_conserved_on_a_single_rank() {
        let w = World::per_node(Machine::juwels_booster().partition(1));
        let results = w.run(|comm| {
            let mut sys = MdSystem::lattice(comm, 8.0, 40, 2.0, 4);
            sys.prepare(comm).unwrap();
            for _ in 0..50 {
                sys.step(comm).unwrap();
            }
            let mut mom = [0.0; 3];
            for a in &sys.atoms {
                for d in 0..3 {
                    mom[d] += a.vel[d];
                }
            }
            mom
        });
        for d in 0..3 {
            assert!(
                results[0].value[d].abs() < 1e-9,
                "momentum {:?}",
                results[0].value
            );
        }
    }

    #[test]
    fn killed_and_resumed_md_run_is_bit_identical() {
        // Single-rank world: the snapshot carries the full simulation
        // state, so kill-after-10-steps + resume must match an
        // uninterrupted 20-step run atom for atom, bit for bit.
        let w = World::per_node(Machine::juwels_booster().partition(1));
        let reference = w.run(|comm| {
            let mut sys = MdSystem::lattice(comm, 8.0, 24, 2.0, 9);
            sys.prepare(comm).unwrap();
            for _ in 0..20 {
                sys.step(comm).unwrap();
            }
            sys.snapshot()
        });
        let w = World::per_node(Machine::juwels_booster().partition(1));
        let resumed = w.run(|comm| {
            let mut sys = MdSystem::lattice(comm, 8.0, 24, 2.0, 9);
            sys.prepare(comm).unwrap();
            for _ in 0..10 {
                sys.step(comm).unwrap();
            }
            let snap = sys.snapshot();
            // "Kill": rebuild from a different seed, then restore.
            let mut sys = MdSystem::lattice(comm, 8.0, 24, 2.0, 1234);
            sys.restore(&snap).unwrap();
            for _ in 0..10 {
                sys.step(comm).unwrap();
            }
            sys.snapshot()
        });
        assert_eq!(resumed[0].value, reference[0].value);
    }

    #[test]
    fn corrupt_md_snapshot_is_a_typed_error() {
        let w = World::per_node(Machine::juwels_booster().partition(1));
        w.run(|comm| {
            let mut sys = MdSystem::lattice(comm, 8.0, 8, 2.0, 11);
            sys.prepare(comm).unwrap();
            let good = sys.snapshot();
            for cut in [0, 3, good.len() / 2, good.len() - 1] {
                assert!(sys.restore(&good[..cut]).is_err());
            }
            let mut bad = good.clone();
            *bad.last_mut().unwrap() ^= 0xFF;
            assert!(sys.restore(&bad).is_err());
            sys.restore(&good).unwrap();
        });
    }

    #[test]
    fn ghost_exchange_sees_cross_slab_pairs() {
        // Two atoms straddling a slab boundary must attract each other
        // even though they live on different ranks.
        let results = world(1).run(|comm| {
            let mut sys = MdSystem::lattice(comm, 8.0, 1, 2.5, 5);
            sys.atoms.clear();
            // Slabs are [0,2),[2,4),[4,6),[6,8) for 4 ranks.
            if comm.rank() == 0 {
                sys.atoms.push(Atom {
                    pos: [1.9, 4.0, 4.0],
                    vel: [0.0; 3],
                    force: [0.0; 3],
                });
            } else if comm.rank() == 1 {
                sys.atoms.push(Atom {
                    pos: [2.3, 4.0, 4.0],
                    vel: [0.0; 3],
                    force: [0.0; 3],
                });
            }
            sys.prepare(comm).unwrap();
            sys.atoms.first().map(|a| a.force[0])
        });
        // r = 0.4 — strongly repulsive: rank 0's atom pushed in −x.
        assert!(results[0].value.unwrap() < -1.0);
        assert!(results[1].value.unwrap() > 1.0);
    }
}
