//! The GROMACS and Amber benchmark definitions.

use jubench_apps_common::{outcome, real_exec_world, AppModel, Phase};
use jubench_cluster::{balanced_dims3, CommPattern, Machine, Work};
use jubench_core::{
    suite_meta, Benchmark, BenchmarkId, BenchmarkMeta, RunConfig, RunOutcome, SuiteError,
    VerificationOutcome,
};
use jubench_simmpi::ReduceOp;

use crate::md::MdSystem;

/// GROMACS sub-benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GromacsCase {
    /// UEABS test case A: GluCl ion channel in a membrane (~150k atoms),
    /// 3 reference nodes.
    A,
    /// UEABS test case C: 27 STMV replicas, ≈ 28,000,000 atoms, 128
    /// reference nodes; "allows testing the scalability of system-supplied
    /// FFT libraries".
    C,
}

impl GromacsCase {
    pub fn atoms(self) -> u64 {
        match self {
            GromacsCase::A => 150_000,
            GromacsCase::C => 27 * 1_067_095, // 27 STMV replicas
        }
    }

    pub fn reference_nodes(self) -> u32 {
        match self {
            GromacsCase::A => 3,
            GromacsCase::C => 128,
        }
    }
}

/// Modeled MD steps of the benchmark workload.
const MD_STEPS: u32 = 10_000;

/// Per-atom per-step costs: neighbour-list short-range forces dominate.
const FLOPS_PER_ATOM: f64 = 3_000.0;
const BYTES_PER_ATOM: f64 = 800.0;
/// PME mesh points per atom (~1 grid point per atom is typical).
const PME_MESH_PER_ATOM: f64 = 1.0;

fn md_model(machine: Machine, atoms: u64, with_pme: bool) -> AppModel {
    let devices = machine.devices() as f64;
    let atoms_per_gpu = atoms as f64 / devices;
    let rank_dims = balanced_dims3(machine.devices());
    // Short-range halo: the skin layer of the per-rank sub-box, roughly
    // atoms_per_gpu^(2/3) atoms of 48 B each per face.
    let face_atoms = atoms_per_gpu.powf(2.0 / 3.0).max(1.0);
    let halo = CommPattern::Halo3d {
        rank_dims,
        bytes_per_face: [(face_atoms * 48.0) as u64; 3],
    };
    let mut model = AppModel::new(machine, MD_STEPS)
        .with_efficiencies(0.5, 0.75)
        .with_phase(Phase::compute(
            "short-range forces",
            Work::new(
                FLOPS_PER_ATOM * atoms_per_gpu,
                BYTES_PER_ATOM * atoms_per_gpu,
            ),
        ))
        .with_phase(Phase::comm("halo exchange", halo))
        .with_overlap(0.6);
    if with_pme {
        // PME reciprocal part: distributed 3D FFT — the transpose is an
        // all-to-all of the local mesh slice.
        let mesh_per_gpu = atoms_per_gpu * PME_MESH_PER_ATOM;
        let fft_flops = 5.0 * mesh_per_gpu * (mesh_per_gpu.max(2.0)).log2();
        model = model
            .with_phase(Phase::compute(
                "pme fft",
                Work::new(fft_flops, 16.0 * mesh_per_gpu),
            ))
            .with_phase(Phase::comm(
                "fft transpose",
                CommPattern::AllToAll {
                    bytes_per_pair: ((mesh_per_gpu * 16.0) / devices).max(64.0) as u64,
                },
            ));
    }
    model
}

/// Run the real MD engine on a small system and verify energy
/// conservation.
fn real_md_execution(
    machine: Machine,
    seed: u64,
    scale: jubench_core::WorkloadScale,
) -> (VerificationOutcome, Vec<(String, f64)>) {
    let world = real_exec_world(machine);
    let steps = jubench_apps_common::scale_steps(scale, 60, 300, 1000);
    let results = world.run(move |comm| {
        // The slab decomposition ghosts only the two neighbouring slabs,
        // so each slab must stay at least one cutoff wide: weak-scale the
        // box with the rank count (8.0 keeps ≤4-rank worlds as dense as
        // the original fixed box).
        let box_l = (2.0 * comm.size() as f64).max(8.0);
        let mut sys = MdSystem::lattice(comm, box_l, 16, 2.0, seed);
        let pe = sys.prepare(comm).unwrap();
        let (ke0, pe0) = sys.global_energies(comm, pe).unwrap();
        let mut pe_last = pe;
        for _ in 0..steps {
            pe_last = sys.step(comm).unwrap();
        }
        let (ke1, pe1) = sys.global_energies(comm, pe_last).unwrap();
        let atoms = comm
            .allreduce_scalar(sys.atoms.len() as f64, ReduceOp::Sum)
            .unwrap();
        (ke0 + pe0, ke1 + pe1, atoms)
    });
    let (e0, e1, atoms) = results[0].value;
    let drift = (e1 - e0).abs() / e0.abs().max(1.0);
    let verification = VerificationOutcome::tolerance(drift, 0.05);
    (
        verification,
        vec![
            ("energy_drift".into(), drift),
            ("real_exec_atoms".into(), atoms),
            ("total_energy".into(), e1),
        ],
    )
}

/// The GROMACS benchmark.
pub struct Gromacs {
    pub case: GromacsCase,
}

impl Gromacs {
    pub fn case_a() -> Self {
        Gromacs {
            case: GromacsCase::A,
        }
    }

    pub fn case_c() -> Self {
        Gromacs {
            case: GromacsCase::C,
        }
    }
}

impl Benchmark for Gromacs {
    fn meta(&self) -> BenchmarkMeta {
        suite_meta()
            .into_iter()
            .find(|m| m.id == BenchmarkId::Gromacs)
            .unwrap()
    }

    fn reference_nodes(&self) -> u32 {
        self.case.reference_nodes()
    }

    fn run(&self, cfg: &RunConfig) -> Result<RunOutcome, SuiteError> {
        self.validate_nodes(cfg.nodes)?;
        let machine = cfg.machine();
        let timing = md_model(machine, self.case.atoms(), true).timing();
        let (verification, mut metrics) = real_md_execution(machine, cfg.seed, cfg.scale);
        metrics.push(("atoms".into(), self.case.atoms() as f64));
        Ok(outcome(timing, verification, metrics))
    }
}

/// The Amber benchmark: STMV on a single node, "not intended to scale
/// beyond a single node".
pub struct Amber;

impl Amber {
    pub const ATOMS: u64 = 1_067_095;
}

impl Benchmark for Amber {
    fn meta(&self) -> BenchmarkMeta {
        suite_meta()
            .into_iter()
            .find(|m| m.id == BenchmarkId::Amber)
            .unwrap()
    }

    fn validate_nodes(&self, nodes: u32) -> Result<(), SuiteError> {
        if nodes != 1 {
            return Err(SuiteError::InvalidNodeCount {
                benchmark: "Amber",
                nodes,
                reason: "Amber is mainly optimized for single GPU calculations and is not \
                         intended to scale beyond a single node"
                    .into(),
            });
        }
        Ok(())
    }

    fn run(&self, cfg: &RunConfig) -> Result<RunOutcome, SuiteError> {
        self.validate_nodes(cfg.nodes)?;
        let machine = cfg.machine();
        let timing = md_model(machine, Self::ATOMS, true).timing();
        let (verification, mut metrics) = real_md_execution(machine, cfg.seed, cfg.scale);
        metrics.push(("atoms".into(), Self::ATOMS as f64));
        Ok(outcome(timing, verification, metrics))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gromacs_case_a_runs_on_3_nodes() {
        let out = Gromacs::case_a().run(&RunConfig::test(3)).unwrap();
        assert!(out.verification.passed());
        assert_eq!(out.metric("atoms"), Some(150_000.0));
        assert_eq!(Gromacs::case_a().reference_nodes(), 3);
    }

    #[test]
    fn gromacs_case_c_has_28m_atoms() {
        // "27 replicas of the STMV with about 28 000 000 atoms".
        let atoms = GromacsCase::C.atoms();
        assert!((27_000_000..30_000_000).contains(&atoms), "atoms {atoms}");
        assert_eq!(Gromacs::case_c().reference_nodes(), 128);
    }

    #[test]
    fn gromacs_energy_conservation_verified() {
        let out = Gromacs::case_a().run(&RunConfig::test(3)).unwrap();
        let drift = out.metric("energy_drift").unwrap();
        assert!(drift < 0.05, "drift {drift}");
    }

    #[test]
    fn gromacs_strong_scaling_case_c() {
        // Fig. 2: runtime falls with node count around the 128-node
        // reference.
        let series: Vec<f64> = [64u32, 128, 192, 256]
            .iter()
            .map(|&n| {
                Gromacs::case_c()
                    .run(&RunConfig::test(n))
                    .unwrap()
                    .virtual_time_s
            })
            .collect();
        assert!(series.windows(2).all(|w| w[1] < w[0]), "{series:?}");
        // The FFT all-to-all erodes scaling: 2× nodes gives < 2× speedup.
        let speedup = series[1] / series[3];
        assert!(speedup < 2.0 && speedup > 1.05, "128→256 speedup {speedup}");
    }

    #[test]
    fn pme_alltoall_becomes_relatively_more_expensive_at_scale() {
        let frac = |nodes: u32| {
            let out = Gromacs::case_c().run(&RunConfig::test(nodes)).unwrap();
            out.comm_time_s / out.virtual_time_s
        };
        assert!(frac(256) > frac(16), "comm fraction must grow with scale");
    }

    #[test]
    fn amber_only_runs_on_one_node() {
        assert!(Amber.run(&RunConfig::test(1)).is_ok());
        let err = Amber.run(&RunConfig::test(2)).unwrap_err();
        assert!(matches!(err, SuiteError::InvalidNodeCount { nodes: 2, .. }));
    }

    #[test]
    fn amber_atom_count_is_stmv() {
        assert_eq!(Amber::ATOMS, 1_067_095);
        let out = Amber.run(&RunConfig::test(1)).unwrap();
        assert_eq!(out.metric("atoms"), Some(1_067_095.0));
        assert!(out.verification.passed());
    }

    #[test]
    fn metas() {
        assert_eq!(Gromacs::case_a().meta().id, BenchmarkId::Gromacs);
        assert_eq!(Amber.meta().id, BenchmarkId::Amber);
        assert!(!Amber.meta().used_in_procurement);
    }
}
