//! # jubench-apps-md
//!
//! Proxies for the molecular-dynamics benchmarks:
//!
//! - **GROMACS** (§IV-A1a): "integrates Newton's equations of motion for
//!   systems with hundreds to millions of particles". Two sub-benchmarks
//!   from the UEABS: test case A (GluCl ion channel, 3 reference nodes)
//!   and test case C (27 replicas of the STMV virus, ≈ 28,000,000 atoms,
//!   128 reference nodes, stressing "the scalability of system-supplied
//!   FFT libraries" through the PME long-range part).
//! - **Amber** (prepared but not used): the STMV case with 1,067,095
//!   atoms, "mainly optimized for single GPU calculations and not intended
//!   to scale beyond a single node".
//!
//! The engine is a real distributed Lennard-Jones MD code: cell-list
//! neighbour search, velocity-Verlet integration, slab domain
//! decomposition with ghost-particle exchange and migration; the PME
//! reciprocal-space part enters the performance model as the distributed
//! 3D-FFT transpose (all-to-all) it is on the real machine.

pub mod bench;
pub mod md;

pub use bench::{Amber, Gromacs, GromacsCase};
pub use md::MdSystem;
