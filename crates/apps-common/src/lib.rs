//! # jubench-apps-common
//!
//! Shared plumbing for the 16 application-benchmark proxies.
//!
//! Every proxy follows the same two-track design:
//!
//! 1. **Real execution**: the app's genuine distributed kernel runs through
//!    the simulated MPI runtime on a small partition (threads exchanging
//!    real data), which produces the *verified result* and the FOM-relevant
//!    metrics.
//! 2. **Analytic model**: the same iteration is described as per-rank
//!    roofline [`Work`] plus [`CommPattern`]s and evaluated on the full
//!    requested partition (up to the 936 JUWELS Booster nodes and beyond),
//!    which produces the *virtual* compute/communication times the scaling
//!    studies plot. Both tracks share one network and roofline model, so
//!    they agree where they overlap.

use jubench_cluster::{pattern_time, CommPattern, Machine, NetModel, Placement, Roofline, Work};
use jubench_core::{Fom, RunOutcome, VerificationOutcome, WorkloadScale};
use jubench_simmpi::World;

/// One named phase of an application iteration (e.g. "ion channels",
/// "cable equation", "halo exchange").
#[derive(Debug, Clone)]
pub struct Phase {
    pub name: &'static str,
    /// Per-rank, per-iteration device work.
    pub work: Work,
    /// Per-iteration communication.
    pub patterns: Vec<CommPattern>,
}

impl Phase {
    pub fn compute(name: &'static str, work: Work) -> Self {
        Phase {
            name,
            work,
            patterns: Vec::new(),
        }
    }

    pub fn comm(name: &'static str, pattern: CommPattern) -> Self {
        Phase {
            name,
            work: Work::ZERO,
            patterns: vec![pattern],
        }
    }
}

/// The analytic performance model of an application run.
#[derive(Debug, Clone)]
pub struct AppModel {
    pub placement: Placement,
    pub net: NetModel,
    pub device: Roofline,
    pub iterations: u32,
    pub phases: Vec<Phase>,
    /// Fraction of the communication time hidden behind computation
    /// (0 = fully exposed, 1 = fully overlapped — Arbor's spike exchange
    /// "hiding communication completely").
    pub comm_overlap: f64,
}

/// The evaluated virtual timing of an [`AppModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelTiming {
    pub compute_s: f64,
    pub comm_s: f64,
    /// Exposed (non-overlapped) communication.
    pub exposed_comm_s: f64,
    /// Total virtual makespan: compute + exposed communication.
    pub total_s: f64,
}

impl AppModel {
    pub fn new(machine: Machine, iterations: u32) -> Self {
        AppModel {
            placement: Placement::per_gpu(machine),
            net: machine.net,
            device: Roofline::new(machine.node.gpu),
            iterations,
            phases: Vec::new(),
            comm_overlap: 0.0,
        }
    }

    /// CPU-style model: one rank per node, with the node's CPU complex as
    /// the roofline device.
    pub fn per_node(machine: Machine, iterations: u32) -> Self {
        AppModel {
            placement: Placement::per_node(machine),
            device: Roofline::new(jubench_cluster::GpuSpec::epyc_rome_node()),
            ..AppModel::new(machine, iterations)
        }
    }

    /// Override the roofline device.
    pub fn with_device(mut self, device: Roofline) -> Self {
        self.device = device;
        self
    }

    pub fn with_phase(mut self, phase: Phase) -> Self {
        self.phases.push(phase);
        self
    }

    pub fn with_overlap(mut self, overlap: f64) -> Self {
        assert!((0.0..=1.0).contains(&overlap));
        self.comm_overlap = overlap;
        self
    }

    pub fn with_efficiencies(mut self, flop: f64, bw: f64) -> Self {
        self.device = self.device.with_efficiencies(flop, bw);
        self
    }

    /// Per-iteration phase timings `(name, compute_s, comm_s)`, for the
    /// profile breakdowns the paper quotes (e.g. Arbor's 52 % ion channels
    /// / 33 % cable equation).
    pub fn phase_profile(&self) -> Vec<(&'static str, f64, f64)> {
        self.phases
            .iter()
            .map(|p| {
                let comp = self.device.time(p.work);
                let comm: f64 = p
                    .patterns
                    .iter()
                    .map(|&pat| pattern_time(pat, &self.placement, &self.net))
                    .sum();
                (p.name, comp, comm)
            })
            .collect()
    }

    /// Evaluate the model's virtual timing over all iterations.
    pub fn timing(&self) -> ModelTiming {
        let mut compute = 0.0;
        let mut comm = 0.0;
        for (_, c, m) in self.phase_profile() {
            compute += c;
            comm += m;
        }
        compute *= self.iterations as f64;
        comm *= self.iterations as f64;
        // Overlapped communication hides behind compute, but can never
        // reduce the makespan below the larger of the two.
        let hidden = (comm * self.comm_overlap).min(compute);
        let exposed = comm - hidden;
        ModelTiming {
            compute_s: compute,
            comm_s: comm,
            exposed_comm_s: exposed,
            total_s: compute + exposed,
        }
    }
}

/// How large the *really executed* partition may be: the real execution
/// spawns one dedicated OS thread per rank (via
/// [`jubench_pool::run_dedicated`]), so it is capped at the pool crate's
/// workspace-wide spawn policy while the analytic model covers the full
/// partition.
pub const MAX_REAL_RANKS: u32 = jubench_pool::MAX_DEDICATED_THREADS;

/// A machine partition for the real execution: the requested machine if it
/// is small enough, otherwise the largest prefix whose rank count stays
/// within [`MAX_REAL_RANKS`].
pub fn real_exec_machine(machine: Machine) -> Machine {
    let rpn = machine.node.gpus_per_node;
    let max_nodes = (MAX_REAL_RANKS / rpn).max(1);
    machine.partition(machine.nodes.min(max_nodes))
}

/// A world for the real execution track.
pub fn real_exec_world(machine: Machine) -> World {
    World::new(real_exec_machine(machine))
}

/// A per-node world for the real execution track of CPU codes.
pub fn real_exec_world_per_node(machine: Machine) -> World {
    let m = machine.partition(machine.nodes.min(MAX_REAL_RANKS));
    World::per_node(m)
}

/// Assemble a [`RunOutcome`] from the model timing plus the real
/// execution's verification and metrics. The time-based FOM is the virtual
/// makespan (the paper's time metric for the modeled workload on the
/// modeled machine).
pub fn outcome(
    timing: ModelTiming,
    verification: VerificationOutcome,
    metrics: Vec<(String, f64)>,
) -> RunOutcome {
    RunOutcome {
        fom: Fom::RuntimeSeconds(timing.total_s),
        virtual_time_s: timing.total_s,
        compute_time_s: timing.compute_s,
        comm_time_s: timing.exposed_comm_s,
        verification,
        metrics,
    }
}

/// Scale factor applied to proxy problem sizes per workload scale.
pub fn scale_steps(scale: WorkloadScale, test: u32, bench: u32, paper: u32) -> u32 {
    match scale {
        WorkloadScale::Test => test,
        WorkloadScale::Bench => bench,
        WorkloadScale::Paper => paper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jubench_cluster::Machine;

    fn machine(n: u32) -> Machine {
        Machine::juwels_booster().partition(n)
    }

    #[test]
    fn model_accumulates_phases_and_iterations() {
        let m = AppModel::new(machine(2), 10)
            .with_phase(Phase::compute("a", Work::new(9.7e12 * 0.7, 0.0)))
            .with_phase(Phase::comm("x", CommPattern::AllReduce { bytes: 8 }));
        let t = m.timing();
        assert!((t.compute_s - 10.0).abs() < 1e-9);
        assert!(t.comm_s > 0.0);
        assert_eq!(t.total_s, t.compute_s + t.exposed_comm_s);
    }

    #[test]
    fn full_overlap_hides_comm_up_to_compute() {
        let m = AppModel::new(machine(2), 1)
            .with_phase(Phase::compute("c", Work::new(9.7e12 * 0.7, 0.0)))
            .with_phase(Phase::comm(
                "x",
                CommPattern::AllGather {
                    bytes_per_rank: 1 << 20,
                },
            ))
            .with_overlap(1.0);
        let t = m.timing();
        assert!(t.comm_s > 0.0);
        assert_eq!(t.exposed_comm_s, 0.0);
        assert_eq!(t.total_s, t.compute_s);
    }

    #[test]
    fn overlap_cannot_hide_more_than_compute() {
        // Tiny compute, huge comm, full overlap: exposed = comm - compute.
        let m = AppModel::new(machine(8), 1)
            .with_phase(Phase::compute("c", Work::new(1e6, 0.0)))
            .with_phase(Phase::comm(
                "x",
                CommPattern::AllGather {
                    bytes_per_rank: 1 << 24,
                },
            ))
            .with_overlap(1.0);
        let t = m.timing();
        assert!(t.exposed_comm_s > 0.0);
        assert!((t.exposed_comm_s - (t.comm_s - t.compute_s)).abs() < 1e-12);
    }

    #[test]
    fn real_exec_machine_is_capped() {
        assert_eq!(real_exec_machine(machine(2)).nodes, 2);
        assert_eq!(real_exec_machine(machine(642)).nodes, 4); // 16 ranks
        assert_eq!(real_exec_world(machine(936)).ranks(), 16);
    }

    #[test]
    fn outcome_carries_model_time_as_fom() {
        let t = ModelTiming {
            compute_s: 3.0,
            comm_s: 2.0,
            exposed_comm_s: 1.0,
            total_s: 4.0,
        };
        let o = outcome(t, VerificationOutcome::Exact { checked_values: 1 }, vec![]);
        assert_eq!(o.fom, Fom::RuntimeSeconds(4.0));
        assert_eq!(o.compute_time_s, 3.0);
        assert_eq!(o.comm_time_s, 1.0);
    }

    #[test]
    fn scale_steps_selects() {
        use jubench_core::WorkloadScale as S;
        assert_eq!(scale_steps(S::Test, 1, 2, 3), 1);
        assert_eq!(scale_steps(S::Bench, 1, 2, 3), 2);
        assert_eq!(scale_steps(S::Paper, 1, 2, 3), 3);
    }

    #[test]
    fn phase_profile_names_costs() {
        let m = AppModel::new(machine(2), 1)
            .with_phase(Phase::compute("ion channels", Work::new(1e12, 0.0)))
            .with_phase(Phase::compute("cable equation", Work::new(5e11, 0.0)));
        let prof = m.phase_profile();
        assert_eq!(prof.len(), 2);
        assert_eq!(prof[0].0, "ion channels");
        assert!(prof[0].1 > prof[1].1);
    }
}
