//! Event sources: producers that feed timestamped events into a queue.
//!
//! A source owns a (possibly lazy, possibly infinite) stream of events
//! in non-decreasing key order. Engines either drain a bounded source
//! into an [`EventQueue`](crate::EventQueue) up front, or keep the
//! source beside the queue and [`feed_until`](EventSource::feed_until)
//! as the horizon moves — the pattern for unbounded trains like
//! checkpoint write times or serve slice windows.

use crate::{EventKey, EventQueue};

/// A stream of events in non-decreasing [`EventKey`] order.
pub trait EventSource {
    type Payload;

    /// Key of the next event without consuming it; `None` when the
    /// source is exhausted.
    fn peek_key(&self) -> Option<EventKey>;

    /// Consume and return the next event.
    fn next_event(&mut self) -> Option<(EventKey, Self::Payload)>;

    /// Drain every event with `time <= until_s` into `queue`,
    /// returning how many moved. Keys are re-stamped with the queue's
    /// own sequence numbers (sources are independent; the queue owns
    /// the global tie-break).
    fn feed_until(&mut self, queue: &mut EventQueue<Self::Payload>, until_s: f64) -> usize {
        let mut fed = 0;
        while let Some(key) = self.peek_key() {
            if key.time > until_s {
                break;
            }
            let (key, payload) = self.next_event().expect("peeked event exists");
            queue.push(key.time, key.class, key.rank, payload);
            fed += 1;
        }
        fed
    }
}

/// Every [`EventQueue`] is itself a source (its pop order is key
/// order), so queues compose with other sources uniformly.
impl<P> EventSource for EventQueue<P> {
    type Payload = P;

    fn peek_key(&self) -> Option<EventKey> {
        self.peek().map(|(k, _)| *k)
    }

    fn next_event(&mut self) -> Option<(EventKey, P)> {
        self.pop().map(|e| (e.key, e.payload))
    }
}

/// Consecutive fixed-width slice windows: the unit clock of the serve
/// shards' round-robin loop. Each call to [`Self::next_end`] advances
/// the cursor one window and returns its end — the `until_s` horizon a
/// scheduler slice runs to.
///
/// The arithmetic is exactly `cursor + width` per window (no
/// accumulated multiply), matching the float behaviour of the previous
/// inline computation byte-for-byte.
#[derive(Debug, Clone, Copy)]
pub struct Windows {
    cursor: f64,
    width: f64,
}

impl Windows {
    /// Windows starting at `start_s`, each `width_s` wide.
    pub fn new(start_s: f64, width_s: f64) -> Self {
        Windows {
            cursor: start_s,
            width: width_s,
        }
    }

    /// End of the current window; advances the cursor to it.
    pub fn next_end(&mut self) -> f64 {
        self.cursor += self.width;
        self.cursor
    }

    /// The cursor: end of the last window handed out.
    pub fn cursor(&self) -> f64 {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bounded arithmetic train used to exercise the trait's default
    /// `feed_until`.
    struct Train {
        next: f64,
        step: f64,
        left: u32,
        class: u8,
    }

    impl EventSource for Train {
        type Payload = u32;

        fn peek_key(&self) -> Option<EventKey> {
            (self.left > 0).then_some(EventKey {
                time: self.next,
                class: self.class,
                rank: 0,
                seq: 0,
            })
        }

        fn next_event(&mut self) -> Option<(EventKey, u32)> {
            let key = self.peek_key()?;
            self.left -= 1;
            self.next += self.step;
            Some((key, self.left))
        }
    }

    #[test]
    fn feed_until_moves_only_due_events() {
        let mut train = Train {
            next: 1.0,
            step: 1.0,
            left: 10,
            class: 3,
        };
        let mut q = EventQueue::new();
        assert_eq!(train.feed_until(&mut q, 3.5), 3);
        assert_eq!(q.len(), 3);
        assert_eq!(train.peek_key().unwrap().time, 4.0);
        let first = q.pop().unwrap();
        assert_eq!(first.key.time, 1.0);
        assert_eq!(first.key.class, 3);
    }

    #[test]
    fn queue_is_a_source() {
        let mut q = EventQueue::new();
        q.push(2.0, 0, 0, "b");
        q.push(1.0, 0, 0, "a");
        let mut out = EventQueue::new();
        assert_eq!(q.feed_until(&mut out, 1.0), 1);
        assert_eq!(out.pop().unwrap().payload, "a");
        assert_eq!(q.peek_key().unwrap().time, 2.0);
    }

    #[test]
    fn windows_advance_by_exact_addition() {
        let mut w = Windows::new(10.0, 2.5);
        assert_eq!(w.next_end(), 10.0 + 2.5);
        assert_eq!(w.next_end(), 10.0 + 2.5 + 2.5);
        assert_eq!(w.cursor(), 15.0);
    }
}
