//! The deterministic discrete-event core shared by the virtual-time
//! engines (`jubench-simmpi`, `jubench-sched`) and their event sources
//! (`jubench-faults` arrivals, `jubench-ckpt` write intervals,
//! `crates/serve` slice windows).
//!
//! A simulation that costs virtual time step-by-step pays for every
//! idle tick; one that pops the next timestamped event pays O(events).
//! The entire value of that trade rests on *determinism*: two engines
//! (or the same engine at different pool widths) must pop the exact
//! same events in the exact same order, or byte-identical artifacts —
//! the suite's reproducibility contract since PR 1 — are lost.
//!
//! # The total-order contract
//!
//! Every event carries an [`EventKey`] and keys compare as the tuple
//!
//! ```text
//! (time, class, rank, seq)
//! ```
//!
//! - `time` — virtual seconds, compared by [`f64::total_cmp`]. Only
//!   finite times are admitted ([`EventQueue::push`] asserts this), so
//!   total_cmp agrees with the usual `<` everywhere it is used.
//! - `class` — a small integer naming the event's kind. Classes are
//!   domain-owned (the scheduler's live in
//!   `jubench_sched::event_class`), numbered in the order same-instant
//!   events must be handled. This is how "crash before drain-start
//!   before drain-end at the same timestamp" is not a convention but a
//!   comparison.
//! - `rank` — the entity the event addresses (an MPI rank, a node
//!   index, a job id). Orders same-class collisions.
//! - `seq` — a monotone sequence number breaking whatever remains.
//!   [`EventQueue::push`] stamps one automatically;
//!   [`EventQueue::push_with_seq`] lets a caller impose a global
//!   numbering across several queues so that a multi-queue merge
//!   ([`MergedQueues`]) is provably equal to single-queue insertion.
//!
//! Because the key is a total order over distinct events, pop order is
//! independent of push order — the property the proptests in
//! `tests/proptests.rs` pin.
//!
//! # Stale events
//!
//! Queues here are *monotone*: there is no `remove`. An engine whose
//! state invalidates a scheduled event (a job preempted before its
//! planned finish) leaves the entry in place and filters it at pop
//! time — the classic lazy-deletion discipline. [`EventQueue::peek`]
//! exists so validity can be judged before consuming.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

mod source;

pub use source::{EventSource, Windows};

/// The total-order key of one timestamped event: compares as
/// `(time, class, rank, seq)` with `time` under [`f64::total_cmp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventKey {
    /// Virtual time of the event, in seconds. Always finite.
    pub time: f64,
    /// Domain-defined kind, numbered in same-instant handling order.
    pub class: u8,
    /// Entity the event addresses: MPI rank, node index, or job id.
    pub rank: u32,
    /// Final tie-break; unique per queue unless the caller reuses one
    /// via [`EventQueue::push_with_seq`].
    pub seq: u64,
}

impl Eq for EventKey {}

impl Ord for EventKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.class.cmp(&other.class))
            .then(self.rank.cmp(&other.rank))
            .then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for EventKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One scheduled event: a key plus whatever the engine needs to act on
/// it (a job index, a fault record, nothing at all).
#[derive(Debug, Clone)]
pub struct Event<P> {
    pub key: EventKey,
    pub payload: P,
}

/// Heap entries order by key alone — payloads never influence pop
/// order, so `P` needs no `Ord`.
struct Entry<P>(Event<P>);

impl<P> PartialEq for Entry<P> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key == other.0.key
    }
}
impl<P> Eq for Entry<P> {}
impl<P> Ord for Entry<P> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for min-first pops.
        other.0.key.cmp(&self.0.key)
    }
}
impl<P> PartialOrd for Entry<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A min-queue of timestamped events, popped in [`EventKey`] order.
///
/// Distinct keys pop in strictly increasing order regardless of push
/// order. Pushing two events with a fully identical key (possible only
/// through [`Self::push_with_seq`]) is a contract violation the queue
/// does not detect; their relative pop order is unspecified.
pub struct EventQueue<P> {
    heap: BinaryHeap<Entry<P>>,
    next_seq: u64,
}

impl<P> Default for EventQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> EventQueue<P> {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(n),
            next_seq: 0,
        }
    }

    /// Schedule an event, stamping the next queue-local sequence
    /// number. Returns the full key under which it will pop.
    ///
    /// Panics on a non-finite time: an infinite or NaN timestamp is
    /// always an engine bug (the "no more events" condition is an
    /// empty queue, never a sentinel time).
    pub fn push(&mut self, time: f64, class: u8, rank: u32, payload: P) -> EventKey {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_with_seq(time, class, rank, seq, payload)
    }

    /// Schedule an event under a caller-chosen sequence number. Used
    /// when several queues must share one global numbering so that
    /// merging them reproduces single-queue order exactly.
    pub fn push_with_seq(
        &mut self,
        time: f64,
        class: u8,
        rank: u32,
        seq: u64,
        payload: P,
    ) -> EventKey {
        assert!(
            time.is_finite(),
            "event time must be finite, got {time} (class={class}, rank={rank})"
        );
        self.next_seq = self.next_seq.max(seq + 1);
        let key = EventKey {
            time,
            class,
            rank,
            seq,
        };
        self.heap.push(Entry(Event { key, payload }));
        key
    }

    /// The key and payload that [`Self::pop`] would return, without
    /// consuming them — the hook for stale-event filtering.
    pub fn peek(&self) -> Option<(&EventKey, &P)> {
        self.heap.peek().map(|e| (&e.0.key, &e.0.payload))
    }

    pub fn pop(&mut self) -> Option<Event<P>> {
        self.heap.pop().map(|e| e.0)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<P> std::fmt::Debug for EventQueue<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

/// A k-way merge over several [`EventQueue`]s: pops the globally
/// smallest key; an exact key tie across queues (only possible with
/// caller-supplied seqs) resolves to the lowest queue index.
///
/// When the queues were filled with [`EventQueue::push_with_seq`]
/// under one global numbering, popping the merge yields the identical
/// sequence a single queue holding every event would — the equivalence
/// `tests/proptests.rs` checks. This is how independent event sources
/// (fault arrivals per rank, checkpoint write trains, serve slice
/// windows) compose without a central owner.
pub struct MergedQueues<P> {
    queues: Vec<EventQueue<P>>,
}

impl<P> Default for MergedQueues<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P> MergedQueues<P> {
    pub fn new() -> Self {
        MergedQueues { queues: Vec::new() }
    }

    pub fn from_queues(queues: Vec<EventQueue<P>>) -> Self {
        MergedQueues { queues }
    }

    /// Add a member queue, returning its index for [`Self::push_into`].
    pub fn add_queue(&mut self, queue: EventQueue<P>) -> usize {
        self.queues.push(queue);
        self.queues.len() - 1
    }

    pub fn push_into(&mut self, queue: usize, time: f64, class: u8, rank: u32, payload: P) {
        self.queues[queue].push(time, class, rank, payload);
    }

    /// Index and key of the queue holding the global minimum.
    pub fn peek(&self) -> Option<(usize, &EventKey)> {
        let mut best: Option<(usize, &EventKey)> = None;
        for (i, q) in self.queues.iter().enumerate() {
            if let Some((key, _)) = q.peek() {
                match best {
                    Some((_, bk)) if bk <= key => {}
                    _ => best = Some((i, key)),
                }
            }
        }
        best
    }

    /// Pop the globally smallest event, tagged with its queue index.
    pub fn pop(&mut self) -> Option<(usize, Event<P>)> {
        let (i, _) = self.peek()?;
        self.queues[i].pop().map(|e| (i, e))
    }

    pub fn len(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(time: f64, class: u8, rank: u32, seq: u64) -> EventKey {
        EventKey {
            time,
            class,
            rank,
            seq,
        }
    }

    #[test]
    fn keys_compare_lexicographically() {
        let base = key(1.0, 1, 1, 1);
        assert!(key(0.5, 9, 9, 9) < base, "time dominates");
        assert!(key(1.0, 0, 9, 9) < base, "class next");
        assert!(key(1.0, 1, 0, 9) < base, "rank next");
        assert!(key(1.0, 1, 1, 0) < base, "seq last");
        assert_eq!(base.cmp(&key(1.0, 1, 1, 1)), Ordering::Equal);
    }

    #[test]
    fn negative_zero_orders_below_positive_zero() {
        // total_cmp semantics: -0.0 < +0.0. Engines never rely on the
        // distinction, but the order must at least be stable.
        assert!(key(-0.0, 0, 0, 0) < key(0.0, 0, 0, 0));
    }

    #[test]
    fn pop_order_is_key_order_not_push_order() {
        let mut q = EventQueue::new();
        q.push_with_seq(2.0, 0, 0, 3, "late");
        q.push_with_seq(1.0, 1, 0, 2, "mid-class1");
        q.push_with_seq(1.0, 0, 7, 1, "mid-rank7");
        q.push_with_seq(1.0, 0, 2, 0, "mid-rank2");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, ["mid-rank2", "mid-rank7", "mid-class1", "late"]);
    }

    #[test]
    fn auto_seq_preserves_insertion_order_at_equal_keys() {
        let mut q = EventQueue::new();
        for label in ["first", "second", "third"] {
            q.push(5.0, 0, 0, label);
        }
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, ["first", "second", "third"]);
    }

    #[test]
    fn push_with_seq_keeps_auto_seq_monotone() {
        let mut q = EventQueue::new();
        q.push_with_seq(1.0, 0, 0, 10, ());
        let k = q.push(1.0, 0, 0, ());
        assert!(k.seq > 10, "auto seq advanced past the explicit one");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn infinite_time_is_rejected() {
        EventQueue::new().push(f64::INFINITY, 0, 0, ());
    }

    #[test]
    fn merge_pops_global_minimum_with_queue_index_tiebreak() {
        let mut m = MergedQueues::new();
        let a = m.add_queue(EventQueue::new());
        let b = m.add_queue(EventQueue::new());
        m.push_into(b, 1.0, 0, 0, "b1");
        m.push_into(a, 2.0, 0, 0, "a2");
        m.push_into(a, 1.5, 0, 0, "a15");
        assert_eq!(m.len(), 3);
        let order: Vec<(usize, &str)> =
            std::iter::from_fn(|| m.pop().map(|(i, e)| (i, e.payload))).collect();
        assert_eq!(order, [(b, "b1"), (a, "a15"), (a, "a2")]);
        assert!(m.is_empty());
    }
}
