//! Benchmark packaging and integrity hashes.
//!
//! §III-C/D: "PDFs generated from the benchmark descriptions are part of
//! the committed procurement documentation, including hashes of archived
//! benchmark repositories. [...] For delivery as part of the procurement
//! specification package, each benchmark repository is archived as a tar
//! file. If too large for inclusion in the Git repository, input data is
//! provided as a separate download, including a verifying hash."
//!
//! This module provides the manifest/hash layer: a deterministic archive
//! manifest over named members with an FNV-1a-64 content hash per member
//! and over the whole package, plus verification against tampering.

use std::collections::BTreeMap;

/// FNV-1a 64-bit — small, dependency-free, deterministic. (The real suite
/// uses cryptographic hashes; integrity-against-accident is what the
/// procurement workflow needs and what this provides.) Re-exported from
/// the canonical implementation in `jubench-core`.
pub use jubench_core::fnv1a64;

/// An archived benchmark package: named members with their contents.
#[derive(Debug, Clone, Default)]
pub struct Archive {
    members: BTreeMap<String, Vec<u8>>,
}

impl Archive {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a member (description, JUBE script, auxiliary script, sample
    /// results, …).
    pub fn add(&mut self, name: &str, content: impl Into<Vec<u8>>) -> &mut Self {
        self.members.insert(name.to_string(), content.into());
        self
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The package hash: over the sorted (name, content-hash) pairs, so it
    /// is independent of insertion order.
    pub fn package_hash(&self) -> u64 {
        let mut acc = Vec::new();
        for (name, content) in &self.members {
            acc.extend_from_slice(name.as_bytes());
            acc.extend_from_slice(&fnv1a64(content).to_be_bytes());
        }
        fnv1a64(&acc)
    }

    /// The committed manifest: one line per member plus the package hash —
    /// the text that goes into the procurement documentation.
    pub fn manifest(&self) -> String {
        let mut out = String::new();
        for (name, content) in &self.members {
            out.push_str(&format!("{:016x}  {}\n", fnv1a64(content), name));
        }
        out.push_str(&format!("{:016x}  PACKAGE\n", self.package_hash()));
        out
    }

    /// Verify this archive against a committed manifest. Returns the list
    /// of violations (empty = verified).
    pub fn verify(&self, manifest: &str) -> Vec<String> {
        let mut expected: BTreeMap<&str, u64> = BTreeMap::new();
        let mut package: Option<u64> = None;
        for line in manifest.lines() {
            let Some((hash, name)) = line.split_once("  ") else {
                continue;
            };
            let Ok(h) = u64::from_str_radix(hash.trim(), 16) else {
                continue;
            };
            if name == "PACKAGE" {
                package = Some(h);
            } else {
                expected.insert(name, h);
            }
        }
        let mut violations = Vec::new();
        for (name, content) in &self.members {
            match expected.remove(name.as_str()) {
                None => violations.push(format!("unexpected member '{name}'")),
                Some(h) if h != fnv1a64(content) => {
                    violations.push(format!("member '{name}' content changed"))
                }
                Some(_) => {}
            }
        }
        for (name, _) in expected {
            violations.push(format!("missing member '{name}'"));
        }
        if let Some(h) = package {
            if h != self.package_hash() {
                violations.push("package hash mismatch".into());
            }
        } else {
            violations.push("manifest lacks the package hash".into());
        }
        violations
    }
}

/// Verify a separately-downloaded input dataset against its committed
/// hash (the ICON 1.8/4.5 TB inputs pattern).
pub fn verify_download(data: &[u8], committed_hash: u64) -> bool {
    fnv1a64(data) == committed_hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Archive {
        let mut a = Archive::new();
        a.add("DESCRIPTION.md", "# nekRS benchmark\n");
        a.add("jube/benchmark.yaml", "nodes: 8\n");
        a.add("results/reference.tsv", "fom\t13.9\n");
        a
    }

    #[test]
    fn manifest_round_trip_verifies() {
        let a = sample();
        let manifest = a.manifest();
        assert_eq!(manifest.lines().count(), 4);
        assert!(a.verify(&manifest).is_empty());
    }

    #[test]
    fn tampering_is_detected() {
        let a = sample();
        let manifest = a.manifest();
        let mut tampered = sample();
        tampered.add("jube/benchmark.yaml", "nodes: 4\n"); // vendor edit!
        let violations = tampered.verify(&manifest);
        assert!(violations.iter().any(|v| v.contains("benchmark.yaml")));
        assert!(violations.iter().any(|v| v.contains("package hash")));
    }

    #[test]
    fn added_and_removed_members_are_flagged() {
        let a = sample();
        let manifest = a.manifest();
        let mut extra = sample();
        extra.add("patch.diff", "sneaky");
        assert!(extra
            .verify(&manifest)
            .iter()
            .any(|v| v.contains("unexpected member 'patch.diff'")));
        let mut missing = Archive::new();
        missing.add("DESCRIPTION.md", "# nekRS benchmark\n");
        assert!(missing
            .verify(&manifest)
            .iter()
            .any(|v| v.contains("missing member")));
    }

    #[test]
    fn package_hash_is_order_independent() {
        let mut a = Archive::new();
        a.add("b", "2").add("a", "1");
        let mut b = Archive::new();
        b.add("a", "1").add("b", "2");
        assert_eq!(a.package_hash(), b.package_hash());
    }

    #[test]
    fn download_verification() {
        let data = b"1.8 TB of R02B09 initial conditions (abridged)";
        let h = fnv1a64(data);
        assert!(verify_download(data, h));
        assert!(!verify_download(b"corrupted", h));
    }

    #[test]
    fn fnv_known_values() {
        // FNV-1a reference vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
