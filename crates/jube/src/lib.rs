//! # jubench-jube
//!
//! A workflow engine modeled after JUBE (Breuer et al.), the environment in
//! which every benchmark of the JUPITER suite is implemented (§III-B):
//!
//! > "In benchmark-specific definition files, *JUBE scripts*, parameters
//! > and execution steps (compilation, computation, data processing,
//! > verification) are defined. These are then interpreted by the JUBE
//! > runtime, resolving dependencies and eventually submitting jobs for
//! > execution [...] The various sub-benchmarks and variants are
//! > implemented by tags, which select different versions of parameter
//! > definitions. After execution, the benchmark results are presented by
//! > JUBE in a concise tabular form, including the FOM."
//!
//! The engine provides exactly these mechanisms:
//!
//! - [`ParameterSet`]: named parameters with `${name}` template
//!   substitution, tag-selected alternatives, and multi-value parameters
//!   that expand into a cartesian *parameter space* of workpackages,
//! - [`Step`]s with dependencies, executed in topological order per
//!   workpackage,
//! - [`ResultTable`]: concise tabular presentation of selected columns,
//!   including the FOM.

pub mod archive;
pub mod checkpoint;
pub mod error;
pub mod params;
pub mod platform;
pub mod step;
pub mod table;
pub mod workflow;

pub use archive::{fnv1a64, verify_download, Archive};
pub use checkpoint::{CompletedStep, WorkflowCheckpoint};
pub use error::JubeError;
pub use params::{ParameterSet, ResolvedParams};
pub use platform::Platform;
pub use step::{output1, Step, StepOutput};
pub use table::ResultTable;
pub use workflow::{Workflow, WorkpackageResult};
