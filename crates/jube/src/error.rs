//! Workflow-engine errors.

use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JubeError {
    /// A `${name}` reference could not be resolved.
    UnknownParameter { name: String, referenced_by: String },
    /// Parameter substitution did not terminate (cyclic references).
    CyclicParameters { involved: Vec<String> },
    /// A step depends on a step that does not exist.
    UnknownDependency { step: String, depends_on: String },
    /// The step graph has a cycle.
    CyclicSteps { involved: Vec<String> },
    /// A step with this name was defined twice.
    DuplicateStep { step: String },
    /// A step's action failed.
    StepFailed { step: String, message: String },
}

impl fmt::Display for JubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JubeError::UnknownParameter {
                name,
                referenced_by,
            } => {
                write!(
                    f,
                    "unknown parameter ${{{name}}} referenced by '{referenced_by}'"
                )
            }
            JubeError::CyclicParameters { involved } => {
                write!(
                    f,
                    "cyclic parameter references involving: {}",
                    involved.join(", ")
                )
            }
            JubeError::UnknownDependency { step, depends_on } => {
                write!(f, "step '{step}' depends on unknown step '{depends_on}'")
            }
            JubeError::CyclicSteps { involved } => {
                write!(
                    f,
                    "cyclic step dependencies involving: {}",
                    involved.join(", ")
                )
            }
            JubeError::DuplicateStep { step } => write!(f, "step '{step}' defined twice"),
            JubeError::StepFailed { step, message } => {
                write!(f, "step '{step}' failed: {message}")
            }
        }
    }
}

impl std::error::Error for JubeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        let e = JubeError::UnknownParameter {
            name: "nodes".into(),
            referenced_by: "tasks".into(),
        };
        assert!(e.to_string().contains("${nodes}"));
        let e = JubeError::CyclicSteps {
            involved: vec!["a".into(), "b".into()],
        };
        assert!(e.to_string().contains("a, b"));
    }
}
