//! Workflow checkpoint/resume: a store of completed step executions.
//!
//! A [`WorkflowCheckpoint`] attached via [`crate::Workflow::with_checkpoint`]
//! records every finished step run — its outputs, how many attempts it
//! took, and whether it succeeded. When the same workflow executes again
//! with the store attached (after a crash, an abort, or an explicit
//! snapshot/restore cycle), recorded steps are *not* re-executed: their
//! outputs and trace phases are replayed from the record, so the resumed
//! run's result tables and Chrome traces are byte-identical to an
//! uninterrupted run. Only steps that never completed (including the one
//! whose failure aborted the original run) execute again.

use std::collections::BTreeMap;
use std::sync::Mutex;

use jubench_ckpt::{open, seal, Checkpointable, CkptError, SnapshotReader, SnapshotWriter};

use crate::step::StepOutput;

/// One finished step execution of one workpackage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedStep {
    /// Attempts the step took (1 = first try succeeded); replayed as
    /// `attempt − 1` step-retry trace phases.
    pub attempt: u32,
    /// Whether the action eventually succeeded. `false` records a
    /// retries-exhausted step whose policy was `Continue`.
    pub succeeded: bool,
    /// The outputs as merged into the workpackage (including the
    /// `<name>.attempts` / `<name>.failed` bookkeeping keys).
    pub outputs: StepOutput,
}

/// Thread-safe store of completed `(workpackage, step)` executions —
/// the workflow engine's checkpoint state.
#[derive(Default)]
pub struct WorkflowCheckpoint {
    done: Mutex<BTreeMap<(u32, String), CompletedStep>>,
}

impl WorkflowCheckpoint {
    /// Fresh empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Completed step executions recorded so far.
    pub fn len(&self) -> usize {
        self.done.lock().unwrap().len()
    }

    /// True when nothing has completed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up the record for one step of one workpackage.
    pub fn lookup(&self, workpackage: u32, step: &str) -> Option<CompletedStep> {
        self.done
            .lock()
            .unwrap()
            .get(&(workpackage, step.to_string()))
            .cloned()
    }

    /// Record a finished step execution.
    pub fn record(&self, workpackage: u32, step: &str, done: CompletedStep) {
        self.done
            .lock()
            .unwrap()
            .insert((workpackage, step.to_string()), done);
    }
}

impl Checkpointable for WorkflowCheckpoint {
    fn kind(&self) -> &'static str {
        "jube-workflow"
    }

    fn snapshot(&self) -> Vec<u8> {
        let done = self.done.lock().unwrap();
        let mut w = SnapshotWriter::new();
        w.put_usize(done.len());
        for ((wp, step), rec) in done.iter() {
            w.put_u32(*wp);
            w.put_str(step);
            w.put_u32(rec.attempt);
            w.put_bool(rec.succeeded);
            w.put_usize(rec.outputs.len());
            for (k, v) in &rec.outputs {
                w.put_str(k);
                w.put_str(v);
            }
        }
        seal(self.kind(), &w.finish())
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let payload = open("jube-workflow", bytes)?;
        let mut r = SnapshotReader::new(&payload);
        let n = r.get_usize("completed-step count")?;
        let mut done = BTreeMap::new();
        for _ in 0..n {
            let wp = r.get_u32("workpackage")?;
            let step = r.get_str("step name")?;
            let attempt = r.get_u32("attempt count")?;
            let succeeded = r.get_bool("succeeded flag")?;
            let n_out = r.get_usize("output count")?;
            let mut outputs = StepOutput::new();
            for _ in 0..n_out {
                let k = r.get_str("output key")?;
                let v = r.get_str("output value")?;
                outputs.insert(k, v);
            }
            done.insert(
                (wp, step),
                CompletedStep {
                    attempt,
                    succeeded,
                    outputs,
                },
            );
        }
        r.expect_end()?;
        self.done = Mutex::new(done);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::output1;

    fn sample() -> WorkflowCheckpoint {
        let store = WorkflowCheckpoint::new();
        store.record(
            0,
            "execute",
            CompletedStep {
                attempt: 3,
                succeeded: true,
                outputs: output1("fom", "17"),
            },
        );
        store.record(
            1,
            "execute",
            CompletedStep {
                attempt: 2,
                succeeded: false,
                outputs: output1("execute.failed", "always down"),
            },
        );
        store
    }

    #[test]
    fn snapshot_restore_snapshot_is_byte_identity() {
        let store = sample();
        let snap = store.snapshot();
        let mut restored = WorkflowCheckpoint::new();
        restored.restore(&snap).unwrap();
        assert_eq!(restored.snapshot(), snap);
        assert_eq!(restored.len(), 2);
        assert_eq!(restored.lookup(0, "execute").unwrap().attempt, 3);
        assert!(!restored.lookup(1, "execute").unwrap().succeeded);
        assert_eq!(restored.lookup(2, "execute"), None);
    }

    #[test]
    fn corrupt_store_snapshot_errors() {
        let good = sample().snapshot();
        let mut target = WorkflowCheckpoint::new();
        for cut in 0..good.len() {
            assert!(target.restore(&good[..cut]).is_err());
        }
        let mut bad = good.clone();
        bad[20] ^= 0x40;
        assert!(target.restore(&bad).is_err());
    }
}
