//! The workflow: parameter space × dependency-ordered steps.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use jubench_trace::{EventKind, StepPhase, TraceEvent, TraceSink, WORKFLOW_NODE};

use crate::checkpoint::{CompletedStep, WorkflowCheckpoint};
use crate::error::JubeError;
use crate::params::{ParameterSet, ResolvedParams};
use crate::step::{Step, StepContext, StepOutput};

/// Emits step-lifecycle events for one workpackage. The workflow engine
/// has no virtual clock; events are stamped with a monotonic phase
/// counter (one unit per phase) so the exported timeline shows ordering
/// and the reports can count phases.
struct StepTracer<'a> {
    sink: Option<&'a dyn TraceSink>,
    workpackage: u32,
    seq: u64,
    t: f64,
}

impl<'a> StepTracer<'a> {
    fn new(sink: Option<&'a dyn TraceSink>, workpackage: u32) -> Self {
        StepTracer {
            sink,
            workpackage,
            seq: 0,
            t: 0.0,
        }
    }

    fn emit(&mut self, step: &str, phase: StepPhase) {
        if let Some(sink) = self.sink {
            let t0 = self.t;
            self.t += 1.0;
            let seq = self.seq;
            self.seq += 1;
            sink.record(TraceEvent {
                rank: self.workpackage,
                node: WORKFLOW_NODE,
                seq,
                t_start: t0,
                t_end: self.t,
                kind: EventKind::Step {
                    step: step.to_string(),
                    phase,
                    workpackage: self.workpackage,
                },
            });
        }
    }
}

/// The result of executing one workpackage (one point of the parameter
/// space): its parameters and every step's outputs.
#[derive(Debug, Clone)]
pub struct WorkpackageResult {
    pub params: ResolvedParams,
    pub outputs: BTreeMap<String, StepOutput>,
}

impl WorkpackageResult {
    /// Look up a column value: step outputs take precedence over
    /// parameters (any step may overwrite a reported value), searched in
    /// step-name order.
    pub fn value(&self, key: &str) -> Option<&str> {
        for out in self.outputs.values() {
            if let Some(v) = out.get(key) {
                return Some(v.as_str());
            }
        }
        self.params.get(key).map(|s| s.as_str())
    }
}

/// A benchmark workflow: a parameter set and a list of steps.
#[derive(Default)]
pub struct Workflow {
    pub params: ParameterSet,
    steps: Vec<Step>,
    /// Opt-in observability: step lifecycle events are recorded here.
    sink: Option<Arc<dyn TraceSink>>,
    /// Opt-in checkpoint/resume: completed steps are recorded here and
    /// replayed (not re-executed) by subsequent `execute` calls.
    checkpoint: Option<Arc<WorkflowCheckpoint>>,
}

impl Workflow {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_params(params: ParameterSet) -> Self {
        Workflow {
            params,
            ..Self::default()
        }
    }

    /// Install a trace sink: subsequent [`Workflow::execute`] calls record
    /// parameter-resolution, dependency-wait, and execute events per
    /// workpackage and step. Without a sink the hooks are no-ops.
    pub fn with_recorder(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attach a checkpoint store. Steps already recorded in the store
    /// are skipped on execution and their outputs, attempt counts, and
    /// trace phases replayed from the record, so resuming an aborted
    /// run produces result tables and traces byte-identical to an
    /// uninterrupted one. Completed steps of *this* run are recorded
    /// into the store as they finish.
    pub fn with_checkpoint(mut self, store: Arc<WorkflowCheckpoint>) -> Self {
        self.checkpoint = Some(store);
        self
    }

    /// Add a step. Names must be unique.
    pub fn add_step(&mut self, step: Step) -> &mut Self {
        self.steps.push(step);
        self
    }

    /// Topologically order the steps; errors on duplicates, unknown
    /// dependencies, and cycles.
    fn ordered_steps(&self) -> Result<Vec<&Step>, JubeError> {
        let mut names = BTreeSet::new();
        for s in &self.steps {
            if !names.insert(s.name.as_str()) {
                return Err(JubeError::DuplicateStep {
                    step: s.name.clone(),
                });
            }
        }
        for s in &self.steps {
            for d in &s.depends {
                if !names.contains(d.as_str()) {
                    return Err(JubeError::UnknownDependency {
                        step: s.name.clone(),
                        depends_on: d.clone(),
                    });
                }
            }
        }
        // Kahn's algorithm, preserving insertion order among ready steps.
        let mut remaining: Vec<&Step> = self.steps.iter().collect();
        let mut done: BTreeSet<&str> = BTreeSet::new();
        let mut order = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let ready_pos = remaining
                .iter()
                .position(|s| s.depends.iter().all(|d| done.contains(d.as_str())));
            match ready_pos {
                Some(pos) => {
                    let step = remaining.remove(pos);
                    done.insert(step.name.as_str());
                    order.push(step);
                }
                None => {
                    return Err(JubeError::CyclicSteps {
                        involved: remaining.iter().map(|s| s.name.clone()).collect(),
                    })
                }
            }
        }
        Ok(order)
    }

    /// Group the topologically ordered steps into dependency levels:
    /// `level(step) = 1 + max(level(deps))`. Steps of one level have no
    /// dependency path between each other and may run concurrently; order
    /// within a level follows the topological (insertion-preserving)
    /// order, which fixes the trace emission order.
    fn level_groups<'a>(order: &[&'a Step]) -> Vec<Vec<&'a Step>> {
        let mut level_of: BTreeMap<&str, usize> = BTreeMap::new();
        let mut groups: Vec<Vec<&'a Step>> = Vec::new();
        for step in order {
            let lvl = step
                .depends
                .iter()
                .map(|d| level_of[d.as_str()] + 1)
                .max()
                .unwrap_or(0);
            level_of.insert(step.name.as_str(), lvl);
            if groups.len() <= lvl {
                groups.resize_with(lvl + 1, Vec::new);
            }
            groups[lvl].push(step);
        }
        groups
    }

    /// Execute the workflow under the given tags: expand the parameter
    /// space, then run every workpackage through the dependency-ordered
    /// steps.
    ///
    /// Execution is parallel on the shared [`jubench_pool`] pool along
    /// two axes — workpackages are independent by construction, and steps
    /// of one dependency level run concurrently against a snapshot of the
    /// strictly-lower levels' outputs (a step must *declare* every
    /// dependency it reads; undeclared reads across a level are not
    /// ordered). Results and traces stay byte-identical for any pool
    /// size: each workpackage buffers its lifecycle events locally and
    /// the buffers are forwarded to the installed sink in workpackage
    /// order, with per-step phases emitted in level declaration order.
    pub fn execute(&self, tags: &[&str]) -> Result<Vec<WorkpackageResult>, JubeError> {
        let order = self.ordered_steps()?;
        let levels = Self::level_groups(&order);
        let points = self.params.expand(tags)?;
        let pool = jubench_pool::current();

        let per_wp = pool.par_map_indexed(points.len(), |wp| {
            self.run_workpackage(&pool, wp as u32, &points[wp], &levels)
        });

        let mut results = Vec::with_capacity(points.len());
        for (wp, (buffer, outcome)) in per_wp.into_iter().enumerate() {
            // Forward the buffered events before inspecting the outcome:
            // an aborting workpackage still records the phases it reached,
            // exactly as a live sequential emission would have.
            if let Some(sink) = self.sink.as_deref() {
                for event in buffer {
                    sink.record(event);
                }
            }
            match outcome {
                Ok(outputs) => results.push(WorkpackageResult {
                    params: points[wp].clone(),
                    outputs,
                }),
                Err(e) => return Err(e),
            }
        }
        Ok(results)
    }

    /// Run one workpackage through all dependency levels. Returns the
    /// buffered trace events (empty without an installed sink) and the
    /// step outputs, or the first in-order abort error.
    fn run_workpackage(
        &self,
        pool: &jubench_pool::ThreadPool,
        wp: u32,
        params: &ResolvedParams,
        levels: &[Vec<&Step>],
    ) -> (
        Vec<jubench_trace::TraceEvent>,
        Result<BTreeMap<String, StepOutput>, JubeError>,
    ) {
        let local = self.sink.as_ref().map(|_| jubench_trace::Recorder::new());
        let mut tracer = StepTracer::new(local.as_ref().map(|r| r as &dyn TraceSink), wp);
        tracer.emit("parameters", StepPhase::ParamsResolved);
        let mut outputs: BTreeMap<String, StepOutput> = BTreeMap::new();
        let mut aborted: Option<JubeError> = None;

        // A level-local step outcome: either replayed from the attached
        // checkpoint store, or freshly executed by the retry loop.
        enum Outcome {
            Replayed(CompletedStep),
            Fresh(u32, Result<StepOutput, JubeError>),
        }

        'levels: for level in levels {
            // Run the whole level against the outputs snapshot of the
            // lower levels; each step runs its own retry loop. Steps
            // recorded in the checkpoint store skip execution entirely.
            let attempts = pool.par_map_indexed(level.len(), |i| {
                let step = level[i];
                if let Some(store) = self.checkpoint.as_deref() {
                    if let Some(done) = store.lookup(wp, &step.name) {
                        return Outcome::Replayed(done);
                    }
                }
                let mut attempt = 0u32;
                loop {
                    attempt += 1;
                    let ctx = StepContext {
                        params,
                        outputs: &outputs,
                    };
                    match step.run(&ctx) {
                        Ok(out) => break Outcome::Fresh(attempt, Ok(out)),
                        Err(e) if attempt >= step.retry.max_attempts => {
                            break Outcome::Fresh(attempt, Err(e))
                        }
                        Err(_) => {}
                    }
                }
            });
            // Deterministic merge + emission, in level declaration order:
            // every failed attempt short of the budget is a `step-retry`
            // phase, a success an `step-execute` phase. Replayed steps
            // re-emit the phases their original execution produced.
            for (step, outcome) in level.iter().zip(attempts) {
                if !step.depends.is_empty() {
                    tracer.emit(&step.name, StepPhase::DependencyWait);
                }
                match outcome {
                    Outcome::Replayed(done) => {
                        for _ in 1..done.attempt {
                            tracer.emit(&step.name, StepPhase::Retry);
                        }
                        if done.succeeded {
                            tracer.emit(&step.name, StepPhase::Execute);
                        }
                        outputs.insert(step.name.clone(), done.outputs);
                    }
                    Outcome::Fresh(attempt, result) => {
                        for _ in 1..attempt {
                            tracer.emit(&step.name, StepPhase::Retry);
                        }
                        match result {
                            Ok(mut out) => {
                                tracer.emit(&step.name, StepPhase::Execute);
                                if step.retry.max_attempts > 1 {
                                    out.insert(
                                        format!("{}.attempts", step.name),
                                        attempt.to_string(),
                                    );
                                }
                                if let Some(store) = self.checkpoint.as_deref() {
                                    store.record(
                                        wp,
                                        &step.name,
                                        CompletedStep {
                                            attempt,
                                            succeeded: true,
                                            outputs: out.clone(),
                                        },
                                    );
                                }
                                outputs.insert(step.name.clone(), out);
                            }
                            Err(e) => match step.retry.on_exhaustion {
                                jubench_faults::OnExhaustion::Abort => {
                                    // Deliberately not recorded: the
                                    // aborting step re-executes on resume.
                                    aborted = Some(e);
                                    break 'levels;
                                }
                                jubench_faults::OnExhaustion::Continue => {
                                    // Record the failure in the result table and
                                    // keep the workpackage going: dependent steps
                                    // see an output map with only the failure keys.
                                    let mut out = StepOutput::new();
                                    out.insert(format!("{}.failed", step.name), e.to_string());
                                    out.insert(
                                        format!("{}.attempts", step.name),
                                        attempt.to_string(),
                                    );
                                    if let Some(store) = self.checkpoint.as_deref() {
                                        store.record(
                                            wp,
                                            &step.name,
                                            CompletedStep {
                                                attempt,
                                                succeeded: false,
                                                outputs: out.clone(),
                                            },
                                        );
                                    }
                                    outputs.insert(step.name.clone(), out);
                                }
                            },
                        }
                    }
                }
            }
        }

        let buffer = local.map(|r| r.take_events()).unwrap_or_default();
        match aborted {
            Some(e) => (buffer, Err(e)),
            None => (buffer, Ok(outputs)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::output1;

    fn passthrough(name: &str) -> Step {
        let n = name.to_string();
        Step::new(name, move |_| Ok(output1("ran", n.clone())))
    }

    #[test]
    fn steps_run_in_dependency_order() {
        let mut wf = Workflow::new();
        wf.params.set("x", "1");
        // Insertion order deliberately reversed.
        wf.add_step(passthrough("verify").after("execute"));
        wf.add_step(passthrough("execute").after("compile"));
        wf.add_step(passthrough("compile"));
        let order: Vec<String> = wf
            .ordered_steps()
            .unwrap()
            .iter()
            .map(|s| s.name.clone())
            .collect();
        assert_eq!(order, vec!["compile", "execute", "verify"]);
    }

    #[test]
    fn outputs_flow_to_dependents() {
        let mut wf = Workflow::new();
        wf.params.set("nodes", "8");
        wf.add_step(Step::new("compile", |_| Ok(output1("binary", "bench.x"))));
        wf.add_step(
            Step::new("execute", |ctx| {
                let bin = ctx.output("compile", "binary").unwrap();
                let nodes: u32 = ctx.param_as("nodes").unwrap();
                Ok(output1("cmdline", format!("srun -N{nodes} {bin}")))
            })
            .after("compile"),
        );
        let results = wf.execute(&[]).unwrap();
        assert_eq!(results[0].value("cmdline"), Some("srun -N8 bench.x"));
    }

    #[test]
    fn parameter_space_runs_every_workpackage() {
        let mut wf = Workflow::new();
        wf.params.set_list("nodes", ["4", "8", "16"]);
        wf.add_step(Step::new("execute", |ctx| {
            let n: u32 = ctx.param_as("nodes").unwrap();
            Ok(output1("runtime", (1000 / n).to_string()))
        }));
        let results = wf.execute(&[]).unwrap();
        assert_eq!(results.len(), 3);
        let runtimes: Vec<_> = results
            .iter()
            .map(|r| r.value("runtime").unwrap().to_string())
            .collect();
        assert_eq!(runtimes, vec!["250", "125", "62"]);
    }

    #[test]
    fn cyclic_steps_error() {
        let mut wf = Workflow::new();
        wf.add_step(passthrough("a").after("b"));
        wf.add_step(passthrough("b").after("a"));
        assert!(matches!(
            wf.execute(&[]),
            Err(JubeError::CyclicSteps { .. })
        ));
    }

    #[test]
    fn unknown_dependency_error() {
        let mut wf = Workflow::new();
        wf.add_step(passthrough("a").after("ghost"));
        assert!(matches!(
            wf.execute(&[]),
            Err(JubeError::UnknownDependency { ref depends_on, .. }) if depends_on == "ghost"
        ));
    }

    #[test]
    fn duplicate_step_error() {
        let mut wf = Workflow::new();
        wf.add_step(passthrough("a"));
        wf.add_step(passthrough("a"));
        assert!(matches!(
            wf.execute(&[]),
            Err(JubeError::DuplicateStep { .. })
        ));
    }

    #[test]
    fn failing_step_aborts_with_context() {
        let mut wf = Workflow::new();
        wf.add_step(Step::new("execute", |_| Err("out of memory".into())));
        let err = wf.execute(&[]).unwrap_err();
        assert_eq!(err.to_string(), "step 'execute' failed: out of memory");
    }

    #[test]
    fn tags_reach_the_steps() {
        let mut wf = Workflow::new();
        wf.params.set("variant", "base");
        wf.params.set_tagged("variant", "large", "L");
        wf.add_step(Step::new("execute", |ctx| {
            Ok(output1("ran_variant", ctx.param("variant").unwrap()))
        }));
        assert_eq!(
            wf.execute(&[]).unwrap()[0].value("ran_variant"),
            Some("base")
        );
        assert_eq!(
            wf.execute(&["large"]).unwrap()[0].value("ran_variant"),
            Some("L")
        );
    }

    #[test]
    fn workflow_records_step_lifecycle_events() {
        use jubench_trace::Recorder;
        let rec = Arc::new(Recorder::new());
        let mut wf = Workflow::new();
        wf.params.set_list("nodes", ["4", "8"]);
        wf.add_step(passthrough("execute"));
        wf.add_step(passthrough("verify").after("execute"));
        let wf = wf.with_recorder(rec.clone());
        wf.execute(&[]).unwrap();
        let events = rec.take_events();
        // Per workpackage: parameters + execute + (wait + execute) = 4.
        assert_eq!(events.len(), 8);
        for e in &events {
            assert_eq!(e.node, WORKFLOW_NODE);
        }
        let wp0: Vec<(String, StepPhase)> = events
            .iter()
            .filter(|e| e.rank == 0)
            .map(|e| match &e.kind {
                EventKind::Step { step, phase, .. } => (step.clone(), *phase),
                other => panic!("unexpected kind {other:?}"),
            })
            .collect();
        assert_eq!(
            wp0,
            vec![
                ("parameters".into(), StepPhase::ParamsResolved),
                ("execute".into(), StepPhase::Execute),
                ("verify".into(), StepPhase::DependencyWait),
                ("verify".into(), StepPhase::Execute),
            ]
        );
    }

    #[test]
    fn untraced_workflow_is_unchanged() {
        let mut wf = Workflow::new();
        wf.params.set("x", "1");
        wf.add_step(passthrough("execute"));
        assert_eq!(wf.execute(&[]).unwrap().len(), 1);
    }

    #[test]
    fn flaky_step_retries_to_success_and_records_attempts() {
        use jubench_faults::RetryPolicy;
        use jubench_trace::Recorder;
        use std::sync::atomic::{AtomicU32, Ordering};
        let rec = Arc::new(Recorder::new());
        let failures = Arc::new(AtomicU32::new(2)); // fail twice, then pass
        let mut wf = Workflow::new();
        wf.params.set("x", "1");
        let f = Arc::clone(&failures);
        wf.add_step(
            Step::new("execute", move |_| {
                if f.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    Err("transient node failure".into())
                } else {
                    Ok(output1("fom", "17"))
                }
            })
            .with_retry(RetryPolicy::new(5, 0.1)),
        );
        let wf = wf.with_recorder(rec.clone());
        let results = wf.execute(&[]).unwrap();
        assert_eq!(results[0].value("fom"), Some("17"));
        assert_eq!(results[0].value("execute.attempts"), Some("3"));
        let retries = rec
            .take_events()
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::Step {
                        phase: StepPhase::Retry,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(retries, 2, "one step-retry event per failed attempt");
    }

    #[test]
    fn exhausted_retries_abort_by_default() {
        use jubench_faults::RetryPolicy;
        let mut wf = Workflow::new();
        wf.add_step(
            Step::new("execute", |_| Err("always down".into()))
                .with_retry(RetryPolicy::new(3, 0.1)),
        );
        let err = wf.execute(&[]).unwrap_err();
        assert_eq!(err.to_string(), "step 'execute' failed: always down");
    }

    #[test]
    fn exhausted_retries_can_continue_and_record_the_failure() {
        use jubench_faults::RetryPolicy;
        let mut wf = Workflow::new();
        wf.add_step(
            Step::new("execute", |_| Err("always down".into()))
                .with_retry(RetryPolicy::new(2, 0.1).or_continue()),
        );
        wf.add_step(
            Step::new("verify", |ctx| {
                let failed = ctx.output("execute", "execute.failed").is_some();
                Ok(output1("saw_failure", failed))
            })
            .after("execute"),
        );
        let results = wf.execute(&[]).unwrap();
        assert_eq!(results[0].value("execute.attempts"), Some("2"));
        assert!(results[0]
            .value("execute.failed")
            .unwrap()
            .contains("always down"));
        assert_eq!(results[0].value("saw_failure"), Some("true"));
    }

    #[test]
    fn resumed_workflow_skips_completed_steps_and_matches_reference() {
        use crate::checkpoint::WorkflowCheckpoint;
        use jubench_ckpt::Checkpointable;
        use jubench_trace::Recorder;
        use std::sync::atomic::{AtomicU32, Ordering};

        // The artifact under comparison: results + trace of a run.
        let artifact = |wf: &Workflow, rec: &Recorder| -> String {
            let results = wf.execute(&[]).unwrap();
            let table: String = results
                .iter()
                .map(|r| {
                    format!(
                        "nodes={} out={}\n",
                        r.value("nodes").unwrap(),
                        r.value("out").unwrap()
                    )
                })
                .collect();
            let events: Vec<String> = rec
                .take_events()
                .iter()
                .map(|e| format!("{:?}", e))
                .collect();
            format!("{table}{}", events.join("\n"))
        };
        let build = |compile_runs: Arc<AtomicU32>, fail_once: bool| -> Workflow {
            let mut wf = Workflow::new();
            wf.params.set_list("nodes", ["2", "4"]);
            wf.add_step(Step::new("compile", move |_| {
                compile_runs.fetch_add(1, Ordering::SeqCst);
                Ok(crate::step::output1("binary", "bench.x"))
            }));
            let failed = Arc::new(AtomicU32::new(0));
            wf.add_step(
                Step::new("execute", move |ctx| {
                    if fail_once && failed.fetch_add(1, Ordering::SeqCst) == 0 {
                        Err("node died".into())
                    } else {
                        Ok(crate::step::output1(
                            "out",
                            ctx.param("nodes").unwrap().to_string(),
                        ))
                    }
                })
                .after("compile"),
            );
            wf
        };

        // Reference: uninterrupted run, no failures.
        let ref_rec = Arc::new(Recorder::new());
        let ref_runs = Arc::new(AtomicU32::new(0));
        let reference = artifact(
            &build(ref_runs.clone(), false).with_recorder(ref_rec.clone()),
            &ref_rec,
        );

        // First run dies in one workpackage's execute step; the store
        // keeps what completed.
        let store = Arc::new(WorkflowCheckpoint::new());
        let crash_runs = Arc::new(AtomicU32::new(0));
        let wf = build(crash_runs.clone(), true).with_checkpoint(store.clone());
        assert!(wf.execute(&[]).is_err());
        assert!(!store.is_empty());

        // Simulate process death: persist the store, restore into a
        // fresh one, and resume with a traced workflow.
        let snap = store.snapshot();
        let mut restored = WorkflowCheckpoint::new();
        restored.restore(&snap).unwrap();
        let res_rec = Arc::new(Recorder::new());
        let res_runs = Arc::new(AtomicU32::new(0));
        let resumed_wf = build(res_runs.clone(), false)
            .with_recorder(res_rec.clone())
            .with_checkpoint(Arc::new(restored));
        let resumed = artifact(&resumed_wf, &res_rec);

        assert_eq!(resumed, reference, "resume must be byte-identical");
        // Both compile steps were replayed, never re-run.
        assert_eq!(res_runs.load(Ordering::SeqCst), 0);
        assert_eq!(ref_runs.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn value_prefers_step_outputs_over_params() {
        let mut wf = Workflow::new();
        wf.params.set("fom", "template");
        wf.add_step(Step::new("analyse", |_| Ok(output1("fom", "42.0"))));
        let r = wf.execute(&[]).unwrap();
        assert_eq!(r[0].value("fom"), Some("42.0"));
    }
}
