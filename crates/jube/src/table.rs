//! Result tables: "After execution, the benchmark results are presented by
//! JUBE in a concise tabular form, including the FOM" (§III-B).

use crate::workflow::WorkpackageResult;

/// A tabular view over workpackage results.
#[derive(Debug, Clone, Default)]
pub struct ResultTable {
    columns: Vec<String>,
}

impl ResultTable {
    pub fn new<I, S>(columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ResultTable {
            columns: columns.into_iter().map(Into::into).collect(),
        }
    }

    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Extract the rows (missing values render as "-").
    pub fn rows(&self, results: &[WorkpackageResult]) -> Vec<Vec<String>> {
        results
            .iter()
            .map(|r| {
                self.columns
                    .iter()
                    .map(|c| r.value(c).unwrap_or("-").to_string())
                    .collect()
            })
            .collect()
    }

    /// Render an aligned text table.
    pub fn render(&self, results: &[WorkpackageResult]) -> String {
        let rows = self.rows(results);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(&widths) {
                line.push_str(&format!(" {cell:<w$} |"));
            }
            line
        };
        let mut out = String::new();
        out.push_str(&render_row(&self.columns));
        out.push('\n');
        let sep: String = widths
            .iter()
            .map(|w| format!("|{}", "-".repeat(w + 2)))
            .collect();
        out.push_str(&sep);
        out.push_str("|\n");
        for row in &rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Extract a numeric column (ignoring unparsable cells) — used to pull
    /// the FOM out of a result set.
    pub fn numeric_column(&self, results: &[WorkpackageResult], column: &str) -> Vec<f64> {
        results
            .iter()
            .filter_map(|r| r.value(column)?.parse().ok())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::{output1, Step};
    use crate::workflow::Workflow;

    fn sample_results() -> Vec<WorkpackageResult> {
        let mut wf = Workflow::new();
        wf.params.set_list("nodes", ["4", "8"]);
        wf.add_step(Step::new("execute", |ctx| {
            let n: f64 = ctx.param_as("nodes").unwrap();
            Ok(output1("fom_s", format!("{:.1}", 996.0 / n)))
        }));
        wf.execute(&[]).unwrap()
    }

    #[test]
    fn rows_extract_params_and_outputs() {
        let t = ResultTable::new(["nodes", "fom_s"]);
        let rows = t.rows(&sample_results());
        assert_eq!(rows, vec![vec!["4", "249.0"], vec!["8", "124.5"]]);
    }

    #[test]
    fn missing_columns_render_dash() {
        let t = ResultTable::new(["nodes", "ghost"]);
        let rows = t.rows(&sample_results());
        assert_eq!(rows[0][1], "-");
    }

    #[test]
    fn render_is_aligned() {
        let t = ResultTable::new(["nodes", "fom_s"]);
        let s = t.render(&sample_results());
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].contains("nodes") && lines[0].contains("fom_s"));
        assert!(lines[1].starts_with("|--"));
        // All lines have equal width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn numeric_column_parses_fom() {
        let t = ResultTable::new(["fom_s"]);
        let col = t.numeric_column(&sample_results(), "fom_s");
        assert_eq!(col, vec![249.0, 124.5]);
    }
}
