//! Workflow steps: named operations with dependencies, mirroring JUBE's
//! `<step>` elements (compilation, computation, data processing,
//! verification).

use std::collections::BTreeMap;

use jubench_faults::RetryPolicy;

use crate::error::JubeError;
use crate::params::ResolvedParams;

/// Values produced by a step, visible to dependent steps and to the result
/// table (JUBE's analyse/patterns stage).
pub type StepOutput = BTreeMap<String, String>;

/// The context a step action sees: the workpackage's resolved parameters
/// plus the outputs of all steps it depends on (transitively executed
/// before it).
pub struct StepContext<'a> {
    pub params: &'a ResolvedParams,
    pub outputs: &'a BTreeMap<String, StepOutput>,
}

impl StepContext<'_> {
    /// Look up a parameter.
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params.get(name).map(|s| s.as_str())
    }

    /// Look up a parameter and parse it.
    pub fn param_as<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        self.param(name)?.parse().ok()
    }

    /// Look up an output of an earlier step.
    pub fn output(&self, step: &str, key: &str) -> Option<&str> {
        self.outputs.get(step)?.get(key).map(|s| s.as_str())
    }
}

type Action = Box<dyn Fn(&StepContext<'_>) -> Result<StepOutput, String> + Send + Sync>;

/// A named workflow step.
pub struct Step {
    pub name: String,
    pub depends: Vec<String>,
    /// Resilience policy: how many times to run the action before giving
    /// up, and what exhaustion means. Defaults to a single attempt.
    pub retry: RetryPolicy,
    pub(crate) action: Action,
}

impl Step {
    /// Create a step with no dependencies.
    pub fn new(
        name: &str,
        action: impl Fn(&StepContext<'_>) -> Result<StepOutput, String> + Send + Sync + 'static,
    ) -> Self {
        Step {
            name: name.to_string(),
            depends: Vec::new(),
            retry: RetryPolicy::none(),
            action: Box::new(action),
        }
    }

    /// Add a dependency (JUBE's `depend` attribute).
    pub fn after(mut self, dep: &str) -> Self {
        self.depends.push(dep.to_string());
        self
    }

    /// Attach a retry policy: a failing action is re-run up to
    /// `policy.max_attempts` times. The attempt count appears in the
    /// step's outputs as `"<name>.attempts"` (result tables pick it up),
    /// and each re-run is recorded as a `step-retry` trace event.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    pub(crate) fn run(&self, ctx: &StepContext<'_>) -> Result<StepOutput, JubeError> {
        (self.action)(ctx).map_err(|message| JubeError::StepFailed {
            step: self.name.clone(),
            message,
        })
    }
}

/// Helper to build a one-entry output map.
pub fn output1(key: &str, value: impl ToString) -> StepOutput {
    let mut m = StepOutput::new();
    m.insert(key.to_string(), value.to_string());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_accessors() {
        let mut params = ResolvedParams::new();
        params.insert("nodes".into(), "8".into());
        let mut outputs = BTreeMap::new();
        outputs.insert("compile".to_string(), output1("binary", "app.x"));
        let ctx = StepContext {
            params: &params,
            outputs: &outputs,
        };
        assert_eq!(ctx.param("nodes"), Some("8"));
        assert_eq!(ctx.param_as::<u32>("nodes"), Some(8));
        assert_eq!(ctx.param_as::<u32>("missing"), None);
        assert_eq!(ctx.output("compile", "binary"), Some("app.x"));
        assert_eq!(ctx.output("compile", "nope"), None);
    }

    #[test]
    fn step_failure_maps_to_jube_error() {
        let s = Step::new("execute", |_| Err("segfault".into()));
        let params = ResolvedParams::new();
        let outputs = BTreeMap::new();
        let err = s
            .run(&StepContext {
                params: &params,
                outputs: &outputs,
            })
            .unwrap_err();
        assert!(matches!(err, JubeError::StepFailed { ref step, .. } if step == "execute"));
    }

    #[test]
    fn after_builds_dependency_list() {
        let s = Step::new("verify", |_| Ok(StepOutput::new()))
            .after("execute")
            .after("compile");
        assert_eq!(s.depends, vec!["execute", "compile"]);
    }
}
