//! Platform definitions — the `platform.xml` mechanism of §III-B: "By
//! inheriting from system-specific definition files, platform.xml, batch
//! submission templates are populated and independence of the underlying
//! system is achieved."
//!
//! A [`Platform`] is a named parameter set carrying the system-specific
//! defaults (devices per node, batch submission template, module setup); a
//! workflow inherits it, and benchmark-specific definitions override the
//! platform's where they collide.

use crate::params::ParameterSet;
use crate::workflow::Workflow;

/// A system-specific definition file.
#[derive(Debug, Clone)]
pub struct Platform {
    pub name: &'static str,
    pub params: ParameterSet,
}

impl Platform {
    /// JUWELS Booster: 4 GPUs per node, Slurm submission, one task per GPU.
    pub fn juwels_booster() -> Self {
        let mut params = ParameterSet::new();
        params.set("system", "juwels-booster");
        params.set("gpus_per_node", "4");
        params.set("tasks_per_node", "4");
        params.set("partition", "booster");
        params.set("modules", "Stages/2024 GCC CUDA");
        params.set(
            "submit_cmd",
            "sbatch --partition=${partition} --nodes=${nodes} \
             --ntasks-per-node=${tasks_per_node} --gres=gpu:${gpus_per_node} ${script}",
        );
        Platform {
            name: "juwels-booster",
            params,
        }
    }

    /// JUWELS Cluster: CPU nodes, one task per node with OpenMP threads.
    pub fn juwels_cluster() -> Self {
        let mut params = ParameterSet::new();
        params.set("system", "juwels-cluster");
        params.set("gpus_per_node", "0");
        params.set("tasks_per_node", "1");
        params.set("threads_per_task", "48");
        params.set("partition", "batch");
        params.set("modules", "Stages/2024 GCC ParaStationMPI");
        params.set(
            "submit_cmd",
            "sbatch --partition=${partition} --nodes=${nodes} \
             --ntasks-per-node=${tasks_per_node} --cpus-per-task=${threads_per_task} ${script}",
        );
        Platform {
            name: "juwels-cluster",
            params,
        }
    }

    /// A generic envisioned-system platform a vendor would fill in.
    pub fn generic(name: &'static str, gpus_per_node: u32) -> Self {
        let mut params = ParameterSet::new();
        params.set("system", name);
        params.set("gpus_per_node", gpus_per_node.to_string());
        params.set("tasks_per_node", gpus_per_node.max(1).to_string());
        params.set("partition", "default");
        params.set("modules", "");
        params.set("submit_cmd", "sbatch --nodes=${nodes} ${script}");
        Platform { name, params }
    }
}

impl Workflow {
    /// Build a workflow inheriting from a platform: the platform's
    /// definitions come first, so any benchmark-specific definition of the
    /// same parameter overrides them (JUBE's inheritance order).
    pub fn on_platform(platform: &Platform) -> Workflow {
        Workflow::with_params(platform.params.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::{output1, Step};

    #[test]
    fn batch_template_is_populated() {
        let mut wf = Workflow::on_platform(&Platform::juwels_booster());
        wf.params.set("nodes", "8");
        wf.params.set("script", "bench.job");
        wf.add_step(Step::new("submit", |ctx| {
            Ok(output1("cmd", ctx.param("submit_cmd").unwrap()))
        }));
        let results = wf.execute(&[]).unwrap();
        assert_eq!(
            results[0].value("cmd"),
            Some(
                "sbatch --partition=booster --nodes=8 --ntasks-per-node=4 \
                 --gres=gpu:4 bench.job"
            )
        );
    }

    #[test]
    fn benchmark_overrides_platform_defaults() {
        // A CPU benchmark on the Booster platform overriding the task
        // layout, as the suite's CPU codes do.
        let mut wf = Workflow::on_platform(&Platform::juwels_booster());
        wf.params.set("tasks_per_node", "1"); // later definition wins
        wf.params.set("nodes", "2");
        wf.params.set("script", "x");
        wf.add_step(Step::new("probe", |ctx| {
            Ok(output1("tpn", ctx.param("tasks_per_node").unwrap()))
        }));
        let results = wf.execute(&[]).unwrap();
        assert_eq!(results[0].value("tpn"), Some("1"));
    }

    #[test]
    fn same_workflow_runs_on_both_modules() {
        // "Independence of the underlying system": identical benchmark
        // parameters, different platforms.
        for (platform, expected_partition) in [
            (Platform::juwels_booster(), "booster"),
            (Platform::juwels_cluster(), "batch"),
        ] {
            let mut wf = Workflow::on_platform(&platform);
            wf.params.set("nodes", "4");
            wf.params.set("script", "bench.job");
            wf.add_step(Step::new("submit", |ctx| {
                Ok(output1("partition", ctx.param("partition").unwrap()))
            }));
            let results = wf.execute(&[]).unwrap();
            assert_eq!(results[0].value("partition"), Some(expected_partition));
        }
    }

    #[test]
    fn generic_platform_for_vendor_systems() {
        let p = Platform::generic("vendor-x", 8);
        let mut wf = Workflow::on_platform(&p);
        wf.params.set("nodes", "1");
        wf.params.set("script", "s");
        wf.add_step(Step::new("probe", |ctx| {
            Ok(output1("gpn", ctx.param("gpus_per_node").unwrap()))
        }));
        assert_eq!(wf.execute(&[]).unwrap()[0].value("gpn"), Some("8"));
    }
}
