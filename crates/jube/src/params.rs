//! Parameter sets: tag-selected definitions, `${name}` substitution, and
//! parameter-space expansion.

use std::collections::{BTreeMap, BTreeSet};

use crate::error::JubeError;

/// One definition of a parameter, optionally restricted to a tag.
#[derive(Debug, Clone)]
struct ParamDef {
    /// Candidate values; more than one value makes the parameter expand
    /// the parameter space (JUBE's comma-separated value lists).
    values: Vec<String>,
    /// If set, this definition only applies when the tag is active. A
    /// tagged definition overrides an untagged one.
    tag: Option<String>,
}

/// A set of parameter definitions (the `<parameterset>` of a JUBE script).
#[derive(Debug, Clone, Default)]
pub struct ParameterSet {
    defs: BTreeMap<String, Vec<ParamDef>>,
}

/// One fully resolved point of the parameter space.
pub type ResolvedParams = BTreeMap<String, String>;

impl ParameterSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Define (or append a definition for) a single-valued parameter.
    pub fn set(&mut self, name: &str, value: impl Into<String>) -> &mut Self {
        self.defs
            .entry(name.to_string())
            .or_default()
            .push(ParamDef {
                values: vec![value.into()],
                tag: None,
            });
        self
    }

    /// Define a multi-valued parameter (expands the parameter space).
    pub fn set_list<I, S>(&mut self, name: &str, values: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.defs
            .entry(name.to_string())
            .or_default()
            .push(ParamDef {
                values: values.into_iter().map(Into::into).collect(),
                tag: None,
            });
        self
    }

    /// Define a tag-restricted value that overrides the default when the
    /// tag is active (JUBE's variant selection, §III-B).
    pub fn set_tagged(&mut self, name: &str, tag: &str, value: impl Into<String>) -> &mut Self {
        self.defs
            .entry(name.to_string())
            .or_default()
            .push(ParamDef {
                values: vec![value.into()],
                tag: Some(tag.to_string()),
            });
        self
    }

    /// Names of all defined parameters.
    pub fn names(&self) -> Vec<&str> {
        self.defs.keys().map(|s| s.as_str()).collect()
    }

    /// Select the effective definition of each parameter under the active
    /// tags: a matching tagged definition wins over the untagged one; later
    /// definitions win over earlier ones.
    fn effective(&self, tags: &BTreeSet<String>) -> BTreeMap<&str, &ParamDef> {
        let mut out = BTreeMap::new();
        for (name, defs) in &self.defs {
            let mut chosen: Option<&ParamDef> = None;
            for def in defs {
                match &def.tag {
                    None => {
                        if chosen.is_none_or(|c| c.tag.is_none()) {
                            chosen = Some(def);
                        }
                    }
                    Some(t) if tags.contains(t) => chosen = Some(def),
                    Some(_) => {}
                }
            }
            if let Some(def) = chosen {
                out.insert(name.as_str(), def);
            }
        }
        out
    }

    /// Expand the parameter space (cartesian product over multi-valued
    /// parameters) and resolve `${name}` references within each point.
    pub fn expand(&self, tags: &[&str]) -> Result<Vec<ResolvedParams>, JubeError> {
        let tagset: BTreeSet<String> = tags.iter().map(|s| s.to_string()).collect();
        let effective = self.effective(&tagset);
        // Cartesian product, deterministic order (BTreeMap iteration).
        let mut points: Vec<BTreeMap<String, String>> = vec![BTreeMap::new()];
        for (name, def) in &effective {
            let mut next = Vec::with_capacity(points.len() * def.values.len());
            for point in &points {
                for v in &def.values {
                    let mut p = point.clone();
                    p.insert(name.to_string(), v.clone());
                    next.push(p);
                }
            }
            points = next;
        }
        points.into_iter().map(substitute_all).collect()
    }
}

/// Iteratively substitute `${name}` references until a fixed point,
/// detecting unknown names and cycles.
pub fn substitute_all(mut params: ResolvedParams) -> Result<ResolvedParams, JubeError> {
    // An upper bound on useful passes: each pass must resolve at least one
    // level of nesting; more passes than parameters means a cycle.
    let max_rounds = params.len() + 1;
    for _ in 0..max_rounds {
        let mut changed = false;
        let snapshot = params.clone();
        for (name, value) in params.iter_mut() {
            let new = substitute_once(value, &snapshot, name)?;
            if new != *value {
                *value = new;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // Either a genuine fixed point (no references left) or a cycle whose
    // substitution chases its own tail.
    if params.values().all(|v| !v.contains("${")) {
        return Ok(params);
    }
    let involved = params
        .iter()
        .filter(|(_, v)| v.contains("${"))
        .map(|(k, _)| k.clone())
        .collect();
    Err(JubeError::CyclicParameters { involved })
}

/// Replace every `${name}` occurrence in `value` once.
fn substitute_once(value: &str, params: &ResolvedParams, owner: &str) -> Result<String, JubeError> {
    let mut out = String::with_capacity(value.len());
    let mut rest = value;
    while let Some(start) = rest.find("${") {
        out.push_str(&rest[..start]);
        let after = &rest[start + 2..];
        let end = after.find('}').ok_or_else(|| JubeError::UnknownParameter {
            name: after.to_string(),
            referenced_by: owner.to_string(),
        })?;
        let name = &after[..end];
        let replacement = params
            .get(name)
            .ok_or_else(|| JubeError::UnknownParameter {
                name: name.to_string(),
                referenced_by: owner.to_string(),
            })?;
        out.push_str(replacement);
        rest = &after[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_values_resolve() {
        let mut ps = ParameterSet::new();
        ps.set("nodes", "8").set("gpus_per_node", "4");
        ps.set("tasks", "${nodes}x${gpus_per_node}");
        let points = ps.expand(&[]).unwrap();
        assert_eq!(points.len(), 1);
        assert_eq!(points[0]["tasks"], "8x4");
    }

    #[test]
    fn nested_references_resolve() {
        let mut ps = ParameterSet::new();
        ps.set("a", "1").set("b", "${a}2").set("c", "${b}3");
        let p = &ps.expand(&[]).unwrap()[0];
        assert_eq!(p["c"], "123");
    }

    #[test]
    fn unknown_reference_is_an_error() {
        let mut ps = ParameterSet::new();
        ps.set("a", "${missing}");
        let err = ps.expand(&[]).unwrap_err();
        assert!(matches!(err, JubeError::UnknownParameter { ref name, .. } if name == "missing"));
    }

    #[test]
    fn cycle_is_detected() {
        let mut ps = ParameterSet::new();
        ps.set("a", "${b}").set("b", "${a}");
        let err = ps.expand(&[]).unwrap_err();
        assert!(matches!(err, JubeError::CyclicParameters { .. }));
    }

    #[test]
    fn unterminated_reference_is_an_error() {
        let mut ps = ParameterSet::new();
        ps.set("a", "${oops");
        assert!(ps.expand(&[]).is_err());
    }

    #[test]
    fn value_lists_expand_the_space() {
        let mut ps = ParameterSet::new();
        ps.set_list("nodes", ["4", "8", "16"]);
        ps.set_list("variant", ["small", "large"]);
        ps.set("label", "n${nodes}-${variant}");
        let points = ps.expand(&[]).unwrap();
        assert_eq!(points.len(), 6);
        let labels: Vec<_> = points.iter().map(|p| p["label"].clone()).collect();
        assert!(labels.contains(&"n8-large".to_string()));
        assert!(labels.contains(&"n16-small".to_string()));
    }

    #[test]
    fn tags_select_variants() {
        // The JUBE pattern: R02B09 by default, R02B10 under the "r02b10"
        // tag (ICON's two sub-benchmarks).
        let mut ps = ParameterSet::new();
        ps.set("resolution", "R02B09");
        ps.set("nodes", "120");
        ps.set_tagged("resolution", "r02b10", "R02B10");
        ps.set_tagged("nodes", "r02b10", "300");
        let base = &ps.expand(&[]).unwrap()[0];
        assert_eq!(
            (base["resolution"].as_str(), base["nodes"].as_str()),
            ("R02B09", "120")
        );
        let fine = &ps.expand(&["r02b10"]).unwrap()[0];
        assert_eq!(
            (fine["resolution"].as_str(), fine["nodes"].as_str()),
            ("R02B10", "300")
        );
    }

    #[test]
    fn inactive_tags_are_ignored() {
        let mut ps = ParameterSet::new();
        ps.set("x", "default");
        ps.set_tagged("x", "special", "other");
        let p = &ps.expand(&["unrelated"]).unwrap()[0];
        assert_eq!(p["x"], "default");
    }

    #[test]
    fn tagged_only_parameter_absent_without_tag() {
        let mut ps = ParameterSet::new();
        ps.set_tagged("gpu_direct", "gpu", "1");
        assert!(!ps.expand(&[]).unwrap()[0].contains_key("gpu_direct"));
        assert_eq!(ps.expand(&["gpu"]).unwrap()[0]["gpu_direct"], "1");
    }

    #[test]
    fn later_definitions_override() {
        let mut ps = ParameterSet::new();
        ps.set("x", "1");
        ps.set("x", "2");
        assert_eq!(ps.expand(&[]).unwrap()[0]["x"], "2");
    }

    #[test]
    fn expansion_is_deterministic() {
        let mut ps = ParameterSet::new();
        ps.set_list("n", ["1", "2"]);
        ps.set_list("m", ["a", "b"]);
        let p1 = ps.expand(&[]).unwrap();
        let p2 = ps.expand(&[]).unwrap();
        assert_eq!(p1, p2);
    }
}
