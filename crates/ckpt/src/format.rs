//! The snapshot envelope and the little-endian payload serializer.

use crate::error::CkptError;
use crate::fnv1a64;

/// Leading magic of every snapshot envelope.
pub const MAGIC: [u8; 4] = *b"JBCK";

/// Envelope format version this build writes and reads.
pub const FORMAT_VERSION: u16 = 1;

/// Wrap a component payload in the versioned, checksummed envelope.
pub fn seal(kind: &str, payload: &[u8]) -> Vec<u8> {
    let started = jubench_metrics::enabled().then(std::time::Instant::now);
    let mut out = Vec::with_capacity(30 + kind.len() + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(kind.len() as u64).to_le_bytes());
    out.extend_from_slice(kind.as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    if let Some(t0) = started {
        jubench_metrics::observe("ckpt/seal_ns", t0.elapsed().as_nanos() as u64);
        jubench_metrics::counter_add("ckpt/seals", 1);
        jubench_metrics::counter_add("ckpt/snapshot_bytes", out.len() as u64);
    }
    out
}

/// Validate an envelope (magic, version, kind, lengths, checksum) and
/// return the payload bytes. Every corruption mode is a [`CkptError`].
pub fn open(kind: &str, bytes: &[u8]) -> Result<Vec<u8>, CkptError> {
    let started = jubench_metrics::enabled().then(std::time::Instant::now);
    let result = open_inner(kind, bytes);
    if let Some(t0) = started {
        jubench_metrics::observe("ckpt/open_ns", t0.elapsed().as_nanos() as u64);
        jubench_metrics::counter_add("ckpt/opens", 1);
        if result.is_err() {
            jubench_metrics::counter_add("ckpt/open_errors", 1);
        }
    }
    result
}

fn open_inner(kind: &str, bytes: &[u8]) -> Result<Vec<u8>, CkptError> {
    let need = |what: &'static str, needed: usize, have: usize| CkptError::Truncated {
        what,
        needed,
        have,
    };
    if bytes.len() < 4 {
        return Err(need("magic", 4, bytes.len()));
    }
    if bytes[..4] != MAGIC {
        return Err(CkptError::BadMagic);
    }
    if bytes.len() < 6 {
        return Err(need("version", 2, bytes.len() - 4));
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(CkptError::UnsupportedVersion { found: version });
    }
    if bytes.len() < 14 {
        return Err(need("kind length", 8, bytes.len() - 6));
    }
    let kind_len = u64::from_le_bytes(bytes[6..14].try_into().unwrap()) as usize;
    if bytes.len() < 14 + kind_len {
        return Err(need("kind string", kind_len, bytes.len() - 14));
    }
    let found_kind = std::str::from_utf8(&bytes[14..14 + kind_len])
        .map_err(|_| CkptError::Malformed {
            what: "kind string is not UTF-8".into(),
        })?
        .to_string();
    let at = 14 + kind_len;
    if bytes.len() < at + 8 {
        return Err(need("payload length", 8, bytes.len() - at));
    }
    let payload_len = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
    let at = at + 8;
    if bytes.len() < at + payload_len {
        return Err(need("payload", payload_len, bytes.len() - at));
    }
    let end = at + payload_len;
    if bytes.len() < end + 8 {
        return Err(need("checksum", 8, bytes.len() - end));
    }
    if bytes.len() > end + 8 {
        return Err(CkptError::TrailingBytes {
            extra: bytes.len() - end - 8,
        });
    }
    let stored = u64::from_le_bytes(bytes[end..end + 8].try_into().unwrap());
    let computed = fnv1a64(&bytes[..end]);
    if stored != computed {
        return Err(CkptError::ChecksumMismatch {
            expected: computed,
            found: stored,
        });
    }
    // Checksum validates *after* structure so a flipped bit anywhere in
    // the header surfaces as the precise structural error when the
    // structure breaks, and as a checksum mismatch otherwise.
    if found_kind != kind {
        return Err(CkptError::WrongKind {
            expected: kind.to_string(),
            found: found_kind,
        });
    }
    Ok(bytes[at..end].to_vec())
}

/// Deterministic little-endian payload builder.
///
/// Writes are infallible; the matching [`SnapshotReader`] validates on
/// the way back in. Strings and byte blobs carry a u64 length prefix.
#[derive(Default)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
}

impl SnapshotWriter {
    /// Fresh empty payload.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the writer, returning the raw payload bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Append a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a usize as a little-endian u64.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a little-endian u128 (content-addressed cache keys).
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an f64 as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Append a length-prefixed byte blob (e.g. a nested envelope).
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over payload bytes; every read is bounds-checked and returns
/// a [`CkptError`] on truncation instead of panicking.
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> SnapshotReader<'a> {
    /// Start reading at the front of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.at
    }

    /// Error unless every byte has been consumed.
    pub fn expect_end(&self) -> Result<(), CkptError> {
        if self.remaining() != 0 {
            return Err(CkptError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }

    fn take(&mut self, what: &'static str, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated {
                what,
                needed: n,
                have: self.remaining(),
            });
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, CkptError> {
        Ok(self.take(what, 1)?[0])
    }

    /// Read a bool; any byte other than 0/1 is malformed.
    pub fn get_bool(&mut self, what: &'static str) -> Result<bool, CkptError> {
        match self.get_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CkptError::Malformed {
                what: format!("{what}: invalid bool byte {v}"),
            }),
        }
    }

    /// Read a little-endian u32.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(what, 4)?.try_into().unwrap()))
    }

    /// Read a little-endian u64.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(what, 8)?.try_into().unwrap()))
    }

    /// Read a usize (stored as u64); errors if it overflows usize.
    pub fn get_usize(&mut self, what: &'static str) -> Result<usize, CkptError> {
        let v = self.get_u64(what)?;
        usize::try_from(v).map_err(|_| CkptError::Malformed {
            what: format!("{what}: length {v} overflows usize"),
        })
    }

    /// Read a little-endian u128.
    pub fn get_u128(&mut self, what: &'static str) -> Result<u128, CkptError> {
        Ok(u128::from_le_bytes(
            self.take(what, 16)?.try_into().unwrap(),
        ))
    }

    /// Read an f64 from its bit pattern.
    pub fn get_f64(&mut self, what: &'static str) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &'static str) -> Result<String, CkptError> {
        let n = self.get_usize(what)?;
        let s = self.take(what, n)?;
        std::str::from_utf8(s)
            .map(|s| s.to_string())
            .map_err(|_| CkptError::Malformed {
                what: format!("{what}: not UTF-8"),
            })
    }

    /// Read a length-prefixed byte blob.
    pub fn get_bytes(&mut self, what: &'static str) -> Result<Vec<u8>, CkptError> {
        let n = self.get_usize(what)?;
        Ok(self.take(what, n)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.put_u32(7);
        w.put_f64(std::f64::consts::PI);
        w.put_str("hello");
        w.put_bool(true);
        seal("unit-test", &w.finish())
    }

    #[test]
    fn round_trip_preserves_every_field() {
        let payload = open("unit-test", &sample()).unwrap();
        let mut r = SnapshotReader::new(&payload);
        assert_eq!(r.get_u32("a").unwrap(), 7);
        assert_eq!(
            r.get_f64("b").unwrap().to_bits(),
            std::f64::consts::PI.to_bits()
        );
        assert_eq!(r.get_str("c").unwrap(), "hello");
        assert!(r.get_bool("d").unwrap());
        r.expect_end().unwrap();
    }

    #[test]
    fn seal_is_deterministic() {
        assert_eq!(sample(), sample());
    }

    #[test]
    fn negative_zero_and_nan_round_trip_bitwise() {
        let mut w = SnapshotWriter::new();
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_f64(f64::INFINITY);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        assert_eq!(r.get_f64("z").unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_f64("n").unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.get_f64("i").unwrap(), f64::INFINITY);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let good = sample();
        for byte in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    open("unit-test", &bad).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_length_errors() {
        let good = sample();
        for n in 0..good.len() {
            let err = open("unit-test", &good[..n]).unwrap_err();
            match err {
                CkptError::Truncated { .. } | CkptError::BadMagic => {}
                other => panic!("truncation to {n} bytes gave {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_kind_version_magic_are_typed() {
        let good = sample();
        assert_eq!(
            open("other-kind", &good).unwrap_err(),
            CkptError::WrongKind {
                expected: "other-kind".into(),
                found: "unit-test".into(),
            }
        );

        let mut wrong_magic = good.clone();
        wrong_magic[0] = b'X';
        assert_eq!(
            open("unit-test", &wrong_magic).unwrap_err(),
            CkptError::BadMagic
        );

        // A future version must be rejected, not misparsed. Rebuild the
        // envelope by hand so the checksum is self-consistent.
        let payload = open("unit-test", &good).unwrap();
        let mut v2 = seal("unit-test", &payload);
        v2[4] = 2;
        let end = v2.len() - 8;
        let sum = crate::fnv1a64(&v2[..end]);
        v2[end..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            open("unit-test", &v2).unwrap_err(),
            CkptError::UnsupportedVersion { found: 2 }
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut padded = sample();
        padded.push(0);
        assert_eq!(
            open("unit-test", &padded).unwrap_err(),
            CkptError::TrailingBytes { extra: 1 }
        );
    }

    #[test]
    fn reader_rejects_bad_bool_and_overlong_prefix() {
        let mut r = SnapshotReader::new(&[7]);
        assert!(matches!(
            r.get_bool("flag"),
            Err(CkptError::Malformed { .. })
        ));

        let mut w = SnapshotWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes);
        assert!(r.get_str("s").is_err());
    }
}
