//! # jubench-ckpt — deterministic checkpoint/restart substrate
//!
//! The persistence layer of the suite: a versioned, checksummed snapshot
//! envelope with an in-repo serializer (no serde, no external
//! dependencies), the [`Checkpointable`] trait implemented by the
//! long-running apps, the JUBE-like workflow, and the batch scheduler,
//! and the Young/Daly optimal-interval formulas driving the `scaling`
//! checkpoint study.
//!
//! ## Envelope format (version 1)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"JBCK"
//! 4       2     format version, u16 little-endian (currently 1)
//! 6       8     kind length K, u64 little-endian
//! 14      K     kind string, UTF-8 (e.g. "hmc-chain", "sched-campaign")
//! 14+K    8     payload length P, u64 little-endian
//! 22+K    P     payload (component-defined, via SnapshotWriter)
//! 22+K+P  8     FNV-1a 64-bit checksum over bytes [0, 22+K+P)
//! ```
//!
//! Every multi-byte integer is little-endian; every `f64` travels as its
//! IEEE-754 bit pattern (`to_bits`/`from_bits`), so a snapshot →
//! restore → snapshot round trip is byte identity — the invariant the
//! proptests enforce. [`open`] validates magic, version, kind, lengths,
//! and checksum before returning the payload; corrupt bytes surface as a
//! typed [`CkptError`], never a panic.
//!
//! ## Determinism rules
//!
//! 1. Serialize state in a fixed, declaration-driven order — no maps
//!    with unstable iteration order (use `BTreeMap` upstream).
//! 2. No wall-clock timestamps, hostnames, or process ids in payloads.
//! 3. Floats as bit patterns, never as formatted text.
//! 4. A component's `snapshot()` must capture *everything* its future
//!    behaviour depends on (RNG counters, retry attempt counts, buffered
//!    history), so a restored run is bit-identical to an uninterrupted
//!    one.

pub mod error;
pub mod format;
pub mod interval;

pub use error::CkptError;
pub use format::{open, seal, SnapshotReader, SnapshotWriter, FORMAT_VERSION, MAGIC};
pub use interval::{daly_interval, young_interval, WriteTimes, CKPT_WRITE_CLASS};

/// A component whose full execution state can be captured as bytes and
/// later restored bit-exactly.
///
/// The contract: after `restore(&snapshot())`, the component's
/// subsequent behaviour — every output, trace event, and derived
/// artifact — is byte-identical to the original's. `restore` must
/// reject corrupt input with a [`CkptError`] and leave the receiver
/// untouched on error (implementations decode into temporaries first).
pub trait Checkpointable {
    /// The envelope `kind` tag guarding against cross-component mixups.
    fn kind(&self) -> &'static str;

    /// Serialize the complete state into a sealed envelope.
    fn snapshot(&self) -> Vec<u8>;

    /// Replace the receiver's state with the decoded snapshot.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), CkptError>;
}

/// FNV-1a 64-bit hash — the envelope checksum. Re-exported from the
/// workspace's canonical implementation in `jubench-core` so the
/// checksum, the archive manifests, and the content-addressed result
/// cache all agree on one hash.
pub use jubench_core::fnv1a64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
