//! Optimal checkpoint-interval formulas (Young 1974, Daly 2006).
//!
//! With checkpoint cost `C` and node mean time between failures `M`,
//! writing checkpoints too often wastes time on I/O while writing them
//! too rarely loses work to each failure. Young's first-order optimum
//! balances the two; Daly's higher-order expansion corrects it when `C`
//! is not small against `M`. The `scaling::ckpt` study sweeps intervals
//! around these predictions and tabulates the measured makespans.

/// Young's first-order optimal checkpoint interval: `sqrt(2 C M)`.
///
/// `cost_s` is the time to write one checkpoint; `mtbf_s` the mean time
/// between failures of the job's allocation. Both must be positive.
pub fn young_interval(cost_s: f64, mtbf_s: f64) -> f64 {
    assert!(
        cost_s > 0.0 && mtbf_s > 0.0,
        "cost and MTBF must be positive"
    );
    (2.0 * cost_s * mtbf_s).sqrt()
}

/// Daly's higher-order optimal checkpoint interval.
///
/// For `cost_s < 2 * mtbf_s` this is Young's value times a perturbation
/// series in `sqrt(cost / 2 mtbf)`, minus the checkpoint cost itself;
/// beyond that regime checkpointing cannot pay for itself within one
/// failure period and the interval saturates at the MTBF.
pub fn daly_interval(cost_s: f64, mtbf_s: f64) -> f64 {
    assert!(
        cost_s > 0.0 && mtbf_s > 0.0,
        "cost and MTBF must be positive"
    );
    if cost_s < 2.0 * mtbf_s {
        let x = (cost_s / (2.0 * mtbf_s)).sqrt();
        (2.0 * cost_s * mtbf_s).sqrt() * (1.0 + x / 3.0 + x * x / 9.0) - cost_s
    } else {
        mtbf_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_matches_closed_form() {
        assert!((young_interval(2.0, 100.0) - 20.0).abs() < 1e-12);
        assert!((young_interval(0.5, 3600.0) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn daly_approaches_young_for_cheap_checkpoints() {
        // As C/M → 0 the correction terms vanish.
        let c = 1e-6;
        let m = 1e4;
        let y = young_interval(c, m);
        let d = daly_interval(c, m);
        assert!((d - y).abs() / y < 1e-3);
    }

    #[test]
    fn daly_saturates_at_mtbf() {
        assert_eq!(daly_interval(500.0, 100.0), 100.0);
    }

    #[test]
    fn daly_exceeds_young_minus_cost_in_normal_regime() {
        // The positive series terms mean Daly > Young − C.
        let (c, m) = (5.0, 1000.0);
        assert!(daly_interval(c, m) > young_interval(c, m) - c);
        assert!(daly_interval(c, m) < m);
    }
}
