//! Optimal checkpoint-interval formulas (Young 1974, Daly 2006) and
//! the checkpoint-write event train they induce.
//!
//! With checkpoint cost `C` and node mean time between failures `M`,
//! writing checkpoints too often wastes time on I/O while writing them
//! too rarely loses work to each failure. Young's first-order optimum
//! balances the two; Daly's higher-order expansion corrects it when `C`
//! is not small against `M`. The `scaling::ckpt` study sweeps intervals
//! around these predictions and tabulates the measured makespans.
//!
//! [`WriteTimes`] turns an attempt's interval spec into the
//! discrete-event view of the same plan: the write instants as an
//! [`EventSource`] on the global virtual-time queue, byte-identical to
//! the closed-form the scheduler's trace emission used to inline.

use jubench_events::{EventKey, EventSource};

/// Event class of a checkpoint write on the virtual-time queue.
pub const CKPT_WRITE_CLASS: u8 = 16;

/// Young's first-order optimal checkpoint interval: `sqrt(2 C M)`.
///
/// `cost_s` is the time to write one checkpoint; `mtbf_s` the mean time
/// between failures of the job's allocation. Both must be positive.
pub fn young_interval(cost_s: f64, mtbf_s: f64) -> f64 {
    assert!(
        cost_s > 0.0 && mtbf_s > 0.0,
        "cost and MTBF must be positive"
    );
    (2.0 * cost_s * mtbf_s).sqrt()
}

/// Daly's higher-order optimal checkpoint interval.
///
/// For `cost_s < 2 * mtbf_s` this is Young's value times a perturbation
/// series in `sqrt(cost / 2 mtbf)`, minus the checkpoint cost itself;
/// beyond that regime checkpointing cannot pay for itself within one
/// failure period and the interval saturates at the MTBF.
pub fn daly_interval(cost_s: f64, mtbf_s: f64) -> f64 {
    assert!(
        cost_s > 0.0 && mtbf_s > 0.0,
        "cost and MTBF must be positive"
    );
    if cost_s < 2.0 * mtbf_s {
        let x = (cost_s / (2.0 * mtbf_s)).sqrt();
        (2.0 * cost_s * mtbf_s).sqrt() * (1.0 + x / 3.0 + x * x / 9.0) - cost_s
    } else {
        mtbf_s
    }
}

/// The checkpoint-write train of one attempt: `writes` writes, where
/// write `j` (1-based) starts at
///
/// ```text
/// start_s + j · interval_s + (j − 1) · cost_s
/// ```
///
/// — after `j` full intervals of work and the `j − 1` earlier writes —
/// and occupies `cost_s` of wall time. Each instant is computed from
/// `j` directly (multiplied, never accumulated), so the times are
/// byte-identical to the closed-form expression whatever order or
/// subset of the train is consumed.
///
/// Doubles as an [`EventSource`] (class [`CKPT_WRITE_CLASS`], rank =
/// the job id, payload = the write's end time) so write instants can
/// ride the same global queue as fault arrivals and scheduler events,
/// and as an `Iterator` of `(start, end)` spans for direct trace
/// emission.
#[derive(Debug, Clone)]
pub struct WriteTimes {
    start_s: f64,
    interval_s: f64,
    cost_s: f64,
    writes: u32,
    job: u32,
    j: u32,
}

impl WriteTimes {
    /// The write train of an attempt starting at `start_s` under an
    /// (`interval_s`, `cost_s`) spec, planning `writes` writes, tagged
    /// with `job` for event ranking.
    pub fn new(start_s: f64, interval_s: f64, cost_s: f64, writes: u32, job: u32) -> Self {
        WriteTimes {
            start_s,
            interval_s,
            cost_s,
            writes,
            job,
            j: 0,
        }
    }

    fn span(&self, j: u32) -> (f64, f64) {
        let j = j as u64;
        let w_start = self.start_s + j as f64 * self.interval_s + (j - 1) as f64 * self.cost_s;
        (w_start, w_start + self.cost_s)
    }
}

impl Iterator for WriteTimes {
    /// `(write start, write end)` in virtual seconds.
    type Item = (f64, f64);

    fn next(&mut self) -> Option<(f64, f64)> {
        if self.j >= self.writes {
            return None;
        }
        self.j += 1;
        Some(self.span(self.j))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.writes - self.j) as usize;
        (left, Some(left))
    }
}

impl ExactSizeIterator for WriteTimes {}

impl EventSource for WriteTimes {
    /// End time of the write.
    type Payload = f64;

    fn peek_key(&self) -> Option<EventKey> {
        (self.j < self.writes).then(|| EventKey {
            time: self.span(self.j + 1).0,
            class: CKPT_WRITE_CLASS,
            rank: self.job,
            seq: (self.j + 1) as u64,
        })
    }

    fn next_event(&mut self) -> Option<(EventKey, f64)> {
        let key = self.peek_key()?;
        let (_, end) = self.next()?;
        Some((key, end))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_times_match_the_closed_form() {
        let spans: Vec<(f64, f64)> = WriteTimes::new(2.5, 1.0, 0.01, 3, 0).collect();
        let expect: Vec<(f64, f64)> = (1..=3u64)
            .map(|j| {
                let s = 2.5 + j as f64 * 1.0 + (j - 1) as f64 * 0.01;
                (s, s + 0.01)
            })
            .collect();
        assert_eq!(spans, expect);
    }

    #[test]
    fn write_times_is_an_event_source() {
        use jubench_events::EventQueue;
        let mut train = WriteTimes::new(0.0, 2.0, 0.5, 4, 7);
        assert_eq!(train.len(), 4);
        let mut q = EventQueue::new();
        assert_eq!(train.feed_until(&mut q, 4.5), 2, "writes at 2.0 and 4.5");
        let first = q.pop().unwrap();
        assert_eq!(first.key.time, 2.0);
        assert_eq!(first.key.class, CKPT_WRITE_CLASS);
        assert_eq!(first.key.rank, 7);
        assert_eq!(first.payload, 2.5, "payload is the write's end");
        assert_eq!(q.pop().unwrap().key.time, 4.5);
        assert_eq!(train.peek_key().unwrap().time, 7.0, "third write pending");
    }

    #[test]
    fn empty_write_train_is_exhausted() {
        let mut train = WriteTimes::new(1.0, 1.0, 0.1, 0, 0);
        assert!(train.peek_key().is_none());
        assert!(train.next_event().is_none());
        assert_eq!(train.count(), 0);
    }

    #[test]
    fn young_matches_closed_form() {
        assert!((young_interval(2.0, 100.0) - 20.0).abs() < 1e-12);
        assert!((young_interval(0.5, 3600.0) - 60.0).abs() < 1e-12);
    }

    #[test]
    fn daly_approaches_young_for_cheap_checkpoints() {
        // As C/M → 0 the correction terms vanish.
        let c = 1e-6;
        let m = 1e4;
        let y = young_interval(c, m);
        let d = daly_interval(c, m);
        assert!((d - y).abs() / y < 1e-3);
    }

    #[test]
    fn daly_saturates_at_mtbf() {
        assert_eq!(daly_interval(500.0, 100.0), 100.0);
    }

    #[test]
    fn daly_exceeds_young_minus_cost_in_normal_regime() {
        // The positive series terms mean Daly > Young − C.
        let (c, m) = (5.0, 1000.0);
        assert!(daly_interval(c, m) > young_interval(c, m) - c);
        assert!(daly_interval(c, m) < m);
    }
}
