//! Typed errors for corrupt or mismatched checkpoint bytes.

use std::fmt;

/// Why a snapshot could not be opened or decoded.
///
/// Every failure mode of the envelope and of component payload decoding
/// maps onto one of these variants; no code path panics on untrusted
/// bytes. `sched` catches these and falls back to restart-from-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// Fewer bytes than a field needs — the snapshot was cut short.
    Truncated {
        /// What was being read when the bytes ran out.
        what: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The leading magic is not `b"JBCK"`.
    BadMagic,
    /// The envelope declares a format version this build cannot read.
    UnsupportedVersion {
        /// Version found in the envelope.
        found: u16,
    },
    /// The envelope is a valid snapshot of a *different* component.
    WrongKind {
        /// Kind the caller expected.
        expected: String,
        /// Kind found in the envelope.
        found: String,
    },
    /// The FNV-1a checksum over the envelope does not match.
    ChecksumMismatch {
        /// Checksum recomputed from the bytes.
        expected: u64,
        /// Checksum stored in the envelope.
        found: u64,
    },
    /// A field decoded but its value is impossible (bad UTF-8, an enum
    /// discriminant out of range, a count that contradicts a length…).
    Malformed {
        /// What was being decoded.
        what: String,
    },
    /// Decoding finished with unconsumed bytes left over.
    TrailingBytes {
        /// How many bytes were never consumed.
        extra: usize,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated { what, needed, have } => {
                write!(
                    f,
                    "truncated snapshot: {what} needs {needed} bytes, {have} available"
                )
            }
            CkptError::BadMagic => write!(f, "bad snapshot magic (expected JBCK)"),
            CkptError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot format version {found}")
            }
            CkptError::WrongKind { expected, found } => {
                write!(
                    f,
                    "snapshot kind mismatch: expected {expected:?}, found {found:?}"
                )
            }
            CkptError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch: computed {expected:#018x}, stored {found:#018x}"
            ),
            CkptError::Malformed { what } => write!(f, "malformed snapshot field: {what}"),
            CkptError::TrailingBytes { extra } => {
                write!(f, "snapshot has {extra} trailing bytes after decoding")
            }
        }
    }
}

impl std::error::Error for CkptError {}
