//! The fault plan: a declarative, seeded schedule of faults in virtual
//! time.

use jubench_kernels::rng::{rank_rng, DetRng};

/// Stream-family tag separating the message-drop draws from every other
/// consumer of the plan seed.
const DROP_STREAM: u64 = 0xD20F_FA17_5EED_0001;

/// Stream-family tag for the periodic-drain arrival and victim draws.
const DRAIN_STREAM: u64 = 0xD2A1_4FA1_5EED_0002;

/// One injected fault. Link faults apply to the unordered rank pair
/// `{a, b}`; message drops are directional (`from → to`); node and crash
/// faults name a node or rank directly.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Transfers between ranks `a` and `b` take `factor` × longer — a
    /// failing cable or mis-trained adapter, permanently degraded.
    DegradedLink { a: u32, b: u32, factor: f64 },
    /// A link that oscillates: within each `period_s` of virtual time the
    /// link is healthy for the first `up_fraction` of the period and
    /// degraded by `factor` for the remainder.
    FlappingLink {
        a: u32,
        b: u32,
        factor: f64,
        period_s: f64,
        up_fraction: f64,
    },
    /// Computation on `node` takes `factor` × longer while the virtual
    /// time is within `[from_s, until_s)` — a straggler or a thermal
    /// throttle window.
    SlowNode {
        node: u32,
        factor: f64,
        from_s: f64,
        until_s: f64,
    },
    /// Each message `from → to` is lost on the wire with `probability`;
    /// the receiver observes a virtual-time timeout instead of a payload.
    MessageDrop {
        from: u32,
        to: u32,
        probability: f64,
    },
    /// `rank` fails permanently once its virtual clock reaches `at_s`:
    /// every later communication attempt errors.
    RankCrash { rank: u32, at_s: f64 },
}

fn same_pair(a: u32, b: u32, x: u32, y: u32) -> bool {
    (a.min(b), a.max(b)) == (x.min(y), x.max(y))
}

/// A seeded, deterministic fault schedule for one run.
///
/// The plan is immutable data; the runtime queries it at operation
/// boundaries. An empty plan answers every query with the identity
/// (factor 1, probability 0, no crash), so running under an empty plan is
/// bit-identical to running with no plan at all.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    recv_timeout_s: f64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Virtual seconds a receiver waits on a dropped message before
    /// reporting a timeout, unless overridden by
    /// [`FaultPlan::with_recv_timeout`].
    pub const DEFAULT_RECV_TIMEOUT_S: f64 = 0.1;

    /// An empty plan under `seed`. The seed feeds every stochastic fault
    /// draw (currently: message drops).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            recv_timeout_s: Self::DEFAULT_RECV_TIMEOUT_S,
            faults: Vec::new(),
        }
    }

    /// A plan that slows a deterministically drawn subset of nodes: about
    /// `fraction` of the `nodes` are stragglers running `factor` × slower
    /// (for all of virtual time). The subset depends only on `seed`.
    pub fn random_stragglers(seed: u64, nodes: u32, fraction: f64, factor: f64) -> Self {
        assert!((0.0..=1.0).contains(&fraction));
        let count = (fraction * nodes as f64).round() as u32;
        let mut rng = rank_rng(seed, u32::MAX);
        // Partial Fisher–Yates over the node indices.
        let mut pool: Vec<u32> = (0..nodes).collect();
        let mut plan = FaultPlan::new(seed);
        for i in 0..count.min(nodes) as usize {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
            plan = plan.with_slow_node(pool[i], factor);
        }
        plan
    }

    /// A plan of recurring node outages: failure events arrive with mean
    /// spacing `mtbf_s` (uniform seeded jitter of ±25 %), each taking a
    /// deterministically drawn node out of service — a slow-node window
    /// of `factor` lasting `drain_s` — until `horizon_s`. A failure
    /// drawn while its victim is already down is skipped, so windows on
    /// one node never overlap. Identical arguments reproduce an
    /// identical plan; the batch scheduler reads each window as a drain
    /// that preempts the jobs on the node.
    pub fn periodic_drains(
        seed: u64,
        nodes: u32,
        mtbf_s: f64,
        drain_s: f64,
        horizon_s: f64,
        factor: f64,
    ) -> Self {
        assert!(nodes > 0, "drains need at least one node to hit");
        assert!(mtbf_s > 0.0 && drain_s > 0.0 && factor >= 1.0);
        let mut rng = rank_rng(seed ^ DRAIN_STREAM, u32::MAX);
        let mut down_until = vec![0.0f64; nodes as usize];
        let mut plan = FaultPlan::new(seed);
        let mut t = 0.0;
        loop {
            t += mtbf_s * (0.75 + 0.5 * rng.gen_f64());
            if t >= horizon_s {
                break;
            }
            let node = rng.gen_range(0..nodes as usize);
            if t < down_until[node] {
                continue;
            }
            down_until[node] = t + drain_s;
            plan = plan.with_slow_node_window(node as u32, factor, t, t + drain_s);
        }
        plan
    }

    // ----- builders -------------------------------------------------------

    /// Permanently degrade the link between ranks `a` and `b`.
    pub fn with_degraded_link(mut self, a: u32, b: u32, factor: f64) -> Self {
        assert!(factor >= 1.0, "a degradation factor must be ≥ 1");
        self.faults.push(Fault::DegradedLink { a, b, factor });
        self
    }

    /// Add a flapping link: healthy for `up_fraction` of each `period_s`,
    /// degraded by `factor` for the rest.
    pub fn with_flapping_link(
        mut self,
        a: u32,
        b: u32,
        factor: f64,
        period_s: f64,
        up_fraction: f64,
    ) -> Self {
        assert!(factor >= 1.0 && period_s > 0.0);
        assert!((0.0..=1.0).contains(&up_fraction));
        self.faults.push(Fault::FlappingLink {
            a,
            b,
            factor,
            period_s,
            up_fraction,
        });
        self
    }

    /// Slow all computation on `node` by `factor`, for all of virtual
    /// time.
    pub fn with_slow_node(self, node: u32, factor: f64) -> Self {
        self.with_slow_node_window(node, factor, 0.0, f64::INFINITY)
    }

    /// Slow computation on `node` by `factor` within the virtual-time
    /// window `[from_s, until_s)`.
    pub fn with_slow_node_window(
        mut self,
        node: u32,
        factor: f64,
        from_s: f64,
        until_s: f64,
    ) -> Self {
        assert!(factor >= 1.0 && from_s < until_s);
        self.faults.push(Fault::SlowNode {
            node,
            factor,
            from_s,
            until_s,
        });
        self
    }

    /// Drop each message `from → to` with `probability`.
    pub fn with_message_drop(mut self, from: u32, to: u32, probability: f64) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        self.faults.push(Fault::MessageDrop {
            from,
            to,
            probability,
        });
        self
    }

    /// Crash `rank` once its virtual clock reaches `at_s`.
    pub fn with_rank_crash(mut self, rank: u32, at_s: f64) -> Self {
        assert!(at_s >= 0.0);
        self.faults.push(Fault::RankCrash { rank, at_s });
        self
    }

    /// Override the virtual-time receive timeout charged per dropped
    /// message.
    pub fn with_recv_timeout(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0);
        self.recv_timeout_s = seconds;
        self
    }

    // ----- queries --------------------------------------------------------

    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    pub fn recv_timeout_s(&self) -> f64 {
        self.recv_timeout_s
    }

    /// Combined slowdown factor of the link `{a, b}` at virtual time `t`
    /// (product over all matching link faults; 1.0 when healthy).
    pub fn link_factor(&self, a: u32, b: u32, t: f64) -> f64 {
        let mut f = 1.0;
        for fault in &self.faults {
            match *fault {
                Fault::DegradedLink { a: x, b: y, factor } if same_pair(a, b, x, y) => {
                    f *= factor;
                }
                Fault::FlappingLink {
                    a: x,
                    b: y,
                    factor,
                    period_s,
                    up_fraction,
                } if same_pair(a, b, x, y) => {
                    let phase = (t / period_s).fract();
                    if phase >= up_fraction {
                        f *= factor;
                    }
                }
                _ => {}
            }
        }
        f
    }

    /// Combined compute-slowdown factor of `node` at virtual time `t`.
    pub fn compute_factor(&self, node: u32, t: f64) -> f64 {
        let mut f = 1.0;
        for fault in &self.faults {
            if let Fault::SlowNode {
                node: n,
                factor,
                from_s,
                until_s,
            } = *fault
            {
                if n == node && t >= from_s && t < until_s {
                    f *= factor;
                }
            }
        }
        f
    }

    /// Probability that a message `from → to` is dropped (combined over
    /// all matching drop faults).
    pub fn drop_probability(&self, from: u32, to: u32) -> f64 {
        let mut keep = 1.0;
        for fault in &self.faults {
            if let Fault::MessageDrop {
                from: f,
                to: t,
                probability,
            } = *fault
            {
                if f == from && t == to {
                    keep *= 1.0 - probability;
                }
            }
        }
        1.0 - keep
    }

    /// Earliest virtual crash time of `rank`, if any.
    pub fn crash_time(&self, rank: u32) -> Option<f64> {
        self.faults
            .iter()
            .filter_map(|f| match *f {
                Fault::RankCrash { rank: r, at_s } if r == rank => Some(at_s),
                _ => None,
            })
            .min_by(|a, b| a.partial_cmp(b).unwrap())
    }

    /// The unordered rank pairs with a (permanent or flapping) link
    /// fault, deduplicated and sorted — the ground truth a LinkTest scan
    /// should recover.
    pub fn degraded_pairs(&self) -> Vec<(u32, u32)> {
        let mut pairs: Vec<(u32, u32)> = self
            .faults
            .iter()
            .filter_map(|f| match *f {
                Fault::DegradedLink { a, b, .. } | Fault::FlappingLink { a, b, .. } => {
                    Some((a.min(b), a.max(b)))
                }
                _ => None,
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// Nodes with an active slow-node fault (at any time), sorted.
    pub fn slow_nodes(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self
            .faults
            .iter()
            .filter_map(|f| match *f {
                Fault::SlowNode { node, .. } => Some(node),
                _ => None,
            })
            .collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// The deterministic message-drop stream of `rank`: decorrelated from
    /// every other rank and from every other consumer of the plan seed.
    pub fn drop_rng(&self, rank: u32) -> DetRng {
        rank_rng(self.seed ^ DROP_STREAM, rank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_identity() {
        let p = FaultPlan::new(7);
        assert!(p.is_empty());
        assert_eq!(p.link_factor(0, 1, 5.0), 1.0);
        assert_eq!(p.compute_factor(3, 5.0), 1.0);
        assert_eq!(p.drop_probability(0, 1), 0.0);
        assert_eq!(p.crash_time(0), None);
        assert!(p.degraded_pairs().is_empty());
    }

    #[test]
    fn degraded_links_are_symmetric_and_compose() {
        let p = FaultPlan::new(0)
            .with_degraded_link(0, 5, 4.0)
            .with_degraded_link(5, 0, 2.0);
        assert_eq!(p.link_factor(0, 5, 0.0), 8.0);
        assert_eq!(p.link_factor(5, 0, 123.0), 8.0);
        assert_eq!(p.link_factor(0, 4, 0.0), 1.0);
        assert_eq!(p.degraded_pairs(), vec![(0, 5)]);
    }

    #[test]
    fn flapping_link_follows_its_duty_cycle() {
        // Healthy for the first 60 % of each 10 s period.
        let p = FaultPlan::new(0).with_flapping_link(1, 2, 8.0, 10.0, 0.6);
        assert_eq!(p.link_factor(1, 2, 0.0), 1.0);
        assert_eq!(p.link_factor(1, 2, 5.9), 1.0);
        assert_eq!(p.link_factor(1, 2, 6.0), 8.0);
        assert_eq!(p.link_factor(1, 2, 9.9), 8.0);
        assert_eq!(p.link_factor(1, 2, 10.0), 1.0, "next period starts up");
        assert_eq!(p.link_factor(2, 1, 16.5), 8.0, "symmetric");
    }

    #[test]
    fn slow_node_window_bounds_apply() {
        let p = FaultPlan::new(0).with_slow_node_window(2, 3.0, 1.0, 2.0);
        assert_eq!(p.compute_factor(2, 0.5), 1.0);
        assert_eq!(p.compute_factor(2, 1.0), 3.0);
        assert_eq!(p.compute_factor(2, 1.999), 3.0);
        assert_eq!(p.compute_factor(2, 2.0), 1.0);
        assert_eq!(p.compute_factor(1, 1.5), 1.0, "other nodes healthy");
        let always = FaultPlan::new(0).with_slow_node(4, 2.0);
        assert_eq!(always.compute_factor(4, 1e9), 2.0);
    }

    #[test]
    fn drop_probability_is_directional_and_composes() {
        let p = FaultPlan::new(0)
            .with_message_drop(0, 1, 0.5)
            .with_message_drop(0, 1, 0.5);
        assert!((p.drop_probability(0, 1) - 0.75).abs() < 1e-12);
        assert_eq!(p.drop_probability(1, 0), 0.0);
    }

    #[test]
    fn crash_time_takes_the_earliest() {
        let p = FaultPlan::new(0)
            .with_rank_crash(3, 7.0)
            .with_rank_crash(3, 2.0);
        assert_eq!(p.crash_time(3), Some(2.0));
        assert_eq!(p.crash_time(2), None);
    }

    #[test]
    fn drop_rng_is_seed_and_rank_deterministic() {
        let p = FaultPlan::new(42);
        let mut a = p.drop_rng(0);
        let mut b = FaultPlan::new(42).drop_rng(0);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = p.drop_rng(1);
        assert_ne!(p.drop_rng(0).next_u64(), c.next_u64());
        assert_ne!(
            FaultPlan::new(43).drop_rng(0).next_u64(),
            FaultPlan::new(42).drop_rng(0).next_u64()
        );
    }

    #[test]
    fn random_stragglers_are_reproducible_and_sized() {
        let a = FaultPlan::random_stragglers(9, 16, 0.25, 4.0);
        let b = FaultPlan::random_stragglers(9, 16, 0.25, 4.0);
        assert_eq!(a, b);
        assert_eq!(a.slow_nodes().len(), 4);
        assert!(a.slow_nodes().iter().all(|&n| n < 16));
        let none = FaultPlan::random_stragglers(9, 16, 0.0, 4.0);
        assert!(none.is_empty());
        let other = FaultPlan::random_stragglers(10, 16, 0.25, 4.0);
        assert_eq!(other.slow_nodes().len(), 4);
    }

    #[test]
    fn periodic_drains_are_reproducible_and_bounded() {
        let a = FaultPlan::periodic_drains(11, 8, 5.0, 0.5, 100.0, 4.0);
        let b = FaultPlan::periodic_drains(11, 8, 5.0, 0.5, 100.0, 4.0);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for f in a.faults() {
            match *f {
                Fault::SlowNode {
                    node,
                    factor,
                    from_s,
                    until_s,
                } => {
                    assert!(node < 8);
                    assert_eq!(factor, 4.0);
                    assert!(from_s > 0.0 && from_s < 100.0);
                    assert!((until_s - from_s - 0.5).abs() < 1e-12);
                }
                ref other => panic!("unexpected fault {other:?}"),
            }
        }
        // ~100/5 arrivals, each within ±25 % of the MTBF spacing.
        let n = a.faults().len();
        assert!((10..=30).contains(&n), "{n} drains");
    }

    #[test]
    fn periodic_drains_never_overlap_per_node() {
        // A tight MTBF on one node forces the skip path.
        let p = FaultPlan::periodic_drains(3, 1, 0.1, 2.0, 50.0, 2.0);
        let mut windows: Vec<(f64, f64)> = p
            .faults()
            .iter()
            .map(|f| match *f {
                Fault::SlowNode {
                    from_s, until_s, ..
                } => (from_s, until_s),
                ref other => panic!("unexpected fault {other:?}"),
            })
            .collect();
        windows.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in windows.windows(2) {
            assert!(w[1].0 >= w[0].1, "{:?} overlaps {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn periodic_drains_past_the_horizon_are_empty() {
        assert!(FaultPlan::periodic_drains(7, 4, 10.0, 1.0, 5.0, 2.0).is_empty());
    }

    #[test]
    fn recv_timeout_is_configurable() {
        assert_eq!(
            FaultPlan::new(0).recv_timeout_s(),
            FaultPlan::DEFAULT_RECV_TIMEOUT_S
        );
        assert_eq!(
            FaultPlan::new(0).with_recv_timeout(0.5).recv_timeout_s(),
            0.5
        );
    }
}
