//! # jubench-faults — deterministic fault injection for the simulated runtime
//!
//! An exascale machine where degraded cables, straggler nodes, and failed
//! ranks are a fact of life needs benchmarks whose behaviour under those
//! faults is *predictable*: LinkTest exists precisely to localize bad
//! links, and continuous benchmarking must tell genuine regressions apart
//! from fault-induced outliers. This crate provides the vocabulary:
//!
//! - [`FaultPlan`]: a seeded, declarative schedule of faults in **virtual
//!   time** — multi-link degradation, flapping links, per-node slowdown
//!   (stragglers / thermal throttle), probabilistic message drop, and
//!   rank crashes at a fixed virtual time. Every stochastic draw comes
//!   from a [`DetRng`] stream derived from the plan seed, so identical
//!   seeds reproduce identical runs bit for bit.
//! - [`RetryPolicy`]: bounded retry with exponential backoff, shared by
//!   the simulated MPI layer (`jubench-simmpi`, where backoff is charged
//!   to the virtual clock) and the workflow engine (`jubench-jube`,
//!   where step retries are recorded in result tables).
//!
//! The plan itself is pure data: it never touches a clock or a channel.
//! The runtime (`World` / `Comm`) queries it at operation boundaries —
//! [`FaultPlan::link_factor`], [`FaultPlan::compute_factor`],
//! [`FaultPlan::drop_probability`], [`FaultPlan::crash_time`] — and an
//! **empty plan answers every query with the identity**, so the
//! zero-fault path is exactly the unfaulted runtime (a property test in
//! the workspace pins this: bit-identical per-rank clocks).

pub mod plan;
pub mod retry;

pub use jubench_kernels::rng::{rank_rng, DetRng};
pub use plan::{Fault, FaultPlan};
pub use retry::{OnExhaustion, RetryPolicy};
