//! Bounded retry with exponential backoff — the resilience policy shared
//! by the simulated MPI layer and the workflow engine.

/// What to do once every attempt of a [`RetryPolicy`] has failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnExhaustion {
    /// Surface the failure and keep going (the caller records it).
    Continue,
    /// Abort the enclosing operation with the failure.
    Abort,
}

/// A bounded retry policy: up to `max_attempts` tries, with exponential
/// backoff between them. In the simulated runtime the backoff is charged
/// to the **virtual clock** (wall time is never slept).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (≥ 1).
    pub max_attempts: u32,
    /// Backoff before the second attempt, in virtual seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied per further attempt (2.0 = classic exponential).
    pub backoff_multiplier: f64,
    /// Behaviour once all attempts failed.
    pub on_exhaustion: OnExhaustion,
}

impl RetryPolicy {
    /// No retries: one attempt, abort on failure. The default everywhere.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_s: 0.0,
            backoff_multiplier: 1.0,
            on_exhaustion: OnExhaustion::Abort,
        }
    }

    /// `max_attempts` tries with exponential backoff (×2 per attempt)
    /// starting at `base_backoff_s`, aborting on exhaustion.
    pub fn new(max_attempts: u32, base_backoff_s: f64) -> Self {
        assert!(max_attempts >= 1, "a policy needs at least one attempt");
        assert!(base_backoff_s >= 0.0);
        RetryPolicy {
            max_attempts,
            base_backoff_s,
            backoff_multiplier: 2.0,
            on_exhaustion: OnExhaustion::Abort,
        }
    }

    /// Same policy, but continue (recording the failure) on exhaustion.
    pub fn or_continue(mut self) -> Self {
        self.on_exhaustion = OnExhaustion::Continue;
        self
    }

    /// Override the per-attempt backoff multiplier.
    pub fn with_multiplier(mut self, multiplier: f64) -> Self {
        assert!(multiplier >= 1.0);
        self.backoff_multiplier = multiplier;
        self
    }

    /// Backoff after the `attempt`-th failure (1-indexed):
    /// `base · multiplier^(attempt−1)`.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        debug_assert!(attempt >= 1);
        self.base_backoff_s * self.backoff_multiplier.powi(attempt as i32 - 1)
    }

    /// Total backoff charged when every one of the `max_attempts` fails.
    pub fn total_backoff_s(&self) -> f64 {
        (1..self.max_attempts).map(|a| self.backoff_s(a)).sum()
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_single_attempt_abort() {
        let p = RetryPolicy::none();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.on_exhaustion, OnExhaustion::Abort);
        assert_eq!(p.total_backoff_s(), 0.0);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::new(4, 0.5);
        assert_eq!(p.backoff_s(1), 0.5);
        assert_eq!(p.backoff_s(2), 1.0);
        assert_eq!(p.backoff_s(3), 2.0);
        assert_eq!(p.total_backoff_s(), 3.5);
    }

    #[test]
    fn multiplier_override() {
        let p = RetryPolicy::new(3, 1.0).with_multiplier(1.0);
        assert_eq!(p.backoff_s(1), 1.0);
        assert_eq!(p.backoff_s(2), 1.0);
    }

    #[test]
    fn or_continue_flips_exhaustion() {
        assert_eq!(
            RetryPolicy::new(2, 0.1).or_continue().on_exhaustion,
            OnExhaustion::Continue
        );
    }
}
