//! STREAM: the memory-bandwidth benchmark — copy, scale, add, triad.

use std::time::Instant;

use jubench_cluster::{GpuSpec, Roofline, Work};
use jubench_core::{
    suite_meta, Benchmark, BenchmarkId, BenchmarkMeta, Fom, RunConfig, RunOutcome, SuiteError,
    VerificationOutcome,
};
use jubench_simmpi::ClockStats;

/// Measured best rates of one STREAM pass (bytes/s per kernel).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamRates {
    pub copy: f64,
    pub scale: f64,
    pub add: f64,
    pub triad: f64,
}

impl StreamRates {
    pub fn best(&self) -> f64 {
        self.copy.max(self.scale).max(self.add).max(self.triad)
    }
}

/// Run the four STREAM kernels on arrays of `n` doubles, `reps` times,
/// returning the best rates and verifying the results exactly.
pub fn stream_kernels(n: usize, reps: usize) -> Result<StreamRates, String> {
    let scalar = 3.0;
    let mut a = vec![1.0f64; n];
    let mut b = vec![2.0f64; n];
    let mut c = vec![0.0f64; n];
    let mut best = StreamRates {
        copy: 0.0,
        scale: 0.0,
        add: 0.0,
        triad: 0.0,
    };
    for _ in 0..reps {
        // Copy: c = a.
        let t = Instant::now();
        c.copy_from_slice(&a);
        best.copy = best
            .copy
            .max(16.0 * n as f64 / t.elapsed().as_secs_f64().max(1e-9));
        // Scale: b = s·c.
        let t = Instant::now();
        for i in 0..n {
            b[i] = scalar * c[i];
        }
        best.scale = best
            .scale
            .max(16.0 * n as f64 / t.elapsed().as_secs_f64().max(1e-9));
        // Add: c = a + b.
        let t = Instant::now();
        for i in 0..n {
            c[i] = a[i] + b[i];
        }
        best.add = best
            .add
            .max(24.0 * n as f64 / t.elapsed().as_secs_f64().max(1e-9));
        // Triad: a = b + s·c.
        let t = Instant::now();
        for i in 0..n {
            a[i] = b[i] + scalar * c[i];
        }
        best.triad = best
            .triad
            .max(24.0 * n as f64 / t.elapsed().as_secs_f64().max(1e-9));
    }
    // STREAM's built-in verification: after `reps` passes the arrays have
    // exactly predictable values.
    let mut ea = 1.0f64;
    let mut eb = 2.0f64;
    let mut ec = 0.0f64;
    for _ in 0..reps {
        ec = ea;
        eb = scalar * ec;
        ec = ea + eb;
        ea = eb + scalar * ec;
    }
    for (name, arr, expect) in [("a", &a, ea), ("b", &b, eb), ("c", &c, ec)] {
        for &v in arr.iter() {
            if (v - expect).abs() > 1e-8 * expect.abs() {
                return Err(format!("array {name}: {v} != expected {expect}"));
            }
        }
    }
    Ok(best)
}

pub struct Stream {
    /// Array length for the measured CPU run.
    pub n: usize,
}

impl Default for Stream {
    fn default() -> Self {
        Stream { n: 2_000_000 }
    }
}

impl Stream {
    /// The GPU variant's modeled triad bandwidth: the device's roofline
    /// bandwidth at STREAM efficiency.
    pub fn gpu_triad_model(gpu: GpuSpec) -> f64 {
        gpu.mem_bw * 0.85
    }
}

impl Benchmark for Stream {
    fn meta(&self) -> BenchmarkMeta {
        suite_meta()
            .into_iter()
            .find(|m| m.id == BenchmarkId::Stream)
            .unwrap()
    }

    fn validate_nodes(&self, nodes: u32) -> Result<(), SuiteError> {
        if nodes != 1 {
            return Err(SuiteError::InvalidNodeCount {
                benchmark: "STREAM",
                nodes,
                reason: "STREAM is a single-node benchmark".into(),
            });
        }
        Ok(())
    }

    fn run(&self, cfg: &RunConfig) -> Result<RunOutcome, SuiteError> {
        self.validate_nodes(cfg.nodes)?;
        let machine = cfg.machine();
        let rates = stream_kernels(self.n, 4).map_err(|detail| SuiteError::VerificationFailed {
            benchmark: "STREAM",
            detail,
        })?;
        // Virtual time of the GPU variant: four kernels over a 1 GiB
        // working set at modeled bandwidth.
        let bytes = 4.0 * (1u64 << 30) as f64;
        let device = Roofline::new(machine.node.gpu).with_efficiencies(0.5, 0.85);
        let virtual_time = device.time(Work::new(2.0 * (1u64 << 27) as f64, bytes));
        let clock = ClockStats {
            compute_s: virtual_time,
            comm_s: 0.0,
        };
        Ok(RunOutcome {
            fom: Fom::BytesPerSecond(rates.best()),
            virtual_time_s: clock.total_s(),
            compute_time_s: clock.compute_s,
            comm_time_s: 0.0,
            verification: VerificationOutcome::Exact {
                checked_values: 3 * self.n,
            },
            metrics: vec![
                ("copy".into(), rates.copy),
                ("scale".into(), rates.scale),
                ("add".into(), rates.add),
                ("triad".into(), rates.triad),
                (
                    "gpu_triad_model".into(),
                    Self::gpu_triad_model(machine.node.gpu),
                ),
            ],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_verify_exactly() {
        let rates = stream_kernels(10_000, 3).unwrap();
        assert!(rates.copy > 0.0 && rates.triad > 0.0);
        assert!(rates.best() >= rates.triad);
    }

    #[test]
    fn run_reports_all_four_kernels() {
        let out = Stream { n: 100_000 }.run(&RunConfig::test(1)).unwrap();
        assert!(out.verification.passed());
        for k in ["copy", "scale", "add", "triad"] {
            assert!(out.metric(k).unwrap() > 0.0, "{k} missing");
        }
        assert!(matches!(out.fom, Fom::BytesPerSecond(b) if b > 0.0));
    }

    #[test]
    fn multi_node_is_rejected() {
        let err = Stream::default().run(&RunConfig::test(2)).unwrap_err();
        assert!(matches!(err, SuiteError::InvalidNodeCount { .. }));
    }

    #[test]
    fn gpu_model_is_near_hbm_bandwidth() {
        let bw = Stream::gpu_triad_model(GpuSpec::a100_40gb());
        assert!((1.2e12..1.6e12).contains(&bw), "modeled GPU triad {bw}");
    }
}
