//! HPCG: conjugate gradient on the 27-point stencil with a symmetric
//! Gauss-Seidel preconditioner — the bandwidth-bound counterpart to HPL.

use std::time::Instant;

use jubench_apps_common::{AppModel, Phase};
use jubench_cluster::{balanced_dims3, CommPattern, Work};
use jubench_core::{
    suite_meta, Benchmark, BenchmarkId, BenchmarkMeta, Fom, RunConfig, RunOutcome, SuiteError,
    VerificationOutcome,
};

/// The 27-point operator on an n³ grid with Dirichlet boundaries: diagonal
/// 26, off-diagonals −1 (HPCG's standard problem).
pub struct Stencil27 {
    pub n: usize,
}

impl Stencil27 {
    #[inline]
    fn idx(&self, i: usize, j: usize, k: usize) -> usize {
        (i * self.n + j) * self.n + k
    }

    pub fn len(&self) -> usize {
        self.n * self.n * self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    pub fn apply(&self, x: &[f64], y: &mut [f64]) {
        let n = self.n as isize;
        for i in 0..self.n {
            for j in 0..self.n {
                for k in 0..self.n {
                    let mut s = 26.0 * x[self.idx(i, j, k)];
                    for di in -1..=1isize {
                        for dj in -1..=1isize {
                            for dk in -1..=1isize {
                                if di == 0 && dj == 0 && dk == 0 {
                                    continue;
                                }
                                let (ii, jj, kk) =
                                    (i as isize + di, j as isize + dj, k as isize + dk);
                                if ii >= 0 && ii < n && jj >= 0 && jj < n && kk >= 0 && kk < n {
                                    s -= x[self.idx(ii as usize, jj as usize, kk as usize)];
                                }
                            }
                        }
                    }
                    y[self.idx(i, j, k)] = s;
                }
            }
        }
    }

    /// One symmetric Gauss-Seidel sweep (forward then backward) on
    /// A z = r, in place — HPCG's smoother/preconditioner.
    pub fn sym_gauss_seidel(&self, z: &mut [f64], r: &[f64]) {
        let n = self.n as isize;
        let sweep = |z: &mut [f64], order: &mut dyn Iterator<Item = usize>| {
            for flat in order {
                let i = flat / (self.n * self.n);
                let j = (flat / self.n) % self.n;
                let k = flat % self.n;
                let mut s = r[flat];
                for di in -1..=1isize {
                    for dj in -1..=1isize {
                        for dk in -1..=1isize {
                            if di == 0 && dj == 0 && dk == 0 {
                                continue;
                            }
                            let (ii, jj, kk) = (i as isize + di, j as isize + dj, k as isize + dk);
                            if ii >= 0 && ii < n && jj >= 0 && jj < n && kk >= 0 && kk < n {
                                s += z[self.idx(ii as usize, jj as usize, kk as usize)];
                            }
                        }
                    }
                }
                z[flat] = s / 26.0;
            }
        };
        sweep(z, &mut (0..self.len()));
        sweep(z, &mut (0..self.len()).rev());
    }
}

/// HPCG-style preconditioned CG; returns (iterations, relative residual,
/// flops performed).
pub fn hpcg_pcg(op: &Stencil27, b: &[f64], tol: f64, max_iters: usize) -> (usize, f64, f64) {
    let len = op.len();
    let dot = |a: &[f64], c: &[f64]| -> f64 { a.iter().zip(c).map(|(x, y)| x * y).sum() };
    let mut x = vec![0.0; len];
    let mut r = b.to_vec();
    let norm_b = dot(b, b).sqrt();
    let mut z = vec![0.0; len];
    op.sym_gauss_seidel(&mut z, &r);
    let mut p = z.clone();
    let mut rz = dot(&r, &z);
    let mut ap = vec![0.0; len];
    let mut iters = 0;
    // 27-pt apply ≈ 54 flops/point; SGS ≈ 108; dots and axpys ≈ 10.
    let flops_per_iter = (54.0 + 108.0 + 10.0) * len as f64;
    while iters < max_iters && dot(&r, &r).sqrt() / norm_b > tol {
        op.apply(&p, &mut ap);
        let alpha = rz / dot(&p, &ap);
        for i in 0..len {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        z.fill(0.0);
        op.sym_gauss_seidel(&mut z, &r);
        let rz_new = dot(&r, &z);
        let beta = rz_new / rz;
        for i in 0..len {
            p[i] = z[i] + beta * p[i];
        }
        rz = rz_new;
        iters += 1;
    }
    let resid = dot(&r, &r).sqrt() / norm_b;
    (iters, resid, flops_per_iter * iters as f64)
}

pub struct Hpcg {
    pub n: usize,
}

impl Default for Hpcg {
    fn default() -> Self {
        Hpcg { n: 16 }
    }
}

impl Benchmark for Hpcg {
    fn meta(&self) -> BenchmarkMeta {
        suite_meta()
            .into_iter()
            .find(|m| m.id == BenchmarkId::Hpcg)
            .unwrap()
    }

    fn run(&self, cfg: &RunConfig) -> Result<RunOutcome, SuiteError> {
        self.validate_nodes(cfg.nodes)?;
        let machine = cfg.machine();
        // Full-scale model: HPCG is bandwidth-bound; halo + dots.
        let points_per_gpu = 104.0f64.powi(3); // standard local 104³ block
        let rank_dims = balanced_dims3(machine.devices());
        let timing = AppModel::new(machine, 500)
            .with_efficiencies(0.1, 0.85)
            .with_phase(Phase::compute(
                "stencil + sgs",
                Work::new(172.0 * points_per_gpu, 27.0 * 8.0 * points_per_gpu),
            ))
            .with_phase(Phase::comm(
                "halo",
                CommPattern::Halo3d {
                    rank_dims,
                    bytes_per_face: [(104.0f64 * 104.0 * 8.0) as u64; 3],
                },
            ))
            .with_phase(Phase::comm("dots", CommPattern::AllReduce { bytes: 8 }))
            .timing();

        // Real execution.
        let op = Stencil27 { n: self.n };
        let b = vec![1.0; op.len()];
        let start = Instant::now();
        let (iters, resid, flops) = hpcg_pcg(&op, &b, 1e-8, 200);
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        let rate = flops / elapsed;
        let verification = VerificationOutcome::tolerance(resid, 1e-8);
        let mut out = jubench_apps_common::outcome(
            timing,
            verification,
            vec![
                ("measured_flops".into(), rate),
                ("pcg_iterations".into(), iters as f64),
            ],
        );
        out.fom = Fom::Flops(rate);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jubench_cluster::Machine;

    #[test]
    fn stencil_row_sums() {
        // Interior rows sum to 26 − 26 = 0; the constant vector maps to
        // zero in the interior, positive on the boundary.
        let op = Stencil27 { n: 5 };
        let ones = vec![1.0; op.len()];
        let mut y = vec![0.0; op.len()];
        op.apply(&ones, &mut y);
        assert_eq!(y[op.idx(2, 2, 2)], 0.0);
        assert!(y[op.idx(0, 0, 0)] > 0.0);
    }

    #[test]
    fn preconditioned_cg_converges_fast() {
        let op = Stencil27 { n: 12 };
        let b = vec![1.0; op.len()];
        let (iters, resid, _) = hpcg_pcg(&op, &b, 1e-8, 100);
        assert!(resid <= 1e-8);
        assert!(iters < 40, "HPCG PCG took {iters} iterations");
    }

    #[test]
    fn sgs_smooths_the_residual() {
        let op = Stencil27 { n: 8 };
        let r = vec![1.0; op.len()];
        let mut z = vec![0.0; op.len()];
        op.sym_gauss_seidel(&mut z, &r);
        // One SGS application of an SPD M-matrix: z stays positive and
        // bounded by the diagonal solve range.
        assert!(z.iter().all(|&v| v > 0.0 && v < 2.0));
    }

    #[test]
    fn run_reports_flops_and_verifies() {
        let out = Hpcg { n: 10 }.run(&RunConfig::test(1)).unwrap();
        assert!(out.verification.passed());
        assert!(matches!(out.fom, Fom::Flops(f) if f > 0.0));
    }

    #[test]
    fn hpcg_fraction_of_peak_is_low() {
        // The point of HPCG: its model efficiency sits far below HPL's.
        let machine = Machine::juwels_booster();
        let out = Hpcg::default().run(&RunConfig::test(936)).unwrap();
        let points = 104.0f64.powi(3) * machine.devices() as f64;
        let rate = 172.0 * points * 500.0 / out.virtual_time_s;
        let frac = rate / machine.peak_flops();
        assert!(frac < 0.12, "HPCG fraction of peak {frac}");
    }
}
