//! IOR: the de-facto standard I/O benchmark, in its two suite variants
//! (§IV-B): *Easy* — 16 MiB transfers, each process writing its own file —
//! and *Hard* — 4 KiB transfers and blocks, all processes writing a
//! single shared file (stressing the lock path), with more than 64 nodes
//! required in Hard mode.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use jubench_core::{
    suite_meta, Benchmark, BenchmarkId, BenchmarkMeta, Fom, RunConfig, RunOutcome, SuiteError,
    VerificationOutcome,
};

/// Scratch-file disambiguator: concurrent IOR runs (parallel serve
/// shards, several backends at the same seed) must never share files,
/// or one run's read-back races another's write. The tag never reaches
/// any result byte — only the scratch file names.
static RUN_TAG: AtomicU64 = AtomicU64::new(0);

/// The two IOR sub-benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IorMode {
    /// 16 MiB transfer size, file per process.
    Easy,
    /// 4 KiB transfer and block size, single shared file.
    Hard,
}

impl IorMode {
    pub fn transfer_size(self) -> usize {
        match self {
            IorMode::Easy => 16 << 20,
            IorMode::Hard => 4 << 10,
        }
    }
}

/// Aggregate storage-module bandwidth model: per-node striping up to the
/// NVMe backend limit; the Hard pattern loses a lock-contention factor.
pub fn storage_bw(nodes: u32, mode: IorMode) -> f64 {
    let raw = (nodes as f64 * 2.0e9).min(400.0e9);
    match mode {
        IorMode::Easy => raw,
        IorMode::Hard => raw * 0.15,
    }
}

pub struct Ior {
    pub mode: IorMode,
    /// Simulated process count for the real execution (files/segments).
    pub processes: usize,
    /// Transfers per process in the real execution.
    pub transfers: usize,
}

impl Ior {
    pub fn easy() -> Self {
        Ior {
            mode: IorMode::Easy,
            processes: 4,
            transfers: 4,
        }
    }

    pub fn hard() -> Self {
        Ior {
            mode: IorMode::Hard,
            processes: 4,
            transfers: 64,
        }
    }

    fn scratch_dir(&self) -> PathBuf {
        std::env::temp_dir().join("jubench-ior")
    }

    /// Deterministic page content for verification.
    fn pattern(process: usize, transfer: usize, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| ((process * 131 + transfer * 17 + i) % 251) as u8)
            .collect()
    }

    /// Run the real I/O: write, then read back and verify; returns
    /// (write B/s, read B/s, bytes moved).
    fn run_io(&self, seed: u64) -> Result<(f64, f64, u64), SuiteError> {
        // The Easy transfer size is scaled down for the scratch run; the
        // access *pattern* (file-per-process vs shared file, transfer
        // granularity ratio) is preserved.
        let transfer = match self.mode {
            IorMode::Easy => 256 << 10,
            IorMode::Hard => 4 << 10,
        };
        let dir = self.scratch_dir();
        std::fs::create_dir_all(&dir)?;
        let tag = format!(
            "{}-{seed}-{}",
            std::process::id(),
            RUN_TAG.fetch_add(1, Ordering::Relaxed)
        );
        let total_bytes = (self.processes * self.transfers * transfer) as u64;

        let t_write = Instant::now();
        match self.mode {
            IorMode::Easy => {
                for p in 0..self.processes {
                    let mut f = File::create(dir.join(format!("easy-{tag}-{p}.dat")))?;
                    for t in 0..self.transfers {
                        f.write_all(&Self::pattern(p, t, transfer))?;
                    }
                    f.sync_all()?;
                }
            }
            IorMode::Hard => {
                let path = dir.join(format!("hard-{tag}.dat"));
                let mut f = File::create(&path)?;
                // Interleaved segments: all processes share the file, with
                // adjacent 4 KiB blocks belonging to different processes
                // (the same-filesystem-block contention the paper uses).
                for t in 0..self.transfers {
                    for p in 0..self.processes {
                        let offset = ((t * self.processes + p) * transfer) as u64;
                        f.seek(SeekFrom::Start(offset))?;
                        f.write_all(&Self::pattern(p, t, transfer))?;
                    }
                }
                f.sync_all()?;
            }
        }
        let write_s = t_write.elapsed().as_secs_f64().max(1e-9);

        let t_read = Instant::now();
        let mut buf = vec![0u8; transfer];
        match self.mode {
            IorMode::Easy => {
                for p in 0..self.processes {
                    let mut f = File::open(dir.join(format!("easy-{tag}-{p}.dat")))?;
                    for t in 0..self.transfers {
                        f.read_exact(&mut buf)?;
                        if buf != Self::pattern(p, t, transfer) {
                            return Err(SuiteError::VerificationFailed {
                                benchmark: "IOR",
                                detail: format!("easy data mismatch at p{p} t{t}"),
                            });
                        }
                    }
                }
            }
            IorMode::Hard => {
                let mut f = OpenOptions::new()
                    .read(true)
                    .open(dir.join(format!("hard-{tag}.dat")))?;
                for t in 0..self.transfers {
                    for p in 0..self.processes {
                        let offset = ((t * self.processes + p) * transfer) as u64;
                        f.seek(SeekFrom::Start(offset))?;
                        f.read_exact(&mut buf)?;
                        if buf != Self::pattern(p, t, transfer) {
                            return Err(SuiteError::VerificationFailed {
                                benchmark: "IOR",
                                detail: format!("hard data mismatch at p{p} t{t}"),
                            });
                        }
                    }
                }
            }
        }
        let read_s = t_read.elapsed().as_secs_f64().max(1e-9);

        // Cleanup.
        match self.mode {
            IorMode::Easy => {
                for p in 0..self.processes {
                    std::fs::remove_file(dir.join(format!("easy-{tag}-{p}.dat"))).ok();
                }
            }
            IorMode::Hard => {
                std::fs::remove_file(dir.join(format!("hard-{tag}.dat"))).ok();
            }
        }
        Ok((
            total_bytes as f64 / write_s,
            total_bytes as f64 / read_s,
            2 * total_bytes,
        ))
    }
}

impl Benchmark for Ior {
    fn meta(&self) -> BenchmarkMeta {
        suite_meta()
            .into_iter()
            .find(|m| m.id == BenchmarkId::Ior)
            .unwrap()
    }

    fn validate_nodes(&self, nodes: u32) -> Result<(), SuiteError> {
        if nodes == 0 {
            return Err(SuiteError::InvalidNodeCount {
                benchmark: "IOR",
                nodes,
                reason: "node count must be positive".into(),
            });
        }
        // "In hard, it can also be chosen freely, as long as more than 64
        // nodes are taken."
        if self.mode == IorMode::Hard && nodes <= 64 {
            return Err(SuiteError::RuleViolation {
                benchmark: "IOR",
                rule: format!("the hard variant requires more than 64 nodes (got {nodes})"),
            });
        }
        Ok(())
    }

    fn run(&self, cfg: &RunConfig) -> Result<RunOutcome, SuiteError> {
        self.validate_nodes(cfg.nodes)?;
        let (write_bw, read_bw, bytes) = self.run_io(cfg.seed)?;
        // Modeled storage-module rates at the requested node count.
        let model_bw = storage_bw(cfg.nodes, self.mode);
        let virtual_time = 2.0 * (100u64 << 30) as f64 / model_bw; // 100 GiB each way
        Ok(RunOutcome {
            fom: Fom::BytesPerSecond(write_bw.min(read_bw)),
            virtual_time_s: virtual_time,
            compute_time_s: 0.0,
            comm_time_s: virtual_time,
            verification: VerificationOutcome::Exact {
                checked_values: bytes as usize / 2,
            },
            metrics: vec![
                ("write_bw".into(), write_bw),
                ("read_bw".into(), read_bw),
                ("modeled_storage_bw".into(), model_bw),
            ],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn easy_mode_round_trips() {
        let out = Ior::easy().run(&RunConfig::test(8)).unwrap();
        assert!(out.verification.passed());
        assert!(out.metric("write_bw").unwrap() > 0.0);
        assert!(out.metric("read_bw").unwrap() > 0.0);
    }

    #[test]
    fn hard_mode_requires_more_than_64_nodes() {
        let err = Ior::hard().run(&RunConfig::test(64)).unwrap_err();
        assert!(matches!(err, SuiteError::RuleViolation { .. }));
        let out = Ior::hard().run(&RunConfig::test(65)).unwrap();
        assert!(out.verification.passed());
    }

    #[test]
    fn transfer_sizes_match_paper() {
        assert_eq!(IorMode::Easy.transfer_size(), 16 << 20);
        assert_eq!(IorMode::Hard.transfer_size(), 4 << 10);
    }

    #[test]
    fn hard_pattern_is_slower_in_the_model() {
        assert!(storage_bw(100, IorMode::Hard) < storage_bw(100, IorMode::Easy) / 2.0);
    }

    #[test]
    fn model_saturates_the_backend() {
        assert_eq!(storage_bw(500, IorMode::Easy), 400.0e9);
        assert!(storage_bw(10, IorMode::Easy) < 400.0e9);
    }

    #[test]
    fn corrupted_file_fails_verification() {
        // Write through the benchmark, corrupt the file, and read back via
        // the internal path by re-running only the read: emulate by
        // writing a fresh run then flipping a byte before the read — here
        // we simply check the pattern helper is position sensitive.
        let a = Ior::pattern(1, 2, 64);
        let b = Ior::pattern(1, 3, 64);
        assert_ne!(a, b);
    }
}
