//! LinkTest: point-to-point connection testing; the suite uses the
//! **bisection test** — processes split into two halves exchange 16 MiB
//! messages bidirectionally, and the FOM is the minimum bisection
//! bandwidth (§IV-B).

use jubench_cluster::{Distance, Machine, NetModel, Placement, Topology};
use jubench_core::{
    suite_meta, Benchmark, BenchmarkId, BenchmarkMeta, Fom, RunConfig, RunOutcome, SuiteError,
    VerificationOutcome,
};
use jubench_simmpi::{ClockStats, World};

/// "To achieve optimal bandwidth, the message size is set to 16 MiB."
pub const MESSAGE_BYTES: u64 = 16 << 20;

pub struct LinkTest;

impl LinkTest {
    /// The modeled per-pair bisection bandwidth for a partition: each rank
    /// exchanges 16 MiB bidirectionally with its partner in the other
    /// half; returns (min pair bandwidth, aggregate bisection bandwidth).
    pub fn model(machine: Machine) -> (f64, f64) {
        let placement = Placement::per_gpu(machine);
        let net = NetModel::juwels_booster();
        let p = placement.ranks();
        let mut min_bw = f64::INFINITY;
        for r in 0..p / 2 {
            let partner = r + p / 2;
            let t = net.ptp_time(
                2 * MESSAGE_BYTES,
                placement.distance(r, partner),
                machine.nodes,
            );
            min_bw = min_bw.min(2.0 * MESSAGE_BYTES as f64 / t);
        }
        let aggregate = Topology::new(machine).bisection_bandwidth();
        (min_bw, aggregate)
    }
}

impl Benchmark for LinkTest {
    fn meta(&self) -> BenchmarkMeta {
        suite_meta()
            .into_iter()
            .find(|m| m.id == BenchmarkId::LinkTest)
            .unwrap()
    }

    fn validate_nodes(&self, nodes: u32) -> Result<(), SuiteError> {
        if nodes < 2 || !nodes.is_multiple_of(2) {
            return Err(SuiteError::InvalidNodeCount {
                benchmark: "LinkTest",
                nodes,
                reason: "the bisection test needs an even number of ≥ 2 nodes".into(),
            });
        }
        Ok(())
    }

    fn run(&self, cfg: &RunConfig) -> Result<RunOutcome, SuiteError> {
        self.validate_nodes(cfg.nodes)?;
        let machine = cfg.machine();
        let (min_pair_bw, aggregate) = Self::model(machine);

        // Real execution: the actual bisection exchange through simmpi on
        // a reduced message size; verify payload integrity and measure the
        // virtual pair bandwidth.
        let world = jubench_apps_common::real_exec_world(machine);
        let bytes = 1 << 16;
        let results = world.run(move |comm| {
            let p = comm.size();
            let half = p / 2;
            let partner = if comm.rank() < half {
                comm.rank() + half
            } else {
                comm.rank() - half
            };
            let payload: Vec<f64> = (0..bytes / 8)
                .map(|i| (comm.rank() as f64) + i as f64)
                .collect();
            let before = comm.now();
            let got = comm.sendrecv_f64(partner, &payload).unwrap();
            let elapsed = comm.now() - before;
            let expect_head = partner as f64;
            let ok = got[0] == expect_head && got.len() == payload.len();
            (ok, 2.0 * bytes as f64 / elapsed)
        });
        let all_ok = results.iter().all(|r| r.value.0);
        let measured_min = results
            .iter()
            .map(|r| r.value.1)
            .fold(f64::INFINITY, f64::min);
        let verification = if all_ok {
            VerificationOutcome::Exact {
                checked_values: results.len(),
            }
        } else {
            VerificationOutcome::Failed {
                detail: "bisection payload mismatch".into(),
            }
        };
        let virtual_time = 2.0 * MESSAGE_BYTES as f64 / min_pair_bw;
        let clock = ClockStats {
            compute_s: 0.0,
            comm_s: virtual_time,
        };
        Ok(RunOutcome {
            fom: Fom::BytesPerSecond(min_pair_bw),
            virtual_time_s: clock.total_s(),
            compute_time_s: 0.0,
            comm_time_s: clock.comm_s,
            verification,
            metrics: vec![
                ("min_pair_bw".into(), min_pair_bw),
                ("aggregate_bisection_bw".into(), aggregate),
                ("real_exec_min_pair_bw".into(), measured_min),
            ],
        })
    }
}

/// LinkTest's *serial* mode (the paper: "designed to test point-to-point
/// connections between processes in serial or parallel mode [...] used
/// mostly internally by system administrators for acceptance testing,
/// maintenance, and troubleshooting"): rank 0 ping-pongs every other rank
/// one at a time and reports the per-link bandwidth, exposing degraded
/// links.
pub fn serial_scan(world: &World, bytes: usize) -> Vec<(u32, f64)> {
    let results = world.run(move |comm| {
        let p = comm.size();
        let mut bws = Vec::new();
        if comm.rank() == 0 {
            for peer in 1..p {
                let payload = vec![0.0f64; bytes / 8];
                let before = comm.now();
                comm.send_f64(peer, &payload).unwrap();
                let _ = comm.recv_f64(peer).unwrap();
                let rtt = comm.now() - before;
                bws.push((peer, 2.0 * bytes as f64 / rtt));
            }
        } else {
            let echo = comm.recv_f64(0).unwrap();
            comm.send_f64(0, &echo).unwrap();
        }
        bws
    });
    results.into_iter().next().unwrap().value
}

/// LinkTest's exhaustive *parallel* mode: ping-pong every unordered rank
/// pair on a deterministic schedule (pair `(a, b)` is probed by rank `a`).
/// A barrier levels all virtual clocks before each probe — without it, a
/// slow probe leaves its participants' clocks ahead, and later probes
/// against them would measure causality waits instead of link speed.
/// Returns the per-pair bandwidth, ordered lexicographically by pair.
pub fn all_pairs_scan(world: &World, bytes: usize) -> Vec<((u32, u32), f64)> {
    let results = world.run(move |comm| {
        let p = comm.size();
        let me = comm.rank();
        let mut bws = Vec::new();
        for a in 0..p {
            for b in (a + 1)..p {
                comm.barrier();
                if me == a {
                    let payload = vec![0.0f64; bytes / 8];
                    let before = comm.now();
                    comm.send_f64(b, &payload).unwrap();
                    let _ = comm.recv_f64(b).unwrap();
                    let rtt = comm.now() - before;
                    bws.push(((a, b), 2.0 * bytes as f64 / rtt));
                } else if me == b {
                    let echo = comm.recv_f64(a).unwrap();
                    comm.send_f64(a, &echo).unwrap();
                }
            }
        }
        bws
    });
    results.into_iter().flat_map(|r| r.value).collect()
}

/// Localize degraded links in an [`all_pairs_scan`]: flag every pair
/// whose bandwidth falls below `fraction` of the **median of its own
/// topology distance class**. Comparing within a class is what keeps a
/// healthy inter-node link from being flagged merely because intra-node
/// links are faster. Returns the flagged pairs, sorted — directly
/// comparable to `FaultPlan::degraded_pairs()`.
pub fn detect_degraded_links(
    world: &World,
    scan: &[((u32, u32), f64)],
    fraction: f64,
) -> Vec<(u32, u32)> {
    let map = world.rank_map();
    let class = |a: u32, b: u32| -> usize {
        match map.distance(a, b) {
            Distance::SameDevice => 0,
            Distance::IntraNode => 1,
            Distance::IntraCell => 2,
            Distance::InterCell => 3,
            Distance::InterModule => 4,
        }
    };
    let mut per_class: [Vec<f64>; 5] = Default::default();
    for &((a, b), bw) in scan {
        per_class[class(a, b)].push(bw);
    }
    let medians: Vec<Option<f64>> = per_class
        .iter_mut()
        .map(|v| {
            if v.is_empty() {
                None
            } else {
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                Some(v[v.len() / 2])
            }
        })
        .collect();
    let mut flagged: Vec<(u32, u32)> = scan
        .iter()
        .filter(|&&((a, b), bw)| medians[class(a, b)].is_some_and(|m| bw < fraction * m))
        .map(|&(pair, _)| pair)
        .collect();
    flagged.sort_unstable();
    flagged
}

/// Flag links whose bandwidth falls below `fraction` of the median of
/// their scan.
pub fn slow_links(scan: &[(u32, f64)], fraction: f64) -> Vec<u32> {
    let mut sorted: Vec<f64> = scan.iter().map(|&(_, bw)| bw).collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    scan.iter()
        .filter(|&&(_, bw)| bw < fraction * median)
        .map(|&(peer, _)| peer)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bisection_runs_and_verifies() {
        let out = LinkTest.run(&RunConfig::test(4)).unwrap();
        assert!(out.verification.passed());
        assert!(matches!(out.fom, Fom::BytesPerSecond(b) if b > 0.0));
    }

    #[test]
    fn odd_node_counts_rejected() {
        assert!(LinkTest.run(&RunConfig::test(5)).is_err());
        assert!(LinkTest.run(&RunConfig::test(1)).is_err());
    }

    #[test]
    fn cross_cell_bisection_is_slower() {
        let (single_cell, _) = LinkTest::model(Machine::juwels_booster().partition(48));
        let (multi_cell, _) = LinkTest::model(Machine::juwels_booster().partition(936));
        assert!(multi_cell < single_cell, "{multi_cell} !< {single_cell}");
    }

    #[test]
    fn serial_scan_reports_every_link() {
        let world = World::new(Machine::juwels_booster().partition(2));
        let scan = serial_scan(&world, 1 << 16);
        assert_eq!(scan.len(), 7, "rank 0 probes the 7 peers");
        // Intra-node peers (1-3) are faster than inter-node peers (4-7).
        let intra = scan[0].1;
        let inter = scan.last().unwrap().1;
        assert!(intra > inter);
        assert!(slow_links(&scan, 0.05).is_empty(), "healthy system");
    }

    #[test]
    fn degraded_link_is_localized() {
        // A failing cable between rank 0 and rank 5: the serial scan must
        // single out exactly that peer.
        let plan = jubench_faults::FaultPlan::new(0).with_degraded_link(0, 5, 20.0);
        let world = World::new(Machine::juwels_booster().partition(2)).with_fault_plan(plan);
        let scan = serial_scan(&world, 1 << 16);
        let flagged = slow_links(&scan, 0.2);
        assert_eq!(flagged, vec![5], "scan: {scan:?}");
    }

    #[test]
    fn all_pairs_scan_detects_every_injected_link() {
        use jubench_faults::FaultPlan;
        // Three bad cables at once — one intra-node, two inter-node. The
        // exhaustive scan must recover exactly the injected set, no more.
        let plan = FaultPlan::new(3)
            .with_degraded_link(0, 5, 20.0)
            .with_degraded_link(1, 3, 20.0)
            .with_degraded_link(2, 6, 20.0);
        let world = World::new(Machine::juwels_booster().partition(2)).with_fault_plan(plan);
        let scan = all_pairs_scan(&world, 1 << 16);
        assert_eq!(scan.len(), 8 * 7 / 2, "every unordered pair probed");
        let detected = detect_degraded_links(&world, &scan, 0.2);
        let injected = world.fault_plan().unwrap().degraded_pairs();
        assert_eq!(detected, injected, "scan: {scan:?}");
    }

    #[test]
    fn all_pairs_scan_is_clean_on_a_healthy_world() {
        let world = World::new(Machine::juwels_booster().partition(2));
        let scan = all_pairs_scan(&world, 1 << 16);
        assert!(detect_degraded_links(&world, &scan, 0.2).is_empty());
    }

    #[test]
    fn aggregate_grows_with_machine() {
        let (_, small) = LinkTest::model(Machine::juwels_booster().partition(96));
        let (_, large) = LinkTest::model(Machine::juwels_booster());
        assert!(large > small);
    }
}
