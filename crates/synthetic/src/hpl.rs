//! HPL: the High-Performance Linpack — dense LU factorization with
//! partial pivoting, FOM in FLOP/s, with the standard residual check.

use std::time::Instant;

use jubench_apps_common::{AppModel, Phase};
use jubench_cluster::{CommPattern, Work};
use jubench_core::{
    suite_meta, Benchmark, BenchmarkId, BenchmarkMeta, Fom, RunConfig, RunOutcome, SuiteError,
    VerificationOutcome,
};
use jubench_kernels::linalg::residual_inf;
use jubench_kernels::{lu_factor, lu_solve, rank_rng, Matrix};

pub struct Hpl {
    /// Local problem order for the real execution.
    pub n: usize,
}

impl Default for Hpl {
    fn default() -> Self {
        Hpl { n: 96 }
    }
}

/// LU flop count: 2n³/3 + 2n².
pub fn hpl_flops(n: f64) -> f64 {
    2.0 * n * n * n / 3.0 + 2.0 * n * n
}

impl Benchmark for Hpl {
    fn meta(&self) -> BenchmarkMeta {
        suite_meta()
            .into_iter()
            .find(|m| m.id == BenchmarkId::Hpl)
            .unwrap()
    }

    fn run(&self, cfg: &RunConfig) -> Result<RunOutcome, SuiteError> {
        self.validate_nodes(cfg.nodes)?;
        let machine = cfg.machine();
        // Full-machine model: matrix sized to ~80 % of aggregate memory,
        // panel broadcasts + row swaps dominate communication.
        let mem = machine.gpu_memory_bytes() as f64 * 0.8;
        let n_full = (mem / 8.0).sqrt();
        let devices = machine.devices() as f64;
        let timing = AppModel::new(machine, 100)
            .with_efficiencies(0.75, 0.85)
            .with_phase(Phase::compute(
                "panel + update",
                Work::new(
                    hpl_flops(n_full) / devices / 100.0,
                    n_full * n_full * 8.0 / devices / 100.0,
                ),
            ))
            .with_phase(Phase::comm(
                "panel broadcast",
                CommPattern::AllGather {
                    bytes_per_rank: (n_full * 8.0 / devices) as u64,
                },
            ))
            .timing();

        // Real execution: factor, solve, verify the residual.
        let n = self.n;
        let mut rng = rank_rng(cfg.seed, 0);
        let a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-0.5..0.5));
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let start = Instant::now();
        let f = lu_factor(&a).ok_or(SuiteError::VerificationFailed {
            benchmark: "HPL",
            detail: "matrix unexpectedly singular".into(),
        })?;
        let x = lu_solve(&f, &b);
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        let flops = hpl_flops(n as f64) / elapsed;
        // HPL acceptance: ‖Ax − b‖∞ / (ε‖A‖‖x‖n) = O(1); we use a direct
        // scaled residual bound.
        let resid = residual_inf(&a, &x, &b);
        let scale = a.max_abs() * x.iter().fold(0.0f64, |m, v| m.max(v.abs())) * n as f64;
        let scaled = resid / (f64::EPSILON * scale.max(1e-300));
        let verification = VerificationOutcome::tolerance(scaled, 100.0);
        let mut out = jubench_apps_common::outcome(
            timing,
            verification,
            vec![
                ("measured_flops".into(), flops),
                ("scaled_residual".into(), scaled),
            ],
        );
        out.fom = Fom::Flops(flops);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jubench_cluster::Machine;

    #[test]
    fn run_passes_residual_check() {
        let out = Hpl::default().run(&RunConfig::test(1)).unwrap();
        assert!(out.verification.passed());
        assert!(matches!(out.fom, Fom::Flops(f) if f > 0.0));
        assert!(out.metric("scaled_residual").unwrap() < 100.0);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(hpl_flops(3.0), 18.0 + 18.0);
        assert!((hpl_flops(1000.0) - (2e9 / 3.0 + 2e6)).abs() < 1.0);
    }

    #[test]
    fn model_peaks_near_machine_peak() {
        // The HPL model on the full Booster should predict a virtual rate
        // in the right regime: a decent fraction of FP64 vector peak.
        let m = Machine::juwels_booster();
        let out = Hpl::default().run(&RunConfig::test(936)).unwrap();
        let n_full = ((m.gpu_memory_bytes() as f64 * 0.8) / 8.0).sqrt();
        let rate = hpl_flops(n_full) / out.virtual_time_s;
        let frac = rate / m.peak_flops();
        assert!((0.3..=0.95).contains(&frac), "HPL efficiency {frac}");
    }
}
