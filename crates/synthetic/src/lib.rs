//! # jubench-synthetic
//!
//! The seven synthetic benchmarks of the suite (§IV-B), "selected to test
//! individual features of the hardware components, such as compute
//! performance, memory bandwidth, I/O throughput, and network design":
//!
//! | Benchmark | Feature | Implementation here |
//! |---|---|---|
//! | Graph500 | graph traversal | Kronecker (R-MAT) generator + level-synchronized BFS with parent-tree validation |
//! | HPCG | sparse LA | CG with a symmetric-Gauss-Seidel-smoothed operator on the 27-point stencil |
//! | HPL | dense LA | blocked LU with partial pivoting + residual check |
//! | IOR | filesystem | easy (16 MiB transfers, file-per-process) and hard (4 KiB shared-file) modes |
//! | LinkTest | network topology | bisection test on the modeled DragonFly+ topology |
//! | OSU | point-to-point | latency/bandwidth sweeps through the simulated MPI layer |
//! | STREAM | memory | copy/scale/add/triad kernels (CPU measured, GPU modeled) |

pub mod graph500;
pub mod hpcg;
pub mod hpl;
pub mod ior;
pub mod linktest;
pub mod osu;
pub mod stream;

pub use graph500::Graph500;
pub use hpcg::Hpcg;
pub use hpl::Hpl;
pub use ior::{Ior, IorMode};
pub use linktest::LinkTest;
pub use osu::Osu;
pub use stream::Stream;
