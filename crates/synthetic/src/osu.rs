//! OSU micro-benchmarks: point-to-point latency and bandwidth sweeps over
//! message sizes, run through the simulated MPI layer (virtual time).

use jubench_cluster::Machine;
use jubench_core::{
    suite_meta, Benchmark, BenchmarkId, BenchmarkMeta, Fom, RunConfig, RunOutcome, SuiteError,
    VerificationOutcome,
};
use jubench_simmpi::{ClockStats, World};

/// One point of the OSU sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsuPoint {
    pub bytes: u64,
    /// One-way latency in seconds (half the ping-pong round trip).
    pub latency_s: f64,
    /// Uni-directional bandwidth in bytes/s.
    pub bandwidth: f64,
}

/// Ping-pong between ranks 0 and `partner` over the virtual network.
pub fn pingpong_sweep(machine: Machine, partner: u32, sizes: &[u64]) -> Vec<OsuPoint> {
    let world = World::new(machine);
    assert!(partner > 0 && partner < world.ranks());
    let sizes = sizes.to_vec();
    let results = world.run(move |comm| {
        let mut points = Vec::new();
        if comm.rank() == 0 {
            for &bytes in &sizes {
                let payload = vec![0.0f64; (bytes / 8) as usize];
                let before = comm.now();
                comm.send_f64(partner, &payload).unwrap();
                let _ = comm.recv_f64(partner).unwrap();
                let rtt = comm.now() - before;
                points.push(OsuPoint {
                    bytes,
                    latency_s: rtt / 2.0,
                    bandwidth: bytes as f64 / (rtt / 2.0),
                });
            }
        } else if comm.rank() == partner {
            for &bytes in &sizes {
                let _ = bytes;
                let echo = comm.recv_f64(0).unwrap();
                comm.send_f64(0, &echo).unwrap();
            }
        }
        points
    });
    results.into_iter().find(|r| r.rank == 0).unwrap().value
}

/// OSU-style collective sweep: mean virtual latency of a ring allreduce
/// per message size.
pub fn allreduce_sweep(machine: Machine, sizes: &[usize]) -> Vec<(usize, f64)> {
    let world = World::new(machine);
    let sizes = sizes.to_vec();
    let results = world.run(move |comm| {
        let mut points = Vec::new();
        for &n in &sizes {
            let mut buf = vec![1.0f64; n / 8];
            let before = comm.now();
            comm.allreduce_f64(&mut buf, jubench_simmpi::ReduceOp::Sum)
                .unwrap();
            points.push((n, comm.now() - before));
        }
        points
    });
    // The collective completes when the slowest rank does.
    let mut out = results[0].value.clone();
    for r in &results[1..] {
        for (slot, &(_, t)) in out.iter_mut().zip(&r.value) {
            if t > slot.1 {
                slot.1 = t;
            }
        }
    }
    out
}

pub struct Osu;

impl Benchmark for Osu {
    fn meta(&self) -> BenchmarkMeta {
        suite_meta()
            .into_iter()
            .find(|m| m.id == BenchmarkId::Osu)
            .unwrap()
    }

    fn run(&self, cfg: &RunConfig) -> Result<RunOutcome, SuiteError> {
        self.validate_nodes(cfg.nodes)?;
        // A single-device node has no intra-node pair; span two nodes of
        // the backend so the sweep still has a rank pair to measure.
        let span = if cfg.backend.node.gpus_per_node >= 2 {
            cfg.nodes.min(2)
        } else {
            cfg.backend.nodes.min(2)
        };
        let machine = cfg.backend.partition(span);
        // Intra-node pair (ranks 0-1) where the node hosts several
        // devices, and, with 2 nodes, inter-node pair (rank 0 to the
        // first rank of node 1 — rank layout is node-major).
        let devices_per_node = machine.node.gpus_per_node;
        let sizes = [8u64, 1 << 10, 1 << 16, 1 << 20, 4 << 20];
        let intra = if devices_per_node >= 2 {
            Some(pingpong_sweep(machine, 1, &sizes))
        } else {
            None
        };
        let inter = if machine.nodes >= 2 {
            Some(pingpong_sweep(machine, devices_per_node, &sizes))
        } else {
            None
        };
        let first = match intra.as_ref().or(inter.as_ref()) {
            Some(points) => points,
            None => {
                return Err(SuiteError::InvalidNodeCount {
                    benchmark: "OSU",
                    nodes: cfg.nodes,
                    reason: "OSU needs a rank pair: several devices per node, or two nodes".into(),
                })
            }
        };
        let small_latency = first[0].latency_s;
        let mut metrics = Vec::new();
        let mut verification_ok = first
            .windows(2)
            .all(|w| w[1].bandwidth >= w[0].bandwidth * 0.5);
        if let Some(ref intra) = intra {
            metrics.push(("intra_latency_8b".into(), intra[0].latency_s));
            metrics.push(("intra_bw_4mib".into(), intra.last().unwrap().bandwidth));
        }
        if let Some(ref inter) = inter {
            metrics.push(("inter_latency_8b".into(), inter[0].latency_s));
            metrics.push(("inter_bw_4mib".into(), inter.last().unwrap().bandwidth));
            if let Some(ref intra) = intra {
                // The physics the benchmark exists to check: inter-node
                // is slower than intra-node.
                verification_ok &= inter[0].latency_s > intra[0].latency_s;
                verification_ok &=
                    inter.last().unwrap().bandwidth < intra.last().unwrap().bandwidth;
            }
        }
        let verification = if verification_ok {
            VerificationOutcome::KeyMetrics {
                metrics: vec![("latency_ordering".into(), 1.0, 1.0)],
            }
        } else {
            VerificationOutcome::Failed {
                detail: "latency/bandwidth ordering violated".into(),
            }
        };
        let clock = ClockStats {
            compute_s: 0.0,
            comm_s: small_latency,
        };
        Ok(RunOutcome {
            fom: Fom::LatencySeconds(small_latency),
            virtual_time_s: clock.total_s(),
            compute_time_s: 0.0,
            comm_time_s: clock.comm_s,
            verification,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_dominates_small_bandwidth_dominates_large() {
        let points = pingpong_sweep(Machine::juwels_booster().partition(1), 1, &[8, 1 << 20]);
        assert!(points[0].latency_s < points[1].latency_s);
        assert!(points[1].bandwidth > points[0].bandwidth);
    }

    #[test]
    fn inter_node_slower_than_intra_node() {
        let m = Machine::juwels_booster().partition(2);
        let intra = pingpong_sweep(m, 1, &[1 << 20]);
        let inter = pingpong_sweep(m, 4, &[1 << 20]);
        assert!(inter[0].bandwidth < intra[0].bandwidth);
    }

    #[test]
    fn run_verifies_orderings() {
        let out = Osu.run(&RunConfig::test(2)).unwrap();
        assert!(out.verification.passed());
        assert!(out.metric("inter_latency_8b").unwrap() > out.metric("intra_latency_8b").unwrap());
        assert!(matches!(out.fom, Fom::LatencySeconds(l) if l > 0.0));
        assert!(!out.fom.higher_is_better());
    }

    #[test]
    fn allreduce_latency_grows_with_scale_and_size() {
        let sizes = [64usize, 1 << 16];
        let small = allreduce_sweep(Machine::juwels_booster().partition(1), &sizes);
        let large = allreduce_sweep(Machine::juwels_booster().partition(4), &sizes);
        // More ranks → more ring steps; bigger payloads → longer.
        assert!(large[0].1 > small[0].1);
        assert!(small[1].1 > small[0].1);
        // Correctness of the sweep's collective itself is covered by the
        // simmpi tests; here the sizes must be echoed back.
        assert_eq!(small[0].0, 64);
    }

    #[test]
    fn single_node_run_skips_inter_metrics() {
        let out = Osu.run(&RunConfig::test(1)).unwrap();
        assert!(out.metric("inter_latency_8b").is_none());
        assert!(out.verification.passed());
    }
}
