//! Graph500: breadth-first search on a Kronecker (R-MAT) graph, FOM in
//! traversed edges per second (TEPS).

use std::time::Instant;

use jubench_apps_common::{AppModel, Phase};
use jubench_cluster::{CommPattern, Work};
use jubench_core::{
    suite_meta, Benchmark, BenchmarkId, BenchmarkMeta, Fom, RunConfig, RunOutcome, SuiteError,
    VerificationOutcome,
};
use jubench_kernels::rank_rng;

/// The Graph500 R-MAT parameters (A, B, C; D = 1 − A − B − C).
const RMAT: [f64; 3] = [0.57, 0.19, 0.19];
/// Edge factor: edges = 16 × vertices.
pub const EDGE_FACTOR: usize = 16;

/// Generate a Kronecker graph of 2^scale vertices as an edge list.
pub fn kronecker_edges(scale: u32, seed: u64) -> Vec<(u32, u32)> {
    let vertices = 1u32 << scale;
    let edges = vertices as usize * EDGE_FACTOR;
    let mut rng = rank_rng(seed, 0);
    let mut list = Vec::with_capacity(edges);
    for _ in 0..edges {
        let mut u = 0u32;
        let mut v = 0u32;
        for bit in (0..scale).rev() {
            let r: f64 = rng.gen();
            let (du, dv) = if r < RMAT[0] {
                (0, 0)
            } else if r < RMAT[0] + RMAT[1] {
                (0, 1)
            } else if r < RMAT[0] + RMAT[1] + RMAT[2] {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << bit;
            v |= dv << bit;
        }
        list.push((u, v));
    }
    list
}

/// Compressed adjacency built from an edge list (undirected).
pub struct Csr {
    pub offsets: Vec<usize>,
    pub targets: Vec<u32>,
    pub vertices: u32,
}

impl Csr {
    pub fn from_edges(vertices: u32, edges: &[(u32, u32)]) -> Self {
        let mut degree = vec![0usize; vertices as usize];
        for &(u, v) in edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0usize; vertices as usize + 1];
        for i in 0..vertices as usize {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut targets = vec![0u32; offsets[vertices as usize]];
        let mut cursor = offsets.clone();
        for &(u, v) in edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        Csr {
            offsets,
            targets,
            vertices,
        }
    }

    pub fn neighbours(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize]..self.offsets[v as usize + 1]]
    }
}

/// Level-synchronized BFS; returns the parent array (u32::MAX =
/// unreached, root is its own parent) and the number of traversed edges.
pub fn bfs(csr: &Csr, root: u32) -> (Vec<u32>, u64) {
    let mut parent = vec![u32::MAX; csr.vertices as usize];
    parent[root as usize] = root;
    let mut frontier = vec![root];
    let mut traversed = 0u64;
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in csr.neighbours(u) {
                traversed += 1;
                if parent[v as usize] == u32::MAX {
                    parent[v as usize] = u;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    (parent, traversed)
}

/// Graph500 result validation: the parent tree must be rooted correctly,
/// every tree edge must exist in the graph, and reachability must match.
pub fn validate_bfs(csr: &Csr, root: u32, parent: &[u32]) -> Result<(), String> {
    if parent[root as usize] != root {
        return Err("root is not its own parent".into());
    }
    for v in 0..csr.vertices {
        let p = parent[v as usize];
        if p == u32::MAX || v == root {
            continue;
        }
        if !csr.neighbours(v).contains(&p) {
            return Err(format!("tree edge {v} → {p} is not a graph edge"));
        }
        // Walk to the root with a bound (no cycles).
        let mut cur = v;
        for _ in 0..=csr.vertices {
            if cur == root {
                break;
            }
            cur = parent[cur as usize];
            if cur == u32::MAX {
                return Err(format!("vertex {v} does not reach the root"));
            }
        }
        if cur != root {
            return Err(format!("cycle in the parent tree at {v}"));
        }
    }
    Ok(())
}

/// Distributed level-synchronized BFS over simulated MPI: vertices are
/// block-partitioned over the ranks; every level, candidate (vertex,
/// parent) pairs discovered on remote frontiers move through a
/// personalized all-to-all — the Graph500 reference algorithm's
/// communication structure.
///
/// Returns this rank's slice of the parent array and the number of edges
/// it traversed.
pub fn dist_bfs(
    comm: &mut jubench_simmpi::Comm,
    vertices: u32,
    edges: &[(u32, u32)],
    root: u32,
) -> (Vec<u32>, u64) {
    let p = comm.size();
    let chunk = vertices.div_ceil(p);
    let owner = |v: u32| (v / chunk).min(p - 1);
    let lo = comm.rank() * chunk;
    let hi = ((comm.rank() + 1) * chunk).min(vertices);
    // Local adjacency of owned vertices (undirected).
    let local_csr = {
        let mut filtered = Vec::new();
        for &(u, v) in edges {
            if owner(u) == comm.rank() {
                filtered.push((u - lo, v));
            }
            if owner(v) == comm.rank() {
                filtered.push((v - lo, u));
            }
        }
        let n = hi.saturating_sub(lo);
        let mut degree = vec![0usize; n as usize];
        for &(u, _) in &filtered {
            degree[u as usize] += 1;
        }
        let mut offsets = vec![0usize; n as usize + 1];
        for i in 0..n as usize {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut targets = vec![0u32; offsets[n as usize]];
        let mut cursor = offsets.clone();
        for (u, v) in filtered {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
        }
        (offsets, targets)
    };
    let n_local = hi.saturating_sub(lo) as usize;
    let mut parent = vec![u32::MAX; n_local];
    let mut frontier: Vec<u32> = Vec::new();
    if owner(root) == comm.rank() {
        parent[(root - lo) as usize] = root;
        frontier.push(root);
    }
    let mut traversed = 0u64;
    loop {
        // Discover candidates, bucketed by owner rank.
        let mut outgoing: Vec<Vec<f64>> = vec![Vec::new(); p as usize];
        for &u in &frontier {
            let ul = (u - lo) as usize;
            for &v in &local_csr.1[local_csr.0[ul]..local_csr.0[ul + 1]] {
                traversed += 1;
                outgoing[owner(v) as usize].push(v as f64);
                outgoing[owner(v) as usize].push(u as f64);
            }
        }
        let incoming = comm.alltoall_f64(outgoing).unwrap();
        let mut next = Vec::new();
        for buf in incoming {
            for pair in buf.chunks_exact(2) {
                let (v, u) = (pair[0] as u32, pair[1] as u32);
                let vl = (v - lo) as usize;
                if parent[vl] == u32::MAX {
                    parent[vl] = u;
                    next.push(v);
                }
            }
        }
        let global_next = comm
            .allreduce_scalar(next.len() as f64, jubench_simmpi::ReduceOp::Sum)
            .unwrap();
        frontier = next;
        if global_next == 0.0 {
            break;
        }
    }
    (parent, traversed)
}

pub struct Graph500 {
    pub scale: u32,
}

impl Default for Graph500 {
    fn default() -> Self {
        Graph500 { scale: 10 }
    }
}

impl Benchmark for Graph500 {
    fn meta(&self) -> BenchmarkMeta {
        suite_meta()
            .into_iter()
            .find(|m| m.id == BenchmarkId::Graph500)
            .unwrap()
    }

    fn run(&self, cfg: &RunConfig) -> Result<RunOutcome, SuiteError> {
        self.validate_nodes(cfg.nodes)?;
        let machine = cfg.machine();
        // Analytic model: at full scale, every BFS level is an all-to-all
        // of frontier vertices with heavy irregular memory access.
        let scale_full = 38u32; // full-machine Graph500 class
        let verts = 2f64.powi(scale_full as i32);
        let devices = machine.devices() as f64;
        let timing = AppModel::new(machine, 64)
            .with_efficiencies(0.05, 0.3)
            .with_phase(Phase::compute(
                "frontier expansion",
                Work::new(
                    8.0 * verts * EDGE_FACTOR as f64 / devices / 64.0,
                    64.0 * verts / devices,
                ),
            ))
            .with_phase(Phase::comm(
                "frontier exchange",
                CommPattern::AllToAll {
                    bytes_per_pair: (verts * 4.0 / devices / devices).max(64.0) as u64,
                },
            ))
            .timing();

        // Real execution: generate, BFS, validate, measure TEPS.
        let edges = kronecker_edges(self.scale, cfg.seed);
        let csr = Csr::from_edges(1 << self.scale, &edges);
        let mut rng = rank_rng(cfg.seed ^ 0xBF5, 0);
        let mut total_traversed = 0u64;
        let start = Instant::now();
        let mut validation = Ok(());
        for _ in 0..4 {
            let root = rng.gen_range(0..csr.vertices);
            let (parent, traversed) = bfs(&csr, root);
            total_traversed += traversed;
            if let Err(e) = validate_bfs(&csr, root, &parent) {
                validation = Err(e);
            }
        }
        let elapsed = start.elapsed().as_secs_f64().max(1e-9);
        let teps = total_traversed as f64 / elapsed;
        let verification = match validation {
            Ok(()) => VerificationOutcome::Exact {
                checked_values: csr.vertices as usize,
            },
            Err(e) => VerificationOutcome::Failed { detail: e },
        };
        let mut out = jubench_apps_common::outcome(
            timing,
            verification,
            vec![
                ("measured_teps".into(), teps),
                ("traversed_edges".into(), total_traversed as f64),
            ],
        );
        out.fom = Fom::Teps(teps);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kronecker_sizes() {
        let edges = kronecker_edges(8, 1);
        assert_eq!(edges.len(), 256 * EDGE_FACTOR);
        assert!(edges.iter().all(|&(u, v)| u < 256 && v < 256));
    }

    #[test]
    fn kronecker_is_skewed() {
        // R-MAT graphs have a heavy-tailed degree distribution: the top
        // vertex has far more than the mean degree.
        let edges = kronecker_edges(10, 2);
        let csr = Csr::from_edges(1 << 10, &edges);
        let max_deg = (0..1u32 << 10)
            .map(|v| csr.neighbours(v).len())
            .max()
            .unwrap();
        let mean = 2.0 * edges.len() as f64 / 1024.0;
        assert!(
            max_deg as f64 > 4.0 * mean,
            "max degree {max_deg}, mean {mean}"
        );
    }

    #[test]
    fn bfs_parents_validate() {
        let edges = kronecker_edges(9, 3);
        let csr = Csr::from_edges(1 << 9, &edges);
        let (parent, traversed) = bfs(&csr, 0);
        assert!(traversed > 0);
        validate_bfs(&csr, 0, &parent).unwrap();
    }

    #[test]
    fn bfs_on_a_path_graph() {
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        let csr = Csr::from_edges(4, &edges);
        let (parent, traversed) = bfs(&csr, 0);
        assert_eq!(parent, vec![0, 0, 1, 2]);
        assert_eq!(traversed, 6); // each undirected edge seen twice
    }

    #[test]
    fn validation_catches_fake_parents() {
        let edges = vec![(0, 1), (1, 2)];
        let csr = Csr::from_edges(3, &edges);
        // 2's parent claimed to be 0 — not a graph edge.
        let bogus = vec![0, 0, 0];
        assert!(validate_bfs(&csr, 0, &bogus).is_err());
    }

    #[test]
    fn disconnected_vertices_stay_unreached() {
        let edges = vec![(0, 1)];
        let csr = Csr::from_edges(3, &edges);
        let (parent, _) = bfs(&csr, 0);
        assert_eq!(parent[2], u32::MAX);
        validate_bfs(&csr, 0, &parent).unwrap();
    }

    #[test]
    fn distributed_bfs_matches_sequential_levels() {
        use jubench_cluster::Machine;
        use jubench_simmpi::World;
        // BFS levels are unique even when parent choices differ: the
        // distributed traversal must assign every vertex the same depth as
        // the sequential reference.
        let scale = 8u32;
        let vertices = 1u32 << scale;
        let edges = kronecker_edges(scale, 5);
        let csr = Csr::from_edges(vertices, &edges);
        let (seq_parent, _) = bfs(&csr, 0);
        let depth_of = |parents: &[u32], v: u32| -> Option<u32> {
            if parents[v as usize] == u32::MAX {
                return None;
            }
            let mut d = 0;
            let mut cur = v;
            while cur != 0 {
                cur = parents[cur as usize];
                d += 1;
                assert!(d <= vertices, "cycle");
            }
            Some(d)
        };
        let edges2 = edges.clone();
        let world = World::new(Machine::juwels_booster().partition(1)); // 4 ranks
        let results = world.run(move |comm| dist_bfs(comm, vertices, &edges2, 0));
        // Stitch the distributed parent slices together.
        let chunk = vertices.div_ceil(4);
        let mut dist_parent = vec![u32::MAX; vertices as usize];
        for r in &results {
            let lo = r.rank * chunk;
            for (i, &pv) in r.value.0.iter().enumerate() {
                dist_parent[lo as usize + i] = pv;
            }
        }
        // Tree edges must be real graph edges.
        for v in 1..vertices {
            let pv = dist_parent[v as usize];
            if pv != u32::MAX {
                assert!(csr.neighbours(v).contains(&pv), "fake tree edge {v}→{pv}");
            }
        }
        for v in 0..vertices {
            assert_eq!(
                depth_of(&dist_parent, v),
                depth_of(&seq_parent, v),
                "vertex {v} at a different BFS level"
            );
        }
        // All ranks together traversed every directed edge reachable.
        let total: u64 = results.iter().map(|r| r.value.1).sum();
        assert!(total > 0);
    }

    #[test]
    fn benchmark_run_produces_teps() {
        let out = Graph500 { scale: 8 }.run(&RunConfig::test(4)).unwrap();
        assert!(out.verification.passed());
        assert!(matches!(out.fom, Fom::Teps(t) if t > 0.0));
        assert!(out.fom.higher_is_better());
    }
}
