//! The machine-model catalog: declarative descriptions of heterogeneous
//! backends, each constructible as a [`Machine`] partition of any size.
//!
//! The paper evaluates one machine (JUWELS Booster) and extrapolates to
//! one proposal (JUPITER). ROADMAP item 4 asks for the generalization:
//! many machine models — different node architectures, fabrics, and
//! economics — evaluated by the same suite so procurement can compare
//! *backends*, not just proposals. Each catalog entry bundles a full
//! [`Machine`] (node architecture, interconnect topology parameters
//! feeding `cluster::netmodel`, power envelope) with a cost model
//! (capex-amortized on-prem or cloud per-node-hour) and a short
//! description of what the backend represents.

use jubench_cluster::{CostModel, GpuSpec, Machine, NetModel, NodeSpec};

/// One catalog entry: a machine backend plus its catalog identity.
#[derive(Debug, Clone)]
pub struct MachineModel {
    /// Short stable slug used in tables and campaign names.
    pub key: &'static str,
    /// What the backend represents.
    pub description: &'static str,
    /// The full machine model; partition it to any size with
    /// [`Machine::partition`].
    pub machine: Machine,
}

impl MachineModel {
    /// The JUWELS-Booster-like baseline — the reference backend every
    /// other catalog entry is normalized against.
    pub fn booster_baseline() -> Self {
        MachineModel {
            key: "booster",
            description: "JUWELS-Booster-like baseline: 4x A100-40GB per node, \
                          4x HDR200, DragonFly+ cells of 48, owned",
            machine: Machine::juwels_booster(),
        }
    }

    /// A CPU-only cluster: one dual-EPYC node "device" per node, an
    /// EDR100-class fat-tree, cheap nodes, modest power.
    pub fn cpu_cluster() -> Self {
        MachineModel {
            key: "cpu",
            description: "CPU-only cluster: 2x EPYC Rome per node, EDR100-class \
                          fabric, owned",
            machine: Machine {
                name: "CPU cluster",
                nodes: 1280,
                node: NodeSpec {
                    gpu: GpuSpec::epyc_rome_node(),
                    gpus_per_node: 1,
                    nics_per_node: 2,
                    nic_bw: 12.5e9,
                    power_w: 700.0,
                },
                cell_nodes: 48,
                net: NetModel::cpu_cluster(),
                cost: CostModel::on_prem(25_000.0),
            },
        }
    }

    /// A next-generation GPU node: fatter accelerators (H100/GH200
    /// class), an NDR200-class fabric, higher per-node price and power.
    pub fn nextgen_gpu() -> Self {
        MachineModel {
            key: "nextgen",
            description: "Next-gen GPU cluster: 4x NextGen-96GB per node, \
                          NDR200-class fabric, owned",
            machine: Machine {
                name: "NextGen GPU cluster",
                nodes: 3672,
                node: NodeSpec {
                    gpu: GpuSpec::next_gen_96gb(),
                    gpus_per_node: 4,
                    nics_per_node: 4,
                    nic_bw: 50.0e9,
                    power_w: 2800.0,
                },
                cell_nodes: 48,
                net: NetModel::next_gen_fabric(),
                cost: CostModel::on_prem(136_000.0),
            },
        }
    }

    /// A cloud 8-GPU instance type, priced per node-hour (zero capex):
    /// NVLink inside the instance, oversubscribed Ethernet between
    /// instances — the Mohammadi & Bazhirov continuous-evaluation
    /// setting.
    pub fn cloud_instance() -> Self {
        MachineModel {
            key: "cloud",
            description: "Cloud 8-GPU instance type: 8x A100-80GB, 400G \
                          Ethernet spine, rented per node-hour",
            machine: Machine {
                name: "Cloud HGX instance",
                nodes: 512,
                node: NodeSpec {
                    gpu: GpuSpec::a100_80gb_cloud(),
                    gpus_per_node: 8,
                    nics_per_node: 1,
                    nic_bw: 50.0e9,
                    power_w: 6500.0,
                },
                cell_nodes: 64,
                net: NetModel::cloud_ethernet(),
                cost: CostModel::cloud(28.0),
            },
        }
    }
}

/// The standard four-backend catalog, reference (Booster baseline)
/// first. Order is part of the deterministic contract: fleet tables
/// list backends in catalog order unless explicitly ranked.
pub fn standard_catalog() -> Vec<MachineModel> {
    vec![
        MachineModel::booster_baseline(),
        MachineModel::cpu_cluster(),
        MachineModel::nextgen_gpu(),
        MachineModel::cloud_instance(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_four_distinct_backends() {
        let catalog = standard_catalog();
        assert_eq!(catalog.len(), 4);
        for (i, a) in catalog.iter().enumerate() {
            for b in catalog.iter().skip(i + 1) {
                assert_ne!(a.key, b.key);
                assert_ne!(
                    a.machine.fingerprint_bytes(),
                    b.machine.fingerprint_bytes(),
                    "{} and {} must never share a fingerprint",
                    a.key,
                    b.key
                );
            }
        }
    }

    #[test]
    fn backends_never_share_a_cache_key_at_any_partition_size() {
        // The regression the serve cache depends on: equal-sized
        // partitions of different backends stay distinguishable.
        let catalog = standard_catalog();
        for nodes in [1, 8, 96] {
            let prints: Vec<_> = catalog
                .iter()
                .map(|m| m.machine.partition(nodes).fingerprint_bytes())
                .collect();
            for (i, a) in prints.iter().enumerate() {
                for b in prints.iter().skip(i + 1) {
                    assert_ne!(a, b, "collision at {nodes} nodes");
                }
            }
        }
    }

    #[test]
    fn every_backend_partitions_to_small_sizes() {
        for model in standard_catalog() {
            let p = model.machine.partition(8);
            assert_eq!(p.nodes, 8);
            assert!(p.peak_flops() > 0.0);
            assert!(p.node.power_w > 0.0);
        }
    }

    #[test]
    fn economics_split_on_prem_vs_cloud() {
        for model in standard_catalog() {
            let c = model.machine.cost;
            if model.key == "cloud" {
                assert_eq!(c.capex_per_node_eur, 0.0);
                assert!(c.rental_eur_per_node_hour > 0.0);
            } else {
                assert!(c.capex_per_node_eur > 0.0);
                assert_eq!(c.rental_eur_per_node_hour, 0.0);
            }
        }
    }

    #[test]
    fn fabric_parameters_differ_from_the_baseline() {
        let base = MachineModel::booster_baseline().machine.net;
        assert_ne!(MachineModel::cpu_cluster().machine.net, base);
        assert_ne!(MachineModel::nextgen_gpu().machine.net, base);
        assert_ne!(MachineModel::cloud_instance().machine.net, base);
    }
}
