//! The fleet study runner: the full benchmark registry executed across
//! every catalog backend, normalized into procurement-grade tables.
//!
//! For each backend the study builds one campaign (every registry
//! benchmark at its reference node count, Test scale, one shared seed),
//! submits it to a [`jubench_serve::Server`], and drives all campaigns
//! with the dedicated-thread parallel drain — so the fleet study
//! exercises the same pool / scheduler / serve machinery as any tenant,
//! and inherits the serve determinism contract: identical tables at any
//! `JUBENCH_POOL_THREADS`, warm or cold cache.
//!
//! The raw per-benchmark virtual runtimes are then condensed into:
//!
//! - a **FOM table** of runtimes and speedups over the reference
//!   backend (catalog entry 0),
//! - a HEPScore-style **composite score** per backend (weighted
//!   geometric mean of the speedups — see
//!   [`jubench_procurement::CompositeScore`]),
//! - a **value table**: TCO of the full backend, energy-to-solution of
//!   one suite pass, and the §II value-for-money metric (suite passes
//!   per million EUR of TCO, throughput-normalized by node-seconds),
//! - the **1 EFLOP/s extrapolation**: how many of the backend's nodes a
//!   JUPITER-style High-Scaling sub-partition needs, whether the
//!   backend is big enough, and what that sub-partition draws.

use std::collections::BTreeMap;

use jubench_cluster::Machine;
use jubench_core::Registry;
use jubench_metrics::counter_add;
use jubench_procurement::{
    energy_to_solution_j, exascale_partition_nodes, CompositeScore, ScoreItem, TcoModel,
};
use jubench_serve::{CampaignSpec, Frame, RunPoint, Server};

use crate::catalog::MachineModel;

/// One benchmark execution inside a fleet study.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRun {
    /// Benchmark name.
    pub bench: String,
    /// Partition size the point ran on.
    pub nodes: u32,
    /// Deterministic modeled runtime, seconds.
    pub runtime_s: f64,
    /// Energy-to-solution of the point on this backend, joules.
    pub energy_j: f64,
}

/// Everything the study learned about one backend.
#[derive(Debug, Clone)]
pub struct BackendReport {
    /// The catalog entry.
    pub model: MachineModel,
    /// Shard the backend's campaign routed to.
    pub shard: u32,
    /// Per-benchmark runs, in registry (suite table) order.
    pub runs: Vec<BenchRun>,
    /// HEPScore-style composite: weighted geometric mean of speedups
    /// over the reference backend (reference scores exactly 1.0).
    pub composite: CompositeScore,
    /// Full-machine TCO over the backend's own horizon, EUR.
    pub tco_eur: f64,
    /// Energy of one suite pass (sum over benchmarks), joules.
    pub suite_energy_j: f64,
    /// Node-seconds one suite pass consumes on this backend.
    pub suite_node_seconds: f64,
    /// Value-for-money: suite passes per million EUR of TCO, assuming
    /// the machine runs reference-sized partitions back to back.
    pub passes_per_million_eur: f64,
    /// Nodes of this backend needed for a 1 EFLOP/s(th) sub-partition.
    pub exascale_nodes: u32,
    /// Whether the backend has that many nodes at all.
    pub exascale_fits: bool,
    /// IT power of the 1 EFLOP/s sub-partition, megawatts.
    pub exascale_power_mw: f64,
}

/// The rendered-and-raw outcome of a fleet study.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// One report per catalog entry, in catalog order; entry 0 is the
    /// reference backend.
    pub backends: Vec<BackendReport>,
}

/// The fleet study: a catalog plus the serve-layer knobs.
#[derive(Debug, Clone)]
pub struct FleetStudy {
    /// Backends to evaluate. Entry 0 is the normalization reference.
    pub catalog: Vec<MachineModel>,
    /// Shared workload seed for every run point.
    pub seed: u64,
    /// Worker shards of the embedded campaign service.
    pub n_shards: usize,
    /// Result-cache capacity per shard.
    pub cache_capacity: usize,
}

impl FleetStudy {
    /// The standard study: the four-backend catalog on a 4-shard
    /// service with a roomy cache.
    pub fn standard() -> Self {
        FleetStudy {
            catalog: crate::catalog::standard_catalog(),
            seed: 2024,
            n_shards: 4,
            cache_capacity: 1024,
        }
    }

    /// Execute the study over `registry` on a fresh campaign service.
    /// Returns the report or the first rejection/verification failure.
    pub fn run(&self, registry: &Registry) -> Result<FleetReport, String> {
        let mut server = Server::new(self.n_shards, self.cache_capacity);
        self.run_on(&mut server, registry)
    }

    /// Execute the study on an existing [`Server`] — re-running a study
    /// on the same service answers unchanged points from the warm
    /// result cache without changing a byte of the report.
    pub fn run_on(&self, server: &mut Server, registry: &Registry) -> Result<FleetReport, String> {
        if self.catalog.is_empty() {
            return Err("fleet study needs at least one backend".into());
        }
        // Every campaign spans a partition big enough for the largest
        // reference point, on every backend — same points everywhere.
        let spec_nodes = registry
            .iter()
            .map(|b| b.reference_nodes())
            .max()
            .ok_or("fleet study needs a non-empty registry")?;

        let mut campaign_backend: BTreeMap<u64, usize> = BTreeMap::new();
        let mut shards = Vec::with_capacity(self.catalog.len());
        for (i, model) in self.catalog.iter().enumerate() {
            if model.machine.nodes < spec_nodes {
                return Err(format!(
                    "backend `{}` has {} nodes, fewer than the {}-node reference partition",
                    model.key, model.machine.nodes, spec_nodes
                ));
            }
            let mut spec = CampaignSpec::new("fleet", model.key, spec_nodes, self.seed)
                .with_backend(model.machine);
            for bench in registry.iter() {
                spec = spec.with_point(RunPoint::test(
                    bench.meta().id.name(),
                    bench.reference_nodes(),
                    self.seed,
                ));
            }
            let (campaign, shard) = server
                .submit(i as u64, spec, registry)
                .map_err(|r| r.to_string())?;
            campaign_backend.insert(campaign, i);
            shards.push(shard);
            counter_add("fleet/campaigns_submitted", 1);
        }
        counter_add("fleet/backends_evaluated", self.catalog.len() as u64);

        // Drive every shard on its own dedicated pool rank — the same
        // parallel drain any serve deployment uses.
        let emits = server.drain_parallel(registry).map_err(|e| e.to_string())?;

        // index → run, per backend; the scheduler may finish points out
        // of order, the BTreeMap restores suite order.
        let mut rows: Vec<BTreeMap<u32, BenchRun>> = vec![BTreeMap::new(); self.catalog.len()];
        for emit in &emits {
            if let Frame::Row {
                campaign,
                index,
                cells,
            } = &emit.frame
            {
                let backend = campaign_backend[campaign];
                if cells[7] != "pass" {
                    return Err(format!(
                        "backend `{}`: benchmark {} failed verification",
                        self.catalog[backend].key, cells[0]
                    ));
                }
                let nodes: u32 = cells[1].parse().map_err(|_| "bad nodes cell")?;
                let runtime_s: f64 = cells[5].parse().map_err(|_| "bad runtime cell")?;
                let partition = self.catalog[backend].machine.partition(nodes);
                rows[backend].insert(
                    *index,
                    BenchRun {
                        bench: cells[0].clone(),
                        nodes,
                        runtime_s,
                        energy_j: energy_to_solution_j(&partition, runtime_s),
                    },
                );
            }
        }

        let reference: Vec<BenchRun> = rows[0].values().cloned().collect();
        if reference.len() != registry.len() {
            return Err(format!(
                "reference backend produced {} rows for {} benchmarks",
                reference.len(),
                registry.len()
            ));
        }
        counter_add(
            "fleet/points_total",
            (registry.len() * self.catalog.len()) as u64,
        );

        let mut backends = Vec::with_capacity(self.catalog.len());
        for (i, model) in self.catalog.iter().enumerate() {
            let runs: Vec<BenchRun> = rows[i].values().cloned().collect();
            if runs.len() != reference.len() {
                return Err(format!(
                    "backend `{}` produced {} rows for {} benchmarks",
                    model.key,
                    runs.len(),
                    reference.len()
                ));
            }
            let items: Vec<ScoreItem> = runs
                .iter()
                .zip(&reference)
                .map(|(run, base)| ScoreItem {
                    name: run.bench.clone(),
                    speedup: base.runtime_s / run.runtime_s,
                    weight: 1.0,
                })
                .collect();
            let composite = CompositeScore::build(items)
                .ok_or_else(|| format!("backend `{}`: degenerate speedups", model.key))?;

            let tco = TcoModel::for_machine(&model.machine).evaluate(&model.machine);
            let suite_node_seconds: f64 = runs.iter().map(|r| r.runtime_s * r.nodes as f64).sum();
            // Throughput-normalize: the machine runs reference-sized
            // partitions back to back, so one pass effectively costs
            // node-seconds / nodes wall seconds of the whole machine.
            let seconds_per_pass = suite_node_seconds / model.machine.nodes as f64;
            let passes_per_million_eur = tco.workloads_per_million_eur(seconds_per_pass);

            let exascale_nodes = exascale_partition_nodes(&model.machine);
            backends.push(BackendReport {
                model: model.clone(),
                shard: shards[i],
                runs,
                composite,
                tco_eur: tco.total_eur,
                suite_energy_j: rows[i].values().map(|r| r.energy_j).sum(),
                suite_node_seconds,
                passes_per_million_eur,
                exascale_nodes,
                exascale_fits: exascale_nodes <= model.machine.nodes,
                exascale_power_mw: exascale_nodes as f64 * model.machine.node.power_w / 1.0e6,
            });
        }
        Ok(FleetReport { backends })
    }
}

impl FleetReport {
    /// The reference backend (catalog entry 0).
    pub fn reference(&self) -> &BackendReport {
        &self.backends[0]
    }

    /// Backend keys ranked by composite score, best first; ties break
    /// by catalog order (stable sort).
    pub fn ranking(&self) -> Vec<&str> {
        let mut order: Vec<&BackendReport> = self.backends.iter().collect();
        order.sort_by(|a, b| {
            b.composite
                .score
                .partial_cmp(&a.composite.score)
                .expect("composite scores are finite")
        });
        order.iter().map(|b| b.model.key).collect()
    }

    /// Per-benchmark runtimes and speedups over the reference backend.
    pub fn fom_table(&self) -> String {
        let mut out = String::new();
        out.push_str("benchmark            ");
        for b in &self.backends {
            out.push_str(&format!("| {:>21} ", b.model.key));
        }
        out.push('\n');
        let reference = &self.backends[0].runs;
        for (row, base) in reference.iter().enumerate() {
            out.push_str(&format!("{:<21}", base.bench));
            for b in &self.backends {
                let run = &b.runs[row];
                out.push_str(&format!(
                    "| {:>10.3}s {:>7.3}x ",
                    run.runtime_s,
                    base.runtime_s / run.runtime_s
                ));
            }
            out.push('\n');
        }
        out
    }

    /// Economics per backend: TCO, suite energy, value-for-money, and
    /// the 1 EFLOP/s sub-partition extrapolation.
    pub fn value_table(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "backend    nodes     TCO[M EUR]  pass[kWh]  passes/M-EUR  exa-nodes  exa-MW  fits\n",
        );
        for b in &self.backends {
            out.push_str(&format!(
                "{:<10} {:>6} {:>13.2} {:>10.3} {:>13.1} {:>10} {:>7.2}  {}\n",
                b.model.key,
                b.model.machine.nodes,
                b.tco_eur / 1.0e6,
                b.suite_energy_j / 3.6e6,
                b.passes_per_million_eur,
                b.exascale_nodes,
                b.exascale_power_mw,
                if b.exascale_fits { "yes" } else { "no" },
            ));
        }
        out
    }

    /// Composite scores, best backend first.
    pub fn composite_table(&self) -> String {
        let mut order: Vec<&BackendReport> = self.backends.iter().collect();
        order.sort_by(|a, b| {
            b.composite
                .score
                .partial_cmp(&a.composite.score)
                .expect("composite scores are finite")
        });
        let mut out = String::new();
        out.push_str("rank  backend    composite  benchmarks\n");
        for (rank, b) in order.iter().enumerate() {
            out.push_str(&format!(
                "{:>4}  {:<10} {:>9.4} {:>11}\n",
                rank + 1,
                b.model.key,
                b.composite.score,
                b.composite.items.len(),
            ));
        }
        out
    }

    /// The full deterministic report: FOM, composite, and value tables.
    pub fn render(&self) -> String {
        format!(
            "== fleet study: {} backends, {} benchmarks, reference `{}` ==\n\n\
             -- per-benchmark FOMs (runtime, speedup over reference) --\n{}\n\
             -- composite score (weighted geometric mean of speedups) --\n{}\n\
             -- value for money and 1 EFLOP/s extrapolation --\n{}",
            self.backends.len(),
            self.backends[0].runs.len(),
            self.backends[0].model.key,
            self.fom_table(),
            self.composite_table(),
            self.value_table(),
        )
    }
}

/// Convenience: partition economics of an arbitrary machine, used by
/// the example to show sub-partition pricing.
pub fn partition_tco_eur(machine: &Machine, nodes: u32) -> f64 {
    let partition = machine.partition(nodes);
    TcoModel::for_machine(&partition)
        .evaluate(&partition)
        .total_eur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::standard_catalog;
    use jubench_scaling::full_registry;

    fn small_study() -> FleetStudy {
        FleetStudy {
            catalog: standard_catalog(),
            seed: 7,
            n_shards: 3,
            cache_capacity: 512,
        }
    }

    #[test]
    fn study_runs_the_full_registry_on_every_backend() {
        let registry = full_registry();
        let report = small_study().run(&registry).unwrap();
        assert_eq!(report.backends.len(), 4);
        for b in &report.backends {
            assert_eq!(b.runs.len(), registry.len());
            assert!(b.runs.iter().all(|r| r.runtime_s > 0.0 && r.energy_j > 0.0));
            assert!(b.tco_eur > 0.0);
            assert!(b.passes_per_million_eur > 0.0);
            assert!(b.exascale_nodes > 0);
        }
    }

    #[test]
    fn reference_backend_scores_exactly_one() {
        let registry = full_registry();
        let report = small_study().run(&registry).unwrap();
        let score = report.reference().composite.score;
        assert!((score - 1.0).abs() < 1e-12, "reference composite {score}");
        for item in &report.reference().composite.items {
            assert_eq!(item.speedup, 1.0, "{}", item.name);
        }
    }

    #[test]
    fn nextgen_outranks_the_baseline_and_cpu_trails() {
        let registry = full_registry();
        let report = small_study().run(&registry).unwrap();
        let ranking = report.ranking();
        let pos = |k: &str| ranking.iter().position(|&r| r == k).unwrap();
        assert!(pos("nextgen") < pos("booster"), "ranking {ranking:?}");
        assert_eq!(ranking.last(), Some(&"cpu"), "ranking {ranking:?}");
    }

    #[test]
    fn report_is_identical_across_repeat_runs_and_shard_counts() {
        let registry = full_registry();
        let a = small_study().run(&registry).unwrap().render();
        let b = small_study().run(&registry).unwrap().render();
        assert_eq!(a, b);
        let mut wide = small_study();
        wide.n_shards = 1;
        let c = wide.run(&registry).unwrap().render();
        assert_eq!(a, c, "shard count leaked into the report");
    }

    #[test]
    fn render_mentions_every_backend_and_benchmark() {
        let registry = full_registry();
        let report = small_study().run(&registry).unwrap();
        let text = report.render();
        for key in ["booster", "cpu", "nextgen", "cloud"] {
            assert!(text.contains(key), "missing {key}");
        }
        for bench in registry.iter() {
            assert!(
                text.contains(bench.meta().id.name()),
                "missing {}",
                bench.meta().id.name()
            );
        }
    }

    #[test]
    fn partition_tco_scales_with_nodes() {
        let m = standard_catalog()[0].machine;
        let small = partition_tco_eur(&m, 10);
        let large = partition_tco_eur(&m, 100);
        assert!((large / small - 10.0).abs() < 1e-9);
    }
}
