//! # jubench-fleet — heterogeneous machine catalog + cross-backend campaigns
//!
//! The paper benchmarks one machine (JUWELS Booster) to procure one
//! successor (JUPITER). This crate generalizes that workflow to a
//! *fleet*: a declarative catalog of machine backends — different node
//! architectures, interconnect fabrics, power envelopes, and economics
//! (owned vs rented) — and a study runner that executes the full
//! benchmark registry on every backend through the same pool /
//! scheduler / serve machinery, then condenses the results into
//! procurement-grade tables:
//!
//! - per-benchmark FOMs normalized against a reference backend,
//! - a HEPScore-style composite score (weighted geometric mean),
//! - TCO-based value-for-money with energy-to-solution columns,
//! - the 1 EFLOP/s sub-partition extrapolation per backend.
//!
//! Everything is deterministic: the rendered report is byte-identical
//! across pool widths (`JUBENCH_POOL_THREADS`), shard counts, and warm
//! vs cold serve caches, because the study rides on the serve layer's
//! determinism contract and every backend keys its own cache entries
//! (the machine fingerprint covers topology and cost).
//!
//! Start with [`FleetStudy::standard`] and
//! [`catalog::standard_catalog`]; see `examples/fleet_study.rs` for the
//! end-to-end flow.

pub mod catalog;
pub mod study;

pub use catalog::{standard_catalog, MachineModel};
pub use study::{partition_tco_eur, BackendReport, BenchRun, FleetReport, FleetStudy};
