//! Quickstart: run a few benchmarks of the suite through a JUBE-style
//! workflow and print the result table, the way §III-B describes the
//! production setup ("After execution, the benchmark results are presented
//! by JUBE in a concise tabular form, including the FOM").
//!
//! Run with: `cargo run --release --example quickstart`

use jubench::jube::step::output1;
use jubench::prelude::*;

fn main() {
    let registry = full_registry();

    // A JUBE workflow sweeping one benchmark over a node-count parameter
    // space, with tag-selected variants.
    let mut workflow = Workflow::new();
    workflow.params.set_list("nodes", ["4", "8", "16"]);
    workflow.params.set("benchmark", "JUQCS");
    workflow.params.set("variant", "base");
    workflow.params.set_tagged("variant", "small", "S");

    workflow.add_step(Step::new("execute", move |ctx| {
        let registry = full_registry();
        let bench = registry.get(BenchmarkId::Juqcs).unwrap();
        let nodes: u32 = ctx.param_as("nodes").ok_or("missing nodes")?;
        let mut cfg = RunConfig::test(nodes);
        if ctx.param("variant") == Some("S") {
            cfg = cfg.with_variant(MemoryVariant::Small);
        }
        let out = bench.run(&cfg).map_err(|e| e.to_string())?;
        let mut o = output1("fom_s", format!("{:.3}", out.virtual_time_s));
        o.insert(
            "qubits".into(),
            format!("{}", out.metric("qubits").unwrap_or(0.0)),
        );
        o.insert("verified".into(), format!("{}", out.verification.passed()));
        o.insert(
            "comm_share".into(),
            format!("{:.1}%", 100.0 * out.comm_time_s / out.virtual_time_s),
        );
        Ok(o)
    }));

    println!("=== JUQCS through the JUBE-style workflow (Base workload) ===\n");
    let results = workflow.execute(&["small"]).expect("workflow runs");
    let table = ResultTable::new([
        "benchmark",
        "nodes",
        "qubits",
        "fom_s",
        "comm_share",
        "verified",
    ]);
    println!("{}", table.render(&results));

    // Direct API: one Base run of every procurement-relevant application.
    println!("=== Base reference runs (8-node-class partitions) ===\n");
    println!(
        "{:<18} {:>6} {:>14} {:>10} {:>9}",
        "benchmark", "nodes", "virtual[s]", "comm[%]", "verified"
    );
    for bench in registry.by_category(Category::Base) {
        let meta = bench.meta();
        if !meta.used_in_procurement {
            continue;
        }
        let nodes = bench.reference_nodes();
        match bench.run(&RunConfig::test(nodes)) {
            Ok(out) => println!(
                "{:<18} {:>6} {:>14.2} {:>9.1}% {:>9}",
                meta.id.name(),
                nodes,
                out.virtual_time_s,
                100.0 * out.comm_time_s / out.virtual_time_s.max(1e-12),
                out.verification.passed()
            ),
            Err(e) => println!("{:<18} {:>6}  failed: {e}", meta.id.name(), nodes),
        }
    }
}
