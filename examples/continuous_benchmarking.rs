//! Continuous Benchmarking (§VI): record accepted baselines, then run the
//! monitoring pass an operator would schedule after each maintenance.
//!
//! Run with: `cargo run --release --example continuous_benchmarking`

use jubench::continuous::Monitor;
use jubench::prelude::*;

fn main() {
    let registry = full_registry();
    let monitor = Monitor::default();
    let watched = [
        BenchmarkId::Arbor,
        BenchmarkId::ChromaQcd,
        BenchmarkId::Juqcs,
        BenchmarkId::NekRs,
        BenchmarkId::Hpl,
        BenchmarkId::Stream,
    ];

    println!("Recording baselines (acceptance run)…\n");
    let baselines = monitor.record_baselines(&registry, &watched);
    let path = std::env::temp_dir().join("jubench-baselines.tsv");
    baselines.save(&path).expect("save baselines");
    println!("{}", baselines.to_text());
    println!("Baselines stored at {}\n", path.display());

    println!("Post-maintenance monitoring pass…\n");
    let report = monitor.check(&registry, &baselines);
    println!("{}", report.render());
    if report.healthy() {
        println!("System healthy: no performance degradation detected.");
    } else {
        println!("DEGRADATION DETECTED in: {:?}", report.regressions());
    }
    std::fs::remove_file(&path).ok();
}
