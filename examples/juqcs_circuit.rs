//! Drive the distributed quantum-computer simulator directly: prepare a
//! GHZ-like superposition with gates on local *and* global qubits, verify
//! the amplitudes against the theoretically known result (JUQCS's
//! verification class), and report how much state memory moved between
//! ranks — the half-of-all-memory transfers of §IV-A2c.
//!
//! Run with: `cargo run --release --example juqcs_circuit`

use jubench::apps_quantum::statevector::Gate1;
use jubench::apps_quantum::{state_bytes, DistStateVector};
use jubench::prelude::*;

fn main() {
    let machine = Machine::juwels_booster().partition(2); // 8 ranks
    let world = World::new(machine);
    let n = 12u32;

    println!(
        "Simulating an {n}-qubit register over {} ranks",
        world.ranks()
    );
    println!(
        "(a full {n}-qubit state holds {} complex amplitudes = {} KiB)\n",
        1u64 << n,
        state_bytes(n) / 1024
    );

    let results = world.run(|comm| {
        let mut sv = DistStateVector::zero_state(comm, n);
        // Uniform superposition on the first 4 qubits…
        for q in 0..4 {
            sv.apply(comm, q, Gate1::h()).unwrap();
        }
        // …phase-kick the highest (global) qubit after flipping it…
        sv.apply(comm, n - 1, Gate1::x()).unwrap();
        sv.apply(comm, n - 1, Gate1::phase(std::f64::consts::FRAC_PI_2))
            .unwrap();
        // …and undo everything: the state must return to |0…0⟩ with a
        // global phase of i on the top qubit flip path.
        sv.apply(comm, n - 1, Gate1::phase(-std::f64::consts::FRAC_PI_2))
            .unwrap();
        sv.apply(comm, n - 1, Gate1::x()).unwrap();
        for q in 0..4 {
            sv.apply(comm, q, Gate1::h()).unwrap();
        }
        let zero = sv.amplitude(comm, 0);
        let norm = sv.norm_sqr(comm).unwrap();
        (zero, norm, sv.bytes_exchanged)
    });

    let mut exchanged = 0;
    for r in &results {
        exchanged += r.value.2;
        if let Some(amp) = r.value.0 {
            println!(
                "rank {} holds ⟨0…0|ψ⟩ = {:.12} + {:.12}i (theory: exactly 1)",
                r.rank, amp.re, amp.im
            );
            assert!((amp.re - 1.0).abs() < 1e-12 && amp.im.abs() < 1e-12);
        }
        assert!((r.value.1 - 1.0).abs() < 1e-12, "norm must stay 1");
    }
    println!("\nstate bytes exchanged between ranks: {exchanged}");
    println!("virtual communication time (max rank): {:.6} ms", {
        let span = results
            .iter()
            .map(|r| r.clock.comm_s)
            .fold(0.0f64, f64::max);
        span * 1e3
    });
    println!("\nVerification: exact (the theoretically known result) — PASSED");
}
