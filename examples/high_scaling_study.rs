//! Regenerate the data behind Fig. 3: weak-scaling efficiency of the five
//! High-Scaling applications over the JUWELS Booster node range, with the
//! JUQCS computation/communication split.
//!
//! Run with: `cargo run --release --example high_scaling_study`

use jubench::scaling::weak::fig3_all_series;

fn main() {
    println!("Fig. 3 — weak scaling efficiency of the High-Scaling benchmarks");
    println!("(efficiency = virtual step time at the smallest scale / at this scale)\n");
    for series in fig3_all_series(1) {
        println!("{}", series.render());
    }
    println!("Expected shape (paper §IV-A2):");
    println!("  - Arbor stays near 1.0 (communication fully hidden),");
    println!("  - Chroma-QCD and nekRS decline gently,");
    println!("  - JUQCS (computation) stays near 1.0,");
    println!("  - JUQCS (communication) drops sharply from 1 to 2 nodes");
    println!("    (NVLink → InfiniBand) and again at 256 nodes (large-scale");
    println!("    congestion regime).");
}
