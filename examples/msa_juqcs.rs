//! The MSA benchmark (§II-B / §IV-A2c): JUQCS simulating one quantum
//! register across *both* modules of the Modular Supercomputing
//! Architecture — half the state on the CPU Cluster, half on the GPU
//! Booster, exchanging amplitudes through the federation gateway.
//!
//! Run with: `cargo run --release --example msa_juqcs`

use jubench::apps_quantum::JuqcsMsa;

fn main() {
    println!("MSA JUQCS — one state vector across Cluster and Booster\n");
    let (cluster_bytes, booster_bytes) = JuqcsMsa::module_bytes();
    println!(
        "paper workload: n = {} qubits, {} GiB on the Cluster + {} GiB on the Booster\n",
        JuqcsMsa::QUBITS,
        cluster_bytes >> 30,
        booster_bytes >> 30
    );

    println!("real execution (reduced register, same algorithm):");
    for (cluster_nodes, booster_nodes) in [(4u32, 1u32), (8, 2), (16, 4)] {
        let out = JuqcsMsa::run_msa(cluster_nodes, booster_nodes, 1);
        println!(
            "  {:>2} CPU nodes + {:>2} GPU nodes ({:>2} ranks): verified={}, \
             makespan {:.3} ms, gateway share (cluster) {:.3} ms, (booster) {:.3} ms",
            cluster_nodes,
            booster_nodes,
            cluster_nodes + booster_nodes * 4,
            out.verification.passed(),
            out.virtual_time_s * 1e3,
            out.cluster_comm_s * 1e3,
            out.booster_comm_s * 1e3,
        );
    }
    println!("\nEvery amplitude is checked against the theoretically known result");
    println!("(the JUQCS verification class): the circuit returns to |0…0⟩ exactly.");
}
