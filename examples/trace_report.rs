//! Observability walkthrough: trace a simulated run, print the run
//! report (regime breakdown, per-op histogram, critical path), export a
//! Chrome trace, and show the workflow-step timeline and the traffic
//! study.
//!
//! Run with: `cargo run --release --example trace_report`
//!
//! Load the printed `trace_report.json` in `chrome://tracing` or
//! <https://ui.perfetto.dev> to browse the timeline: nodes appear as
//! processes, ranks as threads.

use std::sync::Arc;

use jubench::cluster::Machine;
use jubench::jube::step::output1;
use jubench::prelude::*;
use jubench::scaling::traffic_table;

fn main() {
    // The whole walkthrough runs inside a wall-clock profiling scope, so
    // the collapsed-stack self-profile written at the end shows how the
    // example's own time divides between its sections.
    jubench::profile_scope!("example/trace_report");

    // ----- trace a simulated MPI run -----------------------------------
    {
        jubench::profile_scope!("example/world_run");
        let recorder = Arc::new(Recorder::new());
        let world =
            World::new(Machine::juwels_booster().partition(4)).with_recorder(recorder.clone());

        world.run(|comm| {
            // A CG-like iteration: local compute, halo exchange with the
            // ring neighbours, then a scalar allreduce.
            for _ in 0..3 {
                comm.advance_compute(2e-3);
                let p = comm.size();
                let halo = vec![comm.rank() as f64; 2048];
                let right = (comm.rank() + 1) % p;
                let left = (comm.rank() + p - 1) % p;
                comm.send_f64(right, &halo).unwrap();
                comm.send_f64(left, &halo).unwrap();
                comm.recv_f64(left).unwrap();
                comm.recv_f64(right).unwrap();
                comm.allreduce_scalar(1.0, ReduceOp::Sum).unwrap();
            }
            comm.barrier();
        });

        let events = recorder.take_events();
        let report = RunReport::from_events(&events);
        println!("=== Run report ({} events) ===\n", report.events);
        println!("{}", report.render());

        let json = chrome_trace_json(&events);
        let path = std::env::temp_dir().join("trace_report.json");
        std::fs::write(&path, &json).expect("write trace");
        println!(
            "Chrome trace written to {} ({} bytes) — load it in chrome://tracing\n",
            path.display(),
            json.len()
        );
    }

    // ----- trace a JUBE workflow ---------------------------------------
    {
        jubench::profile_scope!("example/workflow");
        let wf_rec = Arc::new(Recorder::new());
        let mut workflow = Workflow::new();
        workflow.params.set_list("nodes", ["4", "8"]);
        workflow.add_step(Step::new("compile", |_| Ok(output1("binary", "bench.x"))));
        workflow.add_step(
            Step::new("execute", |ctx| {
                let nodes = ctx.param("nodes").unwrap_or("?").to_string();
                Ok(output1("ran_on", nodes))
            })
            .after("compile"),
        );
        let workflow = workflow.with_recorder(wf_rec.clone());
        workflow.execute(&[]).expect("workflow runs");
        println!("=== Workflow events ===\n");
        for e in wf_rec.take_events() {
            if let jubench::trace::EventKind::Step {
                step,
                phase,
                workpackage,
            } = &e.kind
            {
                println!("  workpackage {workpackage}: {step:<10} {}", phase.label());
            }
        }
    }

    // ----- the traffic study -------------------------------------------
    {
        jubench::profile_scope!("example/traffic_study");
        println!("\n=== Regime breakdown vs job size (halo-exchange probe) ===\n");
        // 64 nodes span two DragonFly+ cells, so the ring crosses the
        // global optical links and the inter-cell column becomes non-zero.
        println!("{}", traffic_table(&[1, 2, 8, 64]).render());
    }

    // ----- the wall-clock side: metrics + self-profile -----------------
    // Everything above also ran under jubench-metrics (unless
    // JUBENCH_METRICS=0): the runtime counted its channel traffic, the
    // trace layer its buffer growth, and the profiling scopes their
    // wall time. Print the merged snapshot and write the collapsed-
    // stack self-profile next to the Chrome trace.
    let snap = jubench::metrics::snapshot();
    println!("=== Wall-clock metrics (Prometheus exposition) ===\n");
    print!("{}", snap.render_prometheus());

    let collapsed = jubench::metrics::self_profile_collapsed();
    let profile_path = std::env::temp_dir().join("self_profile.collapsed");
    std::fs::write(&profile_path, &collapsed).expect("write self-profile");
    println!(
        "\nCollapsed-stack self-profile written to {} ({} stacks) — feed it to flamegraph.pl",
        profile_path.display(),
        collapsed.lines().count()
    );
}
