//! The fleet study end to end: the full benchmark suite executed on
//! every backend of the standard machine catalog (JUWELS-Booster-like
//! baseline, CPU-only cluster, next-generation GPU node, cloud 8-GPU
//! instance) through the campaign service, condensed into the
//! procurement tables — per-benchmark FOMs, a HEPScore-style composite
//! score, TCO-based value for money with energy-to-solution, and the
//! 1 EFLOP/s sub-partition extrapolation.
//!
//! The printed report is deterministic: byte-identical at any
//! `JUBENCH_POOL_THREADS`, shard count, or cache temperature.
//!
//! Run with: `cargo run --release --example fleet_study`

use jubench::fleet::partition_tco_eur;
use jubench::fleet::FleetStudy;
use jubench::prelude::*;

fn main() {
    let registry = full_registry();
    let study = FleetStudy::standard();

    println!(
        "evaluating {} backends x {} benchmarks on a {}-shard campaign service...\n",
        study.catalog.len(),
        registry.len(),
        study.n_shards
    );
    let report = study.run(&registry).expect("fleet study");
    println!("{}", report.render());

    // Sub-partition economics: what the 1 EFLOP/s slice of each backend
    // would cost over its own horizon.
    println!("-- 1 EFLOP/s sub-partition TCO --");
    for backend in &report.backends {
        let nodes = backend.exascale_nodes.min(backend.model.machine.nodes);
        println!(
            "{:<10} {:>6} nodes  {:>10.1} M EUR{}",
            backend.model.key,
            nodes,
            partition_tco_eur(&backend.model.machine, nodes) / 1.0e6,
            if backend.exascale_fits {
                ""
            } else {
                "  (capped: backend smaller than the 1 EFLOP/s slice)"
            }
        );
    }

    println!("\ncomposite ranking: {}", report.ranking().join(" > "));
}
