//! The full suite-creation pipeline of Fig. 1 for one benchmark:
//! select → prepare (platform + JUBE workflow) → execute & verify →
//! describe → package with integrity hashes — ending with the 11-point
//! readiness checklist of §III-E.
//!
//! Run with: `cargo run --release --example package_benchmark`

use jubench::core::{Checklist, ChecklistItem};
use jubench::jube::step::output1;
use jubench::jube::{Archive, Platform};
use jubench::prelude::*;

fn main() {
    let id = BenchmarkId::NekRs;
    let mut checklist = Checklist::new();
    checklist.mark(id, ChecklistItem::SourceCodeAvailable);
    checklist.mark(id, ChecklistItem::LicenseClarified);
    checklist.mark(id, ChecklistItem::BuildRecipe);
    checklist.mark(id, ChecklistItem::InputDataPrepared);

    // ---- prepare: platform-inherited JUBE workflow ----------------------
    let mut wf = Workflow::on_platform(&Platform::juwels_booster());
    wf.params.set("nodes", "8");
    wf.params.set("script", "nekrs.job");
    wf.add_step(Step::new("execute", |ctx| {
        let nodes: u32 = ctx.param_as("nodes").ok_or("missing nodes")?;
        let out = jubench::apps_cfd::NekRs
            .run(&RunConfig::test(nodes))
            .map_err(|e| e.to_string())?;
        let mut o = output1("fom_s", format!("{:.4}", out.virtual_time_s));
        o.insert("verified".into(), out.verification.passed().to_string());
        o.insert(
            "submit".into(),
            ctx.param("submit_cmd").unwrap_or("-").to_string(),
        );
        Ok(o)
    }));
    checklist.mark(id, ChecklistItem::JubeIntegration);
    checklist.mark(id, ChecklistItem::ExecutionRules);

    // ---- execute & verify ------------------------------------------------
    let results = wf.execute(&[]).expect("workflow");
    let fom = results[0].value("fom_s").unwrap().to_string();
    assert_eq!(results[0].value("verified"), Some("true"));
    checklist.mark(id, ChecklistItem::VerificationDefined);
    checklist.mark(id, ChecklistItem::ReferenceResults);
    checklist.mark(id, ChecklistItem::ScalabilityStudy);
    println!("executed via: {}", results[0].value("submit").unwrap());
    println!("reference FOM: {fom} s (verified)\n");

    // ---- describe & package ----------------------------------------------
    let description = format!(
        "# nekRS benchmark\n\nReference execution: 8 nodes, FOM {fom} s.\n\
         Verification: key metrics vs. manufactured solution.\n"
    );
    checklist.mark(id, ChecklistItem::DescriptionWritten);

    let table = ResultTable::new(["nodes", "fom_s", "verified"]);
    let mut archive = Archive::new();
    archive.add("DESCRIPTION.md", description);
    archive.add("jube/benchmark.yaml", "nodes: 8\nvariant: base\n");
    archive.add("results/reference.txt", table.render(&results));
    let manifest = archive.manifest();
    checklist.mark(id, ChecklistItem::PackagedForDelivery);

    println!("committed manifest (procurement documentation):\n{manifest}");
    assert!(archive.verify(&manifest).is_empty());
    println!("archive verifies against its manifest.\n");

    println!("{}", checklist.render(&[id]));
    assert!(checklist.ready(id));
    println!("nekRS: all 11 checklist points complete — ready for delivery.");
}
