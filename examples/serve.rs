//! Campaign-service walkthrough: the suite as a multi-tenant daemon.
//!
//! Spins up a [`Server`] with four worker shards, connects a client
//! over an in-process duplex pipe speaking the length-prefixed wire
//! protocol, submits campaigns from two tenants, and drains the
//! streamed results (rows as points execute, job completions as the
//! scheduler places them, the final table/trace/report per campaign).
//! Then resubmits one campaign to show the content-addressed result
//! cache at work — every point answers from cache, the artifacts stay
//! byte-identical, and the hit tallies surface in the run report and
//! the `serve/*` Prometheus exposition.
//!
//! Run with: `cargo run --release --example serve`

use jubench::prelude::*;
use jubench::serve::{serve_session, Client, DuplexPipe, Frame};

fn nightly(tenant: &str, seed: u64) -> CampaignSpec {
    CampaignSpec::new(tenant, "nightly", 48, seed)
        .with_point(RunPoint::test("STREAM", 1, seed))
        .with_point(RunPoint::test("OSU", 2, seed + 1))
        .with_point(RunPoint::test("LinkTest", 8, seed + 2))
        .with_point(RunPoint::test("HPL", 16, seed + 3))
}

fn main() {
    // ----- the service: four shards, a 256-entry cache each ------------
    let mut server = Server::new(4, 256);
    let registry = full_registry();
    let (client_end, mut server_end) = DuplexPipe::pair();
    let service = std::thread::spawn(move || {
        serve_session(&mut server, &registry, &mut server_end, 1).expect("session ends cleanly");
        server
    });

    // ----- two tenants submit campaigns --------------------------------
    let mut client = Client::new(client_end);
    let alice = client.submit(&nightly("alice", 7)).unwrap().unwrap();
    let bob = client.submit(&nightly("bob", 99)).unwrap().unwrap();
    println!("accepted campaigns: alice #{alice}, bob #{bob}\n");

    // A malformed spec is rejected up front, before anything queues.
    let rejected = client
        .submit(&CampaignSpec::new("eve", "empty", 8, 0))
        .unwrap();
    println!("empty campaign rejected: {}\n", rejected.unwrap_err());

    // ----- drain: results stream incrementally -------------------------
    let frames = client.drain().unwrap();
    let mut rows = 0;
    let mut job_dones = 0;
    for frame in &frames {
        match frame {
            Frame::Row {
                campaign,
                index,
                cells,
            } => {
                rows += 1;
                if *campaign == alice {
                    println!("row {index} of #{campaign}: {}", cells.join(" | "));
                }
            }
            Frame::JobDone { .. } => job_dones += 1,
            Frame::Done {
                campaign,
                table,
                report,
                ..
            } => {
                println!("\ncampaign #{campaign} done:\n{table}");
                if *campaign == alice {
                    println!("{report}");
                }
            }
            _ => {}
        }
    }
    println!("streamed {rows} rows and {job_dones} job completions\n");

    // ----- resubmit: the content-addressed cache answers ---------------
    let warm = client.submit(&nightly("alice", 7)).unwrap().unwrap();
    let warm_frames = client.drain().unwrap();
    let table_of = |frames: &[Frame], id: u64| {
        frames
            .iter()
            .find_map(|f| match f {
                Frame::Done {
                    campaign, table, ..
                } if *campaign == id => Some(table.clone()),
                _ => None,
            })
            .expect("campaign completed")
    };
    assert_eq!(
        table_of(&warm_frames, warm),
        table_of(&frames, alice),
        "warm and cold tables are byte-identical"
    );
    println!("warm resubmission #{warm}: table byte-identical to the cold run");
    if let Some(report) = warm_frames.iter().find_map(|f| match f {
        Frame::Done {
            campaign, report, ..
        } if *campaign == warm => Some(report),
        _ => None,
    }) {
        for line in report.lines().filter(|l| l.contains("cache")) {
            println!("  {line}");
        }
    }

    // ----- the service's own metrics -----------------------------------
    let prometheus = client.stats("serve/").unwrap();
    println!("\nserve/* metrics (Prometheus exposition):");
    for line in prometheus.lines().filter(|l| !l.starts_with('#')).take(12) {
        println!("  {line}");
    }

    client.bye().unwrap();
    let server = service.join().unwrap();
    assert!(server.idle());
    println!("\nsession closed; server idle");
}
