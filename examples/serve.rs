//! Campaign-service walkthrough: the suite as a multi-tenant daemon.
//!
//! Spins up a [`Server`] with four worker shards, connects a client
//! over an in-process duplex pipe speaking the length-prefixed wire
//! protocol, submits campaigns from two tenants, and drains the
//! streamed results (rows as points execute, job completions as the
//! scheduler places them, the final table/trace/report per campaign).
//! Then resubmits one campaign to show the content-addressed result
//! cache at work — every point answers from cache, the artifacts stay
//! byte-identical, and the hit tallies surface in the run report and
//! the `serve/*` Prometheus exposition.
//!
//! Ends with the guard layer: a per-tenant quota rejecting (typed,
//! refundable) an over-limit submission, and a supervised drain
//! recovering from a seeded chaos plan — every crashed shard restored
//! from snapshot and retried, the artifacts byte-identical to the
//! fault-free run, and the wall-clock restart overhead printed.
//!
//! Run with: `cargo run --release --example serve`

use jubench::prelude::*;
use jubench::serve::{serve_session, Client, DuplexPipe, Frame};

fn nightly(tenant: &str, seed: u64) -> CampaignSpec {
    CampaignSpec::new(tenant, "nightly", 48, seed)
        .with_point(RunPoint::test("STREAM", 1, seed))
        .with_point(RunPoint::test("OSU", 2, seed + 1))
        .with_point(RunPoint::test("LinkTest", 8, seed + 2))
        .with_point(RunPoint::test("HPL", 16, seed + 3))
}

fn main() {
    // ----- the service: four shards, a 256-entry cache each ------------
    let mut server = Server::new(4, 256);
    let registry = full_registry();
    let (client_end, mut server_end) = DuplexPipe::pair();
    let service = std::thread::spawn(move || {
        serve_session(&mut server, &registry, &mut server_end, 1).expect("session ends cleanly");
        server
    });

    // ----- two tenants submit campaigns --------------------------------
    let mut client = Client::new(client_end);
    let alice = client.submit(&nightly("alice", 7)).unwrap().unwrap();
    let bob = client.submit(&nightly("bob", 99)).unwrap().unwrap();
    println!("accepted campaigns: alice #{alice}, bob #{bob}\n");

    // A malformed spec is rejected up front, before anything queues.
    let rejected = client
        .submit(&CampaignSpec::new("eve", "empty", 8, 0))
        .unwrap();
    println!("empty campaign rejected: {}\n", rejected.unwrap_err());

    // ----- drain: results stream incrementally -------------------------
    let frames = client.drain().unwrap();
    let mut rows = 0;
    let mut job_dones = 0;
    for frame in &frames {
        match frame {
            Frame::Row {
                campaign,
                index,
                cells,
            } => {
                rows += 1;
                if *campaign == alice {
                    println!("row {index} of #{campaign}: {}", cells.join(" | "));
                }
            }
            Frame::JobDone { .. } => job_dones += 1,
            Frame::Done {
                campaign,
                table,
                report,
                ..
            } => {
                println!("\ncampaign #{campaign} done:\n{table}");
                if *campaign == alice {
                    println!("{report}");
                }
            }
            _ => {}
        }
    }
    println!("streamed {rows} rows and {job_dones} job completions\n");

    // ----- resubmit: the content-addressed cache answers ---------------
    let warm = client.submit(&nightly("alice", 7)).unwrap().unwrap();
    let warm_frames = client.drain().unwrap();
    let table_of = |frames: &[Frame], id: u64| {
        frames
            .iter()
            .find_map(|f| match f {
                Frame::Done {
                    campaign, table, ..
                } if *campaign == id => Some(table.clone()),
                _ => None,
            })
            .expect("campaign completed")
    };
    assert_eq!(
        table_of(&warm_frames, warm),
        table_of(&frames, alice),
        "warm and cold tables are byte-identical"
    );
    println!("warm resubmission #{warm}: table byte-identical to the cold run");
    if let Some(report) = warm_frames.iter().find_map(|f| match f {
        Frame::Done {
            campaign, report, ..
        } if *campaign == warm => Some(report),
        _ => None,
    }) {
        for line in report.lines().filter(|l| l.contains("cache")) {
            println!("  {line}");
        }
    }

    // ----- the service's own metrics -----------------------------------
    let prometheus = client.stats("serve/").unwrap();
    println!("\nserve/* metrics (Prometheus exposition):");
    for line in prometheus.lines().filter(|l| !l.starts_with('#')).take(12) {
        println!("  {line}");
    }

    client.bye().unwrap();
    let server = service.join().unwrap();
    assert!(server.idle());
    println!("\nsession closed; server idle");

    // ----- guard demo: per-tenant quotas -------------------------------
    let registry = full_registry();
    let mut gated = Server::new(2, 64).with_admission(AdmissionConfig {
        max_active_per_tenant: 1,
        token_capacity: 8,
        max_points_per_campaign: 8,
    });
    gated.submit(1, nightly("alice", 1), &registry).unwrap();
    let rejection = gated.submit(1, nightly("alice", 2), &registry).unwrap_err();
    println!("\nquota rejection (typed, accounted): {rejection}");
    gated.drain(&registry).unwrap();
    // Retiring the first campaign refunded the quota charge.
    gated.submit(1, nightly("alice", 2), &registry).unwrap();
    println!("after the first campaign retired, the same tenant is admitted again");

    // ----- guard demo: supervised recovery from a seeded chaos plan ----
    quiet_chaos_panics();
    // Partition sizes vary so the population spreads across all four
    // shards (routing keys on the machine fingerprint).
    let populate = |server: &mut Server| {
        for i in 0..24u64 {
            let tenant = ["alice", "bob", "carol"][i as usize % 3];
            let nodes = [8, 16, 24, 48][i as usize % 4];
            let spec = CampaignSpec::new(tenant, "guard", nodes, 1000 + i)
                .with_point(RunPoint::test("STREAM", 1, i))
                .with_point(RunPoint::test("OSU", 2, i + 1))
                .with_point(RunPoint::test("LinkTest", 8, i + 2));
            server.submit(1, spec, &registry).unwrap();
        }
    };
    let mut clean = Server::new(4, 256);
    populate(&mut clean);
    let t0 = std::time::Instant::now();
    let clean_emits = clean.drain_parallel(&registry).unwrap();
    let clean_wall = t0.elapsed();

    let chaos = ChaosPlan::scattered(0xC7A05, 4, 8, 24).with_straggler(1);
    let cfg = SupervisorConfig {
        max_restarts: chaos.crash_count() as u32 + 1,
        ..SupervisorConfig::default()
    };
    let mut chaotic = Server::new(4, 256);
    populate(&mut chaotic);
    let t1 = std::time::Instant::now();
    let outcome = chaotic
        .drain_supervised_parallel(&registry, &cfg, Some(&chaos))
        .unwrap();
    let chaos_wall = t1.elapsed();
    assert!(!outcome.degraded(), "the restart budget absorbs this plan");

    // Artifacts are byte-identical once the run report (which carries
    // the out-of-band guard tallies) is stripped.
    let stripped = |emits: &[jubench::serve::Emit]| -> Vec<Frame> {
        emits
            .iter()
            .map(|e| match &e.frame {
                Frame::Done {
                    campaign,
                    table,
                    chrome_trace,
                    ..
                } => Frame::Done {
                    campaign: *campaign,
                    table: table.clone(),
                    chrome_trace: chrome_trace.clone(),
                    report: String::new(),
                },
                other => other.clone(),
            })
            .collect()
    };
    assert_eq!(
        stripped(&clean_emits),
        stripped(&outcome.emits),
        "supervised chaos recovery is byte-transparent"
    );
    let overhead = chaos_wall.as_secs_f64() / clean_wall.as_secs_f64() - 1.0;
    println!(
        "\nsupervised chaos drain over 24 campaigns: {} shard restarts, \
         {:.1}s virtual backoff charged, artifacts byte-identical",
        outcome.restarts, outcome.backoff_s
    );
    println!(
        "wall clock: fault-free {:.1} ms vs supervised chaos {:.1} ms \
         ({:+.0}% restart overhead)",
        clean_wall.as_secs_f64() * 1e3,
        chaos_wall.as_secs_f64() * 1e3,
        overhead * 100.0
    );
}

/// Silence the backtraces of the deliberately injected chaos crashes:
/// they are caught and recovered by the supervisor, and the default
/// panic hook would spam stderr for every planned crash.
fn quiet_chaos_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let chaos = info
            .payload()
            .downcast_ref::<String>()
            .map(|s| s.starts_with("chaos:"))
            .unwrap_or(false);
        if !chaos {
            default(info);
        }
    }));
}
