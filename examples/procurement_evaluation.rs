//! The procurement pipeline end to end (§II): build the reference set on
//! the preparation system, collect commitments from two hypothetical
//! vendor proposals, evaluate the TCO-based value-for-money metric, and
//! run the High-Scaling assessment against the 1 EFLOP/s(th) partition.
//!
//! Run with: `cargo run --release --example procurement_evaluation`

use jubench::cluster::{GpuSpec, Machine, NodeSpec};
use jubench::prelude::*;
use jubench::procurement::{exascale_partition_nodes, HighScalingAssessment};

fn main() {
    let registry = full_registry();

    // ---- 1. Reference executions on the preparation system -------------
    println!("=== Reference time metrics (preparation system) ===\n");
    let mut reference = ReferenceSet::new();
    let base_ids = [
        (BenchmarkId::Arbor, 1.0),
        (BenchmarkId::Gromacs, 1.5),
        (BenchmarkId::Juqcs, 1.0),
        (BenchmarkId::NekRs, 1.5),
        (BenchmarkId::MegatronLm, 2.0), // AI gains importance (§V-C)
        (BenchmarkId::Nastja, 0.5),
    ];
    for (id, weight) in base_ids {
        let bench = registry.get(id).unwrap();
        let nodes = bench.reference_nodes();
        let out = bench.run(&RunConfig::test(nodes)).expect("reference run");
        let tm = out
            .fom
            .time_metric()
            .expect("base benchmarks have time metrics");
        println!(
            "  {:<14} {:>5} nodes   {:>12.2} s   weight {weight}",
            id.name(),
            nodes,
            tm.0
        );
        reference.add(id, tm, nodes, weight);
    }

    // ---- 2. Two hypothetical system proposals --------------------------
    // Proposal A: many medium accelerators; Proposal B: fewer, stronger,
    // more memory per device.
    let machine_a = Machine {
        name: "Proposal A",
        nodes: 4800,
        node: NodeSpec {
            gpu: GpuSpec::next_gen_96gb(),
            ..NodeSpec::juwels_booster()
        },
        ..Machine::juwels_booster()
    };
    let machine_b = Machine {
        name: "Proposal B",
        nodes: 3600,
        node: NodeSpec {
            gpu: GpuSpec {
                name: "BigMem-128GB",
                fp64_flops: 45.0e12,
                memory_bytes: 128 * (1 << 30),
                mem_bw: 5.2e12,
            },
            power_w: 3200.0,
            ..NodeSpec::juwels_booster()
        },
        ..Machine::juwels_booster()
    };

    let commitments = |speedup: f64| -> Vec<Commitment> {
        reference
            .ids()
            .into_iter()
            .map(|id| Commitment {
                id,
                committed: TimeMetric(reference.reference(id).unwrap().0 / speedup),
                nodes_used: 4,
            })
            .collect()
    };
    let proposal_a = Proposal {
        name: "A (breadth)".into(),
        machine: machine_a,
        price_eur: 480.0e6,
        commitments: commitments(3.1),
    };
    let proposal_b = Proposal {
        name: "B (big memory)".into(),
        machine: machine_b,
        price_eur: 510.0e6,
        commitments: commitments(3.6),
    };

    // ---- 3. TCO / value-for-money evaluation ----------------------------
    println!("\n=== Value-for-money evaluation ===\n");
    for proposal in [&proposal_a, &proposal_b] {
        let tco = TcoModel::eurohpc_defaults(proposal.price_eur);
        let eval = proposal.evaluate(&reference, &tco).expect("valid proposal");
        println!(
            "  {:<16} mean speedup {:>5.2}x   TCO {:>6.0} M EUR   value {:>8.1} workloads/M EUR",
            eval.name,
            eval.mean_speedup,
            eval.tco_total_eur / 1e6,
            eval.value_for_money
        );
    }

    // ---- 4. High-Scaling assessment -------------------------------------
    println!("\n=== High-Scaling assessment (1 EFLOP/s(th) partition) ===\n");
    let suite = suite_meta();
    for proposal in [&proposal_a, &proposal_b] {
        let nodes = exascale_partition_nodes(&proposal.machine);
        println!(
            "  {}: 1 EFLOP/s(th) partition = {} nodes (of {})",
            proposal.name, nodes, proposal.machine.nodes
        );
        for meta in suite.iter().filter(|m| m.high_scale.is_some()) {
            let hs = meta.high_scale.unwrap();
            // Reference runtime on the 50 PF partition; the committed
            // runtime improves with the proposal's per-device speed.
            let reference_rt = TimeMetric(600.0);
            let speed_ratio =
                proposal.machine.node.gpu.fp64_flops / GpuSpec::a100_40gb().fp64_flops;
            let committed = TimeMetric(600.0 / speed_ratio * 1.15);
            let assessment = HighScalingAssessment::build(
                meta.id,
                hs.variants,
                proposal.machine.node.gpu.memory_bytes,
                reference_rt,
                committed,
            )
            .expect("assessment");
            println!(
                "    {:<12} variant {:<7} ratio {:>5.3}",
                meta.id.name(),
                assessment.variant.to_string(),
                assessment.ratio()
            );
        }
    }
    println!("\nSmaller High-Scaling ratios and larger value-for-money win the award.");
}
