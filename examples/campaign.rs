//! Campaign walkthrough: the full 23-benchmark suite as a batch of jobs
//! on a Booster partition. Derives one job per benchmark (cost probed
//! from a virtual-time run, priority from its category), schedules the
//! campaign with conservative backfill under both placement policies,
//! prints the per-job schedule and the utilization timeline, sweeps
//! placement × machine size in the scaling study's table, kills a
//! checkpointed campaign mid-run and resumes it from the snapshot
//! bytes, sweeps checkpoint interval × failure rate against the
//! Young/Daly predictions, and exports the contiguous campaign as a
//! Chrome trace.
//!
//! Run with: `cargo run --release --example campaign`

use std::sync::Arc;

use jubench::ckpt::young_interval;
use jubench::prelude::*;
use jubench::scaling::{campaign_table, ckpt_table};
use jubench::sched::{registry_jobs, run_campaign};
use jubench::trace::RunReport;

fn main() {
    // ----- the job set: one job per suite benchmark --------------------
    let registry = full_registry();
    let jobs = registry_jobs(&registry, 0.05);
    println!(
        "campaign of {} jobs (node counts {}..{}), submissions 50 ms apart\n",
        jobs.len(),
        jobs.iter().map(|j| j.nodes).min().unwrap(),
        jobs.iter().map(|j| j.nodes).max().unwrap(),
    );

    // ----- schedule it on 13 cells under both placements ---------------
    let machine = Machine::juwels_booster().partition(624);
    let config =
        |placement| SchedulerConfig::new(QueuePolicy::ConservativeBackfill, placement, 2024);
    let contiguous = run_campaign(
        machine,
        NetModel::juwels_booster(),
        config(PlacementPolicy::Contiguous),
        &jobs,
        &FaultPlan::new(0),
    );
    println!("=== Contiguous placement ===\n");
    println!("{}", contiguous.render());

    // The utilization timeline: how many nodes were busy when.
    println!("utilization timeline (contiguous):");
    for seg in contiguous.utilization_timeline() {
        println!(
            "  [{:>9.4} s, {:>9.4} s)  {:>4} / {} nodes busy",
            seg.t_start, seg.t_end, seg.busy_nodes, machine.nodes
        );
    }
    println!();

    let scatter = run_campaign(
        machine,
        NetModel::juwels_booster(),
        config(PlacementPolicy::Scatter),
        &jobs,
        &FaultPlan::new(0),
    );
    println!(
        "placement and the makespan: contiguous {:.4} s vs scatter {:.4} s \
         ({:+.1} % from cell-aware packing)\n",
        contiguous.makespan_s,
        scatter.makespan_s,
        100.0 * (contiguous.makespan_s / scatter.makespan_s - 1.0),
    );

    // ----- the placement × machine-size study --------------------------
    println!("=== Campaign study: placement x machine size ===\n");
    println!(
        "{}",
        campaign_table(&registry, &[144, 624], 0.05, 2024).render()
    );

    // ----- checkpoint/restart: kill the scheduler, resume from bytes ---
    println!("=== Checkpoint/restart: kill mid-campaign and resume ===\n");
    let part = Machine::juwels_booster().partition(96);
    let sched = Scheduler::new(
        part,
        NetModel::juwels_booster(),
        config(PlacementPolicy::Contiguous),
    );
    // Checkpoint writes cost 0.02 s; with node drains every ~4 s the
    // Young interval sqrt(2 C M) places the writes.
    let interval = young_interval(0.02, 4.0);
    let ckpt_jobs: Vec<Job> = (0..10u32)
        .map(|i| {
            Job::new(
                i,
                &format!("job{i}"),
                8 + 8 * (i % 4),
                2.0 + 0.3 * f64::from(i),
            )
            .with_comm_fraction(0.2)
            .with_submit(0.25 * f64::from(i))
            .with_retry(RetryPolicy::new(16, 0.05).with_multiplier(1.0))
            .with_checkpointing(interval, 0.02)
        })
        .collect();
    let plan = FaultPlan::periodic_drains(2024, 96, 4.0, 0.5, 30.0, 4.0);

    // The uninterrupted reference run.
    let mut reference = sched.begin(&ckpt_jobs);
    sched.advance(&mut reference, &ckpt_jobs, &plan, f64::INFINITY);
    let reference = sched.finish(reference);

    // Kill the scheduler process halfway through; only the snapshot
    // bytes survive the crash.
    let t_kill = reference.makespan_s * 0.5;
    let mut state = sched.begin(&ckpt_jobs);
    sched.advance(&mut state, &ckpt_jobs, &plan, t_kill);
    let snap = state.snapshot();
    println!(
        "killed the campaign at t = {:.3} s: {} log lines so far, snapshot = {} bytes",
        state.now(),
        state.log().len(),
        snap.len(),
    );
    drop(state);

    let mut resumed = sched.resume(&snap, &ckpt_jobs).expect("snapshot is intact");
    sched.advance(&mut resumed, &ckpt_jobs, &plan, f64::INFINITY);
    let resumed = sched.finish(resumed);
    assert_eq!(
        resumed.log, reference.log,
        "resume must replay to the same schedule"
    );
    println!(
        "resumed to completion: {} log lines, makespan {:.4} s — byte-identical \
         to the uninterrupted run\n",
        resumed.log.len(),
        resumed.makespan_s,
    );

    // ----- the checkpoint-interval study -------------------------------
    println!("=== Checkpoint study: interval x failure rate ===\n");
    let young = young_interval(0.05, 6.0);
    println!(
        "{}",
        ckpt_table(
            8,
            0.05,
            &[None, Some(0.05), Some(young), Some(4.0)],
            &[3.0, 6.0, 12.0],
            17,
        )
        .render()
    );

    // ----- Chrome trace export -----------------------------------------
    let recorder = Arc::new(Recorder::new());
    contiguous.emit(recorder.as_ref());
    let events = recorder.take_events();
    let report = RunReport::from_events(&events);
    println!("{}", report.render());
    let json = chrome_trace_json(&events);
    println!(
        "chrome trace: {} events over {} cell tracks, {} bytes of JSON \
         (load in chrome://tracing or Perfetto)",
        events.len(),
        machine.cells(),
        json.len(),
    );
}
