//! Campaign walkthrough: the full 23-benchmark suite as a batch of jobs
//! on a Booster partition. Derives one job per benchmark (cost probed
//! from a virtual-time run, priority from its category), schedules the
//! campaign with conservative backfill under both placement policies,
//! prints the per-job schedule and the utilization timeline, sweeps
//! placement × machine size in the scaling study's table, and exports
//! the contiguous campaign as a Chrome trace.
//!
//! Run with: `cargo run --release --example campaign`

use std::sync::Arc;

use jubench::prelude::*;
use jubench::scaling::campaign_table;
use jubench::sched::{registry_jobs, run_campaign};
use jubench::trace::RunReport;

fn main() {
    // ----- the job set: one job per suite benchmark --------------------
    let registry = full_registry();
    let jobs = registry_jobs(&registry, 0.05);
    println!(
        "campaign of {} jobs (node counts {}..{}), submissions 50 ms apart\n",
        jobs.len(),
        jobs.iter().map(|j| j.nodes).min().unwrap(),
        jobs.iter().map(|j| j.nodes).max().unwrap(),
    );

    // ----- schedule it on 13 cells under both placements ---------------
    let machine = Machine::juwels_booster().partition(624);
    let config =
        |placement| SchedulerConfig::new(QueuePolicy::ConservativeBackfill, placement, 2024);
    let contiguous = run_campaign(
        machine,
        NetModel::juwels_booster(),
        config(PlacementPolicy::Contiguous),
        &jobs,
        &FaultPlan::new(0),
    );
    println!("=== Contiguous placement ===\n");
    println!("{}", contiguous.render());

    // The utilization timeline: how many nodes were busy when.
    println!("utilization timeline (contiguous):");
    for seg in contiguous.utilization_timeline() {
        println!(
            "  [{:>9.4} s, {:>9.4} s)  {:>4} / {} nodes busy",
            seg.t_start, seg.t_end, seg.busy_nodes, machine.nodes
        );
    }
    println!();

    let scatter = run_campaign(
        machine,
        NetModel::juwels_booster(),
        config(PlacementPolicy::Scatter),
        &jobs,
        &FaultPlan::new(0),
    );
    println!(
        "placement and the makespan: contiguous {:.4} s vs scatter {:.4} s \
         ({:+.1} % from cell-aware packing)\n",
        contiguous.makespan_s,
        scatter.makespan_s,
        100.0 * (contiguous.makespan_s / scatter.makespan_s - 1.0),
    );

    // ----- the placement × machine-size study --------------------------
    println!("=== Campaign study: placement x machine size ===\n");
    println!(
        "{}",
        campaign_table(&registry, &[144, 624], 0.05, 2024).render()
    );

    // ----- Chrome trace export -----------------------------------------
    let recorder = Arc::new(Recorder::new());
    contiguous.emit(recorder.as_ref());
    let events = recorder.take_events();
    let report = RunReport::from_events(&events);
    println!("{}", report.render());
    let json = chrome_trace_json(&events);
    println!(
        "chrome trace: {} events over {} cell tracks, {} bytes of JSON \
         (load in chrome://tracing or Perfetto)",
        events.len(),
        machine.cells(),
        json.len(),
    );
}
