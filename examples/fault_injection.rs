//! Fault-injection walkthrough: run an allreduce-heavy proxy on a healthy
//! partition and again under a seeded fault plan (one straggler node plus
//! a flapping inter-node link), then attribute the makespan inflation to
//! the injected faults, demonstrate a reliable exchange over a lossy
//! link, and print the straggler-density resilience study.
//!
//! Run with: `cargo run --release --example fault_injection`

use std::sync::Arc;

use jubench::cluster::Machine;
use jubench::prelude::*;
use jubench::scaling::resilience_table;

/// The proxy: compute phases tightly coupled by small allreduces — the
/// pattern that makes a single slow node everyone's problem.
fn coupled_proxy(comm: &mut Comm) {
    for _ in 0..8 {
        comm.advance_compute(1.5e-3);
        let mut acc = [comm.rank() as f64; 64];
        comm.allreduce_f64(&mut acc, ReduceOp::Sum).unwrap();
    }
    comm.barrier();
}

fn traced_report(plan: Option<FaultPlan>) -> RunReport {
    let recorder = Arc::new(Recorder::new());
    let mut world =
        World::new(Machine::juwels_booster().partition(2)).with_recorder(recorder.clone());
    if let Some(plan) = plan {
        world = world.with_fault_plan(plan);
    }
    world.run(coupled_proxy);
    RunReport::from_events(&recorder.take_events())
}

fn main() {
    // ----- fault-free baseline vs faulted run --------------------------
    let baseline = traced_report(None);
    // Node 1 computes 4× slower; the link between ranks 0 and 5 drops to
    // 1/10th bandwidth for half of every 2 ms period.
    let plan = FaultPlan::new(2024)
        .with_slow_node(1, 4.0)
        .with_flapping_link(0, 5, 10.0, 2e-3, 0.5);
    let faulted = traced_report(Some(plan));

    println!("=== Fault-free baseline ===\n");
    println!("{}", baseline.render());
    println!("=== Same proxy under the fault plan ===\n");
    println!("{}", faulted.render());
    println!(
        "fault attribution: makespan inflated {:.2}x over the fault-free baseline\n",
        faulted.makespan_inflation(&baseline)
    );

    // ----- riding out a lossy link with retries ------------------------
    let lossy = FaultPlan::new(5).with_message_drop(0, 1, 0.8);
    let world = World::new(Machine::juwels_booster().partition(1)).with_fault_plan(lossy);
    let policy = RetryPolicy::new(16, 5e-6);
    let results = world.run(move |comm| match comm.rank() {
        0 => comm.send_f64_reliable(1, &[1.0; 128], policy).unwrap(),
        1 => comm.recv_f64_reliable(0, policy).unwrap().1,
        _ => 0,
    });
    println!(
        "reliable exchange over an 80% lossy link: delivered after {} attempt(s), \
         receiver spent {:.1} ms of virtual time in timeouts\n",
        results[0].value,
        results[1].clock.total_s() * 1e3
    );

    // ----- the resilience study ----------------------------------------
    println!("=== Resilience study: stragglers vs makespan (4x slowdown) ===\n");
    println!(
        "{}",
        resilience_table(8, &[0.0, 0.125, 0.25, 0.5], 4.0, 2024).render()
    );
}
