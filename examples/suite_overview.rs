//! Regenerate Table I (benchmarks → domains and Berkeley dwarfs) and
//! Table II (application features and execution targets) from the suite
//! metadata.
//!
//! Run with: `cargo run --release --example suite_overview`

use jubench::scaling::{render_table1, render_table2};

fn main() {
    println!("Table I — relation of benchmarks to domains and Berkeley dwarfs");
    println!("(* = prepared for the procurement but not used)\n");
    println!("{}", render_table1());
    println!("Table II — application features and execution targets\n");
    println!("{}", render_table2());
}
