//! Regenerate the data behind Fig. 2: strong scaling of the Base
//! applications around their reference node counts (0.5×, 0.75×, 1×,
//! 1.5×, 2×; benchmarks with algorithmic node-count limitations snap to
//! the closest compatible count, as in the paper's footnote 1).
//!
//! Run with: `cargo run --release --example base_scaling`

use jubench::prelude::*;
use jubench::scaling::strong_scaling_series;

fn main() {
    let registry = full_registry();
    println!("Fig. 2 — relative runtimes of the Base applications\n");
    for bench in registry.by_category(Category::Base) {
        let series = strong_scaling_series(bench, 1);
        println!("{}", series.render());
    }
    // Sub-benchmarks with their own reference node counts (Table II):
    // GROMACS test case C (128 nodes) and ICON R02B10 (300 nodes).
    println!("GROMACS test case C (27×STMV, 28 M atoms):");
    println!(
        "{}",
        strong_scaling_series(&jubench::apps_md::Gromacs::case_c(), 1).render()
    );
    println!("ICON R02B10 (2.5 km):");
    println!(
        "{}",
        strong_scaling_series(&jubench::apps_earth::Icon::r02b10(), 1).render()
    );
    println!("Reading guide (per the figure caption): the reference execution");
    println!("sits at (1.00x nodes, 1.00x runtime); points left of it use fewer");
    println!("nodes (higher runtime), points right of it more nodes (lower");
    println!("runtime, unless the benchmark is latency- or I/O-bound).");
}
