//! The Fig. 1 pipeline as an integration test: a benchmark is prepared,
//! parameterized, executed, verified, and its results tabulated — the
//! JUBE-driven life cycle of §III-B, with real benchmark executions
//! behind the steps.

use jubench::jube::step::output1;
use jubench::prelude::*;

fn nekrs_workflow() -> Workflow {
    let mut wf = Workflow::new();
    // Parameter space: two node counts; a tag switches the HS variant.
    wf.params.set_list("nodes", ["4", "8"]);
    wf.params.set("variant", "base");
    wf.params.set_tagged("variant", "large", "L");
    wf.params.set("tasks", "${nodes}x4");

    // compile → execute → verify → analyse, in JUBE's dependency style.
    wf.add_step(Step::new("compile", |_| {
        // Stands in for the source build: the binary is this process.
        Ok(output1("binary", "nekrs-proxy"))
    }));
    wf.add_step(
        Step::new("execute", |ctx| {
            let nodes: u32 = ctx.param_as("nodes").ok_or("missing nodes")?;
            let mut cfg = RunConfig::test(nodes);
            if ctx.param("variant") == Some("L") {
                cfg = cfg.with_variant(MemoryVariant::Large);
            }
            let out = jubench::apps_cfd::NekRs
                .run(&cfg)
                .map_err(|e| e.to_string())?;
            let mut o = output1("runtime_s", format!("{:.4}", out.virtual_time_s));
            o.insert("verified".into(), out.verification.passed().to_string());
            o.insert(
                "elements_per_gpu".into(),
                format!("{}", out.metric("elements_per_gpu").unwrap_or(0.0)),
            );
            Ok(o)
        })
        .after("compile"),
    );
    wf.add_step(
        Step::new("verify", |ctx| {
            if ctx.output("execute", "verified") != Some("true") {
                return Err("verification failed".into());
            }
            Ok(output1("status", "ok"))
        })
        .after("execute"),
    );
    wf
}

#[test]
fn pipeline_runs_the_parameter_space() {
    let wf = nekrs_workflow();
    let results = wf.execute(&[]).expect("workflow");
    assert_eq!(results.len(), 2, "two node counts");
    for r in &results {
        assert_eq!(r.value("status"), Some("ok"));
        assert!(r.value("runtime_s").unwrap().parse::<f64>().unwrap() > 0.0);
    }
    // Parameter substitution reached the steps.
    assert_eq!(results[0].value("tasks"), Some("4x4"));
    assert_eq!(results[1].value("tasks"), Some("8x4"));
}

#[test]
fn tags_switch_the_memory_variant() {
    let wf = nekrs_workflow();
    let base = wf.execute(&[]).unwrap();
    let large = wf.execute(&["large"]).unwrap();
    let epg = |r: &jubench::jube::WorkpackageResult| {
        r.value("elements_per_gpu").unwrap().parse::<f64>().unwrap()
    };
    // Base on 8 nodes: 22,472 elements/GPU; the L variant keeps the
    // 642-node per-GPU share (≈ 22,492) instead.
    assert!((epg(&base[1]) - 22_472.0).abs() < 1.0);
    assert!((epg(&large[1]) - 22_492.0).abs() < 2.0);
}

#[test]
fn result_table_extracts_the_fom() {
    let wf = nekrs_workflow();
    let results = wf.execute(&[]).unwrap();
    let table = ResultTable::new(["nodes", "runtime_s", "status"]);
    let rendered = table.render(&results);
    assert!(rendered.contains("runtime_s"));
    let foms = table.numeric_column(&results, "runtime_s");
    assert_eq!(foms.len(), 2);
    assert!(foms[0] > foms[1], "8 nodes beat 4 nodes: {foms:?}");
}

#[test]
fn failing_verification_aborts_the_workflow() {
    let mut wf = Workflow::new();
    wf.params.set("nodes", "4");
    wf.add_step(Step::new("execute", |_| Ok(output1("verified", "false"))));
    wf.add_step(
        Step::new("verify", |ctx| {
            if ctx.output("execute", "verified") != Some("true") {
                return Err("computational result does not match the reference".into());
            }
            Ok(output1("status", "ok"))
        })
        .after("execute"),
    );
    let err = wf.execute(&[]).unwrap_err();
    assert!(err.to_string().contains("verify"));
}
