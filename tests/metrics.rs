//! Integration tests of the wall-clock self-observability layer:
//! instrumentation coverage across the runtime crates, the
//! `JUBENCH_METRICS` kill switch, the profiling scopes, and the
//! `BENCH_0.json` baseline + regression gate round trip.
//!
//! Registry state is process-global, so every test here serializes on
//! `metrics::registry::test_mutex()` and leaves metrics enabled behind.

use std::sync::Arc;

use jubench::metrics::{self, compare, GateConfig, MetricsSnapshot, PerfRecord, PerfReport};
use jubench::prelude::*;
use jubench::profile_scope;
use jubench::sched::{registry_jobs, run_campaign};

/// Run `f` with exclusive ownership of the global registry, freshly
/// reset and enabled; restores the enabled state afterwards.
fn with_registry<T>(f: impl FnOnce() -> T) -> T {
    let _guard = metrics::registry::test_mutex().lock().unwrap();
    metrics::set_enabled(true);
    metrics::reset();
    let out = f();
    metrics::reset();
    out
}

#[test]
fn simmpi_instrumentation_counts_messages_and_bytes() {
    let snap = with_registry(|| {
        // One node of the modeled machine runs four ranks (one per GPU).
        let w = World::new(Machine::juwels_booster().partition(1));
        w.run(|comm| {
            let peer = (comm.rank() + 1) % comm.size();
            comm.send_f64(peer, &[1.0; 100]).unwrap();
            comm.recv_f64((comm.rank() + comm.size() - 1) % comm.size())
                .unwrap();
            comm.allreduce_scalar(1.0, ReduceOp::Sum).unwrap();
            comm.barrier();
        });
        metrics::snapshot()
    });
    // 4 explicit sends of 800 bytes each, plus the allreduce's ring
    // traffic underneath.
    assert!(snap.counters["simmpi/msgs/send"] >= 4);
    assert!(snap.counters["simmpi/bytes/send"] >= 4 * 800);
    assert_eq!(
        snap.counters["simmpi/msgs/recv"],
        snap.counters["simmpi/msgs/send"]
    );
    assert_eq!(snap.counters["simmpi/ops/allreduce"], 4);
    assert_eq!(snap.counters["simmpi/ops/barrier"], 4);
}

#[test]
fn sched_instrumentation_profiles_the_backfill_scan() {
    let snap = with_registry(|| {
        let registry = full_registry();
        let jobs = registry_jobs(&registry, 0.05);
        run_campaign(
            Machine::juwels_booster().partition(144),
            NetModel::juwels_booster(),
            SchedulerConfig::new(
                QueuePolicy::ConservativeBackfill,
                PlacementPolicy::Contiguous,
                2024,
            ),
            &jobs,
            &FaultPlan::new(0),
        );
        metrics::snapshot()
    });
    assert!(snap.counters["sched/backfill_scans"] >= 1);
    assert!(snap.counters["sched/events_processed"] >= 2);
    // The backfill scope nests under the advance scope in the profile.
    assert!(snap
        .scopes
        .keys()
        .any(|path| path.ends_with("sched/advance;sched/backfill")));
}

#[test]
fn pool_and_trace_instrumentation_observe_the_hot_paths() {
    let snap = with_registry(|| {
        jubench::pool::with_threads(4, || {
            let out = jubench::pool::par_map_indexed(64, |i| i * 3);
            assert_eq!(out[63], 189);
        });
        let rec = Recorder::new();
        let w = World::new(Machine::juwels_booster().partition(2)).with_recorder(Arc::new(rec));
        w.run(|comm| {
            comm.advance_compute(1e-3);
            comm.barrier();
        });
        metrics::snapshot()
    });
    assert!(snap.counters["pool/tasks_executed"] >= 64);
    assert!(snap.counters["pool/spawns"] >= 64);
    assert!(snap.gauges["pool/queue_depth_peak"] >= 1);
    assert!(snap.counters["trace/events_recorded"] >= 4);
}

#[test]
fn ckpt_instrumentation_times_seal_and_open() {
    let snap = with_registry(|| {
        let payload = vec![0xABu8; 1 << 16];
        let sealed = jubench::ckpt::seal("test-blob", &payload);
        let back = jubench::ckpt::open("test-blob", &sealed).unwrap();
        assert_eq!(back, payload);
        assert!(jubench::ckpt::open("wrong-kind", &sealed).is_err());
        metrics::snapshot()
    });
    assert_eq!(snap.counters["ckpt/seals"], 1);
    assert_eq!(snap.counters["ckpt/opens"], 2);
    assert_eq!(snap.counters["ckpt/open_errors"], 1);
    assert!(snap.counters["ckpt/snapshot_bytes"] >= 1 << 16);
    assert_eq!(snap.histograms["ckpt/seal_ns"].count, 1);
    assert_eq!(snap.histograms["ckpt/open_ns"].count, 2);
}

#[test]
fn kill_switch_disables_every_layer_at_runtime() {
    let snap = with_registry(|| {
        metrics::set_enabled(false);
        let w = World::new(Machine::juwels_booster().partition(2));
        w.run(|comm| {
            comm.allreduce_scalar(1.0, ReduceOp::Sum).unwrap();
            comm.barrier();
        });
        let _ = jubench::ckpt::seal("t", b"x");
        {
            profile_scope!("t/dead");
        }
        let snap = metrics::snapshot();
        metrics::set_enabled(true);
        snap
    });
    assert_eq!(snap, MetricsSnapshot::default());
}

#[test]
fn prometheus_and_json_expositions_cover_the_snapshot() {
    let (text, json) = with_registry(|| {
        metrics::counter_add("t/count", 3);
        metrics::gauge_max("t/peak", 42);
        metrics::observe("t/lat_ns", 1500);
        {
            profile_scope!("t/outer");
            profile_scope!("t/inner");
        }
        (
            metrics::snapshot().render_prometheus(),
            metrics::snapshot().to_json(),
        )
    });
    assert!(text.contains("# TYPE t_count counter\nt_count 3"));
    assert!(text.contains("# TYPE t_peak gauge\nt_peak 42"));
    assert!(text.contains("t_lat_ns_count 1"));
    assert!(text.contains("scope_t_outer_t_inner_inclusive_ns"));
    assert!(json.contains("\"t/count\": 3"));
    assert!(json.contains("\"t/outer;t/inner\""));
}

#[test]
fn self_profile_exports_collapsed_stacks() {
    let collapsed = with_registry(|| {
        {
            profile_scope!("campaign/run");
            {
                profile_scope!("sched/scan");
            }
            {
                profile_scope!("sched/scan");
            }
        }
        metrics::self_profile_collapsed()
    });
    let line = collapsed
        .lines()
        .find(|l| l.starts_with("campaign/run;sched/scan "))
        .expect("nested stack line present");
    let value: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
    let _ = value; // exclusive ns; any non-negative value is valid
    assert!(collapsed.lines().any(|l| l.starts_with("campaign/run ")));
}

// ----- the committed baseline and the regression gate ------------------

fn baseline_path() -> std::path::PathBuf {
    // The newest committed baseline anchors the gate; older BENCH_<n>
    // files stay checked in as the performance trajectory.
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_2.json")
}

#[test]
fn committed_baseline_parses_and_self_compares_to_zero_deltas() {
    let text = std::fs::read_to_string(baseline_path()).expect("BENCH_2.json is checked in");
    let baseline = PerfReport::from_json(&text).expect("baseline parses");
    assert!(
        !baseline.records.is_empty(),
        "baseline must carry benchmarks"
    );
    // Encoding is stable: parse → encode reproduces the committed bytes.
    assert_eq!(baseline.to_json(), text);
    let gate = compare(&baseline, &baseline, GateConfig::default());
    assert!(gate.passed());
    assert!(gate.deltas.iter().all(|d| d.ratio == Some(0.0)));
}

#[test]
fn gate_flags_synthetic_slowdown_against_the_committed_baseline() {
    let text = std::fs::read_to_string(baseline_path()).expect("BENCH_2.json is checked in");
    let baseline = PerfReport::from_json(&text).unwrap();
    // Inject a 2x slowdown into every benchmark.
    let slowed = PerfReport::new(
        baseline
            .records
            .iter()
            .map(|r| PerfRecord {
                id: r.id.clone(),
                median_ns: r.median_ns.saturating_mul(2),
                p10_ns: r.p10_ns.saturating_mul(2),
                p90_ns: r.p90_ns.saturating_mul(2),
                samples: r.samples,
                bytes_per_iter: r.bytes_per_iter,
            })
            .collect(),
    );
    let gate = compare(&baseline, &slowed, GateConfig::default());
    assert!(!gate.passed());
    assert_eq!(gate.regressions().len(), baseline.records.len());
    // And the reverse direction reads as improvements, not regressions.
    let reverse = compare(&slowed, &baseline, GateConfig::default());
    assert!(reverse.passed());
    assert_eq!(reverse.improvements().len(), baseline.records.len());
}
