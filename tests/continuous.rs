//! Continuous Benchmarking end to end: record baselines on the "healthy"
//! system, re-measure, and detect an injected interconnect degradation.

use jubench::continuous::{BaselineStore, CheckStatus, Monitor};
use jubench::prelude::*;

const WATCHED: [BenchmarkId; 4] = [
    BenchmarkId::Arbor,
    BenchmarkId::Juqcs,
    BenchmarkId::NekRs,
    BenchmarkId::Hpl,
];

#[test]
fn healthy_system_stays_green() {
    let registry = full_registry();
    let monitor = Monitor::default();
    let baselines = monitor.record_baselines(&registry, &WATCHED);
    assert_eq!(baselines.len(), WATCHED.len());
    // Re-measuring the unchanged (deterministic) system: everything OK.
    let report = monitor.check(&registry, &baselines);
    assert!(report.healthy(), "{}", report.render());
    assert!(report.entries.iter().all(|e| e.status == CheckStatus::Ok));
}

#[test]
fn interconnect_degradation_is_detected() {
    let registry = full_registry();
    let monitor = Monitor {
        tolerance: 0.05,
        seed: 0xC1,
    };
    let baselines = monitor.record_baselines(&registry, &WATCHED);
    // A maintenance left the network 3× slower: communication-bound
    // virtual times inflate. Inject by scaling the comm share of fresh
    // measurements (the benchmarks separate compute and comm shares).
    let mut degraded = std::collections::BTreeMap::new();
    for &id in &WATCHED {
        let bench = registry.get(id).unwrap();
        let nodes = (1..=bench.reference_nodes().min(16))
            .rev()
            .find(|&n| bench.validate_nodes(n).is_ok())
            .unwrap();
        let out = bench
            .run(&RunConfig {
                seed: 0xC1,
                ..RunConfig::test(nodes)
            })
            .unwrap();
        degraded.insert(id, Some(out.compute_time_s + 3.0 * out.comm_time_s));
    }
    let report = monitor.compare(&baselines, &degraded);
    assert!(!report.healthy(), "{}", report.render());
    // The communication-heavy benchmark (JUQCS: ~96 % comm) must be
    // flagged; the fully-overlapped one (Arbor: 0 % exposed comm) must not.
    assert!(report.regressions().contains(&BenchmarkId::Juqcs));
    let arbor = report
        .entries
        .iter()
        .find(|e| e.id == BenchmarkId::Arbor)
        .unwrap();
    assert_eq!(
        arbor.status,
        CheckStatus::Ok,
        "Arbor hides its communication"
    );
}

#[test]
fn baselines_survive_the_filesystem() {
    let registry = full_registry();
    let monitor = Monitor::default();
    let baselines = monitor.record_baselines(&registry, &[BenchmarkId::NekRs]);
    let dir = std::env::temp_dir().join("jubench-continuous-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("baselines.tsv");
    baselines.save(&path).unwrap();
    let loaded = BaselineStore::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, baselines);
    assert!(monitor.check(&registry, &loaded).healthy());
}
