//! Checkpoint/restart differential tests: the headline invariant is
//! that killing a computation at **any** virtual time, snapshotting,
//! restoring (as another process would) and continuing produces result
//! tables and Chrome traces **byte-identical** to the uninterrupted
//! reference run. Exercised here for the HMC chain, a jube workflow,
//! and the full scheduler campaign — the campaign at 1, 2, and 8 pool
//! threads — plus the corruption sweeps: truncated or bit-flipped
//! snapshots error (never panic), leave the restore target untouched,
//! and degrade into a restart from zero at the scheduler.

use std::sync::Arc;

use jubench::apps_lattice::HmcChain;
use jubench::jube::{output1, WorkflowCheckpoint};
use jubench::pool::with_threads;
use jubench::prelude::*;
use jubench::sched::CampaignState;

const THREADS: [usize; 3] = [1, 2, 8];

// ----- HMC chain ---------------------------------------------------------

fn fresh_chain() -> HmcChain {
    HmcChain::cold([2, 2, 2, 2], 5.5, 4, 0.1, 17)
}

#[test]
fn hmc_kill_resume_matches_the_uninterrupted_chain_anywhere() {
    let mut reference = fresh_chain();
    reference.run(6);
    let ref_table = reference.history_table();
    let ref_snap = reference.snapshot();
    for kill_after in [0u64, 1, 3, 5, 6] {
        let mut victim = fresh_chain();
        victim.run(kill_after);
        let snap = victim.snapshot();
        drop(victim); // the process is gone; only the bytes survive
        let mut resumed = fresh_chain();
        resumed.restore(&snap).unwrap();
        resumed.run(6 - kill_after);
        assert_eq!(
            resumed.history_table(),
            ref_table,
            "killed after {kill_after} trajectories"
        );
        assert_eq!(
            resumed.snapshot(),
            ref_snap,
            "killed after {kill_after} trajectories"
        );
    }
}

#[test]
fn corrupt_hmc_snapshot_errors_and_leaves_the_chain_untouched() {
    let mut source = fresh_chain();
    source.run(2);
    let good = source.snapshot();
    let mut target = fresh_chain();
    let pristine = target.snapshot();
    // Truncation at every prefix length must error, never panic.
    for cut in 0..good.len() {
        assert!(target.restore(&good[..cut]).is_err(), "prefix {cut}");
    }
    // A sample of single-bit flips across the whole snapshot.
    for pos in (0..good.len()).step_by(37) {
        let mut bad = good.clone();
        bad[pos] ^= 0x08;
        assert!(target.restore(&bad).is_err(), "bit flip at {pos}");
    }
    // Every failed restore left the target exactly as it was.
    assert_eq!(target.snapshot(), pristine);
    target.restore(&good).unwrap();
    assert_eq!(target.snapshot(), good);
}

// ----- jube workflow -----------------------------------------------------

fn study_workflow(fail_execute_once: bool) -> Workflow {
    use std::sync::atomic::{AtomicU32, Ordering};
    let mut wf = Workflow::new();
    wf.params.set_list("nodes", ["2", "4", "8"]);
    wf.add_step(Step::new("compile", |_| Ok(output1("binary", "bench.x"))));
    let failures = Arc::new(AtomicU32::new(0));
    wf.add_step(
        Step::new("execute", move |ctx| {
            if fail_execute_once && failures.fetch_add(1, Ordering::SeqCst) == 1 {
                return Err("node died mid-campaign".into());
            }
            let nodes = ctx.param("nodes").unwrap().to_string();
            Ok(output1("out", format!("ran-on-{nodes}")))
        })
        .after("compile"),
    );
    wf.add_step(
        Step::new("analyse", |ctx| {
            Ok(output1(
                "fom",
                format!("{}!", ctx.output("execute", "out").unwrap()),
            ))
        })
        .after("execute"),
    );
    wf
}

/// Result table + full trace of one workflow run, as comparable bytes.
fn workflow_artifact(wf: &Workflow, rec: &Recorder) -> String {
    let results = wf.execute(&[]).unwrap();
    let table: String = results
        .iter()
        .map(|r| {
            format!(
                "nodes={} fom={}\n",
                r.value("nodes").unwrap(),
                r.value("fom").unwrap()
            )
        })
        .collect();
    format!("{table}{}", chrome_trace_json(&rec.take_events()))
}

#[test]
fn workflow_killed_and_resumed_from_snapshot_matches_reference() {
    let ref_rec = Arc::new(Recorder::new());
    let reference = workflow_artifact(
        &study_workflow(false).with_recorder(ref_rec.clone()),
        &ref_rec,
    );

    // First run dies inside the second workpackage's execute step; the
    // checkpoint keeps every step that completed before the crash.
    let store = Arc::new(WorkflowCheckpoint::new());
    assert!(study_workflow(true)
        .with_checkpoint(store.clone())
        .execute(&[])
        .is_err());
    assert!(!store.is_empty());

    // Process death: only the snapshot bytes cross over.
    let snap = store.snapshot();
    let mut restored = WorkflowCheckpoint::new();
    restored.restore(&snap).unwrap();
    let res_rec = Arc::new(Recorder::new());
    let resumed = workflow_artifact(
        &study_workflow(false)
            .with_recorder(res_rec.clone())
            .with_checkpoint(Arc::new(restored)),
        &res_rec,
    );
    assert_eq!(resumed, reference, "resumed run must be byte-identical");
}

// ----- scheduler campaign ------------------------------------------------

fn campaign_scheduler() -> Scheduler {
    Scheduler::new(
        Machine::juwels_booster().partition(96),
        NetModel::juwels_booster(),
        SchedulerConfig::new(
            QueuePolicy::ConservativeBackfill,
            PlacementPolicy::Contiguous,
            9,
        ),
    )
}

fn campaign_jobs() -> Vec<Job> {
    (0..10u32)
        .map(|i| {
            let mut j = Job::new(i, &format!("job{i}"), 8 + 8 * (i % 4), 2.0 + 0.3 * i as f64)
                .with_comm_fraction(0.2)
                .with_priority((i % 3) as i32)
                .with_submit(0.25 * i as f64)
                .with_retry(RetryPolicy::new(16, 0.05).with_multiplier(1.0));
            if i % 2 == 0 {
                j = j.with_checkpointing(0.4, 0.02);
            }
            j
        })
        .collect()
}

fn campaign_plan() -> FaultPlan {
    // Seeded recurring drains plus a pinned drain window [1, 3) and a
    // permanent crash, so kill times can land inside a fault window.
    FaultPlan::periodic_drains(9, 96, 4.0, 0.5, 30.0, 4.0)
        .with_slow_node_window(5, 4.0, 1.0, 3.0)
        .with_rank_crash(40, 2.5)
}

/// Schedule log + Chrome trace of one campaign run, as comparable bytes.
fn campaign_artifact(state: CampaignState) -> String {
    let schedule = campaign_scheduler().finish(state);
    let rec = Recorder::new();
    schedule.emit(&rec);
    format!(
        "{}\n{}",
        schedule.log.join("\n"),
        chrome_trace_json(&rec.take_events())
    )
}

fn straight_through_campaign() -> String {
    let sched = campaign_scheduler();
    let (jobs, plan) = (campaign_jobs(), campaign_plan());
    let mut state = sched.begin(&jobs);
    sched.advance(&mut state, &jobs, &plan, f64::INFINITY);
    campaign_artifact(state)
}

fn killed_and_resumed_campaign(t_kill: f64) -> String {
    let sched = campaign_scheduler();
    let (jobs, plan) = (campaign_jobs(), campaign_plan());
    let mut state = sched.begin(&jobs);
    sched.advance(&mut state, &jobs, &plan, t_kill);
    let snap = state.snapshot();
    drop(state); // the scheduler process dies here
    let mut resumed = campaign_scheduler().resume(&snap, &jobs).unwrap();
    sched.advance(&mut resumed, &jobs, &plan, f64::INFINITY);
    campaign_artifact(resumed)
}

/// Kill times covering campaign start, mid-queue, the interior of the
/// pinned drain window [1, 3), the crash instant, and the tail.
const KILL_TIMES: [f64; 5] = [0.0, 0.8, 2.0, 2.5, 6.5];

#[test]
fn campaign_kill_resume_is_byte_identical_at_every_kill_time() {
    let reference = straight_through_campaign();
    assert!(
        reference.contains("drain node 5"),
        "the pinned fault window must be active"
    );
    for t_kill in KILL_TIMES {
        assert_eq!(
            killed_and_resumed_campaign(t_kill),
            reference,
            "killed at t={t_kill}"
        );
    }
}

#[test]
fn campaign_kill_resume_is_byte_identical_across_pool_widths() {
    // The same differential at every pool width: the 1-thread run is the
    // sequential reference; any scheduling-order leak into the log or
    // trace shows up as a byte diff.
    let artifact = || {
        let reference = straight_through_campaign();
        for t_kill in KILL_TIMES {
            assert_eq!(killed_and_resumed_campaign(t_kill), reference);
        }
        reference
    };
    let reference = with_threads(THREADS[0], artifact);
    for &t in &THREADS[1..] {
        assert_eq!(
            with_threads(t, artifact),
            reference,
            "campaign artifact at {t} pool threads diverged from sequential"
        );
    }
}

#[test]
fn corrupt_campaign_snapshot_degrades_into_restart_from_zero() {
    let sched = campaign_scheduler();
    let (jobs, plan) = (campaign_jobs(), campaign_plan());
    let mut state = sched.begin(&jobs);
    sched.advance(&mut state, &jobs, &plan, 2.0);
    let good = state.snapshot();

    // Truncation at every prefix length errors, never panics, and
    // resume_or_restart hands back a fresh campaign each time.
    for cut in 0..good.len() {
        let (fresh, err) = sched.resume_or_restart(&good[..cut], &jobs);
        assert!(err.is_some(), "prefix {cut}");
        assert_eq!(fresh.now(), 0.0);
        assert_eq!(fresh.log().len(), 1, "only the header line");
    }
    // A sample of single-bit flips across the snapshot.
    for pos in (0..good.len()).step_by(53) {
        let mut bad = good.clone();
        bad[pos] ^= 0x10;
        let (fresh, err) = sched.resume_or_restart(&bad, &jobs);
        assert!(err.is_some(), "bit flip at {pos}");
        assert_eq!(fresh.log().len(), 1);
    }
    // The intact snapshot still resumes, and the restarted-from-zero
    // campaign converges to the same final artifact as the resumed one.
    let (resumed, err) = sched.resume_or_restart(&good, &jobs);
    assert!(err.is_none());
    assert_eq!(resumed.now(), state.now());
    let mut resumed = resumed;
    sched.advance(&mut resumed, &jobs, &plan, f64::INFINITY);
    let mut from_zero = sched.begin(&jobs);
    sched.advance(&mut from_zero, &jobs, &plan, f64::INFINITY);
    assert_eq!(campaign_artifact(resumed), campaign_artifact(from_zero));
}

#[test]
fn wrong_kind_snapshot_is_rejected_with_a_typed_error() {
    // An HMC snapshot is a structurally valid envelope of the wrong
    // kind: every consumer must reject it with WrongKind, not decode it.
    let mut chain = fresh_chain();
    chain.run(1);
    let hmc_snap = chain.snapshot();
    let sched = campaign_scheduler();
    let jobs = campaign_jobs();
    let err = sched.resume(&hmc_snap, &jobs).map(|_| ()).unwrap_err();
    match err {
        CkptError::WrongKind { expected, found } => {
            assert_eq!(expected, "sched-campaign");
            assert_eq!(found, "hmc-chain");
        }
        other => panic!("expected WrongKind, got {other:?}"),
    }
    let mut store = WorkflowCheckpoint::new();
    assert!(matches!(
        store.restore(&hmc_snap),
        Err(CkptError::WrongKind { .. })
    ));
}
