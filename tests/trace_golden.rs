//! Golden-output tests for the tracing layer: a fixed-seed halo-exchange
//! run must produce a byte-stable Chrome trace and exactly predictable
//! regime byte counters, and the derived RunReport must reproduce the
//! virtual clocks of the runtime exactly.

use std::sync::Arc;

use jubench::cluster::Machine;
use jubench::prelude::*;
use jubench::trace::{EventKind, Regime, TraceEvent};

/// The deterministic workload: 8 ranks on 2 Booster nodes; per rank one
/// compute span, an intra-node exchange (peer `rank ^ 1`), an inter-node
/// exchange (peer `rank ^ 4`), a ring allreduce, and a barrier.
fn halo_workload(comm: &mut Comm) {
    comm.advance_compute(0.25 * (comm.rank() % 4 + 1) as f64);
    let data = [comm.rank() as f64; 100]; // 800 B payloads
    comm.sendrecv_f64(comm.rank() ^ 1, &data).unwrap();
    comm.sendrecv_f64(comm.rank() ^ 4, &data).unwrap();
    let mut acc = [comm.rank() as f64; 8];
    comm.allreduce_f64(&mut acc, ReduceOp::Sum).unwrap();
    comm.barrier();
}

fn traced_run() -> (Vec<jubench::simmpi::RankResult<()>>, Vec<TraceEvent>) {
    let rec = Arc::new(Recorder::new());
    let world = World::new(Machine::juwels_booster().partition(2)).with_recorder(rec.clone());
    let results = world.run(halo_workload);
    (results, rec.take_events())
}

#[test]
fn chrome_trace_is_byte_stable_across_runs() {
    let (_, events_a) = traced_run();
    let (_, events_b) = traced_run();
    let json_a = chrome_trace_json(&events_a);
    let json_b = chrome_trace_json(&events_b);
    assert_eq!(
        json_a, json_b,
        "identical deterministic runs must export identical traces"
    );
    // Sanity on the format itself.
    assert!(json_a.starts_with("[\n") && json_a.ends_with("\n]\n"));
    assert!(json_a.contains("\"process_name\""));
    assert!(json_a.contains("\"name\":\"node 0\""));
    assert!(json_a.contains("\"name\":\"node 1\""));
    assert!(json_a.contains("\"name\":\"rank 7\""));
    assert!(json_a.contains("\"regime\":\"intra-node\""));
    assert!(json_a.contains("\"regime\":\"intra-cell\""));
}

#[test]
fn regime_byte_counters_are_exact() {
    let (_, events) = traced_run();
    let report = RunReport::from_events(&events);
    // Exchanges: every rank sends 800 B to rank^1 (same node) and 800 B
    // to rank^4 (other node, same cell): 8 × 800 each.
    // Allreduce (ring, 8 ranks, 8 elements): 14 sends of one 8-byte chunk
    // per rank over the right-neighbour ring, of whose 8 links 6 stay on
    // a node and 2 cross nodes: 6 × 112 B intra, 2 × 112 B inter.
    assert_eq!(report.regime_bytes(Regime::IntraNode), 8 * 800 + 6 * 112);
    assert_eq!(report.regime_bytes(Regime::IntraCell), 8 * 800 + 2 * 112);
    assert_eq!(report.regime_bytes(Regime::SameDevice), 0);
    assert_eq!(report.regime_bytes(Regime::InterCell), 0);
    assert_eq!(report.regime_bytes(Regime::InterModule), 0);
    assert_eq!(report.total_bytes(), 2 * 8 * 800 + 8 * 112);
}

#[test]
fn report_reproduces_clock_stats_exactly() {
    let (results, events) = traced_run();
    let report = RunReport::from_events(&events);
    assert_eq!(report.ranks.len(), results.len());
    for r in &results {
        let breakdown = report
            .ranks
            .iter()
            .find(|b| b.rank == r.rank)
            .expect("every rank appears in the report");
        assert!(
            (breakdown.compute_s - r.clock.compute_s).abs() < 1e-12,
            "rank {}: report compute {} vs clock {}",
            r.rank,
            breakdown.compute_s,
            r.clock.compute_s
        );
        assert!(
            (breakdown.comm_s - r.clock.comm_s).abs() < 1e-9,
            "rank {}: report comm {} vs clock {}",
            r.rank,
            breakdown.comm_s,
            r.clock.comm_s
        );
    }
    // The makespan attribution picks the critical rank.
    let max_total = results
        .iter()
        .map(|r| r.clock.total_s())
        .fold(0.0f64, f64::max);
    assert!((report.makespan.total_s - max_total).abs() < 1e-9);
}

#[test]
fn regime_buckets_sum_to_per_rank_sent_bytes() {
    let (_, events) = traced_run();
    let report = RunReport::from_events(&events);
    let rank_total: u64 = report.ranks.iter().map(|b| b.sent_bytes).sum();
    assert_eq!(report.total_bytes(), rank_total);
    let rank_msgs: u64 = report.ranks.iter().map(|b| b.sent_messages).sum();
    assert_eq!(report.total_messages(), rank_msgs);
    // And the raw events agree with both.
    let event_bytes: u64 = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Send { bytes, .. } => Some(bytes),
            _ => None,
        })
        .sum();
    assert_eq!(event_bytes, rank_total);
}

#[test]
fn collective_spans_wrap_their_p2p_events() {
    let (_, events) = traced_run();
    // Each rank has exactly one allreduce span and one barrier.
    for rank in 0..8u32 {
        let mine: Vec<&TraceEvent> = events.iter().filter(|e| e.rank == rank).collect();
        let allreduce: Vec<&&TraceEvent> = mine
            .iter()
            .filter(|e| {
                matches!(e.kind, EventKind::Collective { kind, .. }
                if kind == jubench::trace::CollectiveKind::Allreduce)
            })
            .collect();
        assert_eq!(allreduce.len(), 1, "rank {rank}");
        let span = allreduce[0];
        // The 14 ring sends/recvs of the allreduce fall inside the span.
        let inside = mine
            .iter()
            .filter(|e| {
                matches!(e.kind, EventKind::Send { .. } | EventKind::Recv { .. })
                    && e.t_start >= span.t_start - 1e-12
                    && e.t_end <= span.t_end + 1e-12
            })
            .count();
        assert!(
            inside >= 28,
            "rank {rank}: {inside} p2p events inside the span"
        );
    }
}
