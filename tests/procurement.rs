//! End-to-end procurement: reference runs → commitments → TCO
//! value-for-money → High-Scaling assessment, with real benchmark
//! executions producing the reference time metrics.

use jubench::cluster::{GpuSpec, Machine, NodeSpec};
use jubench::prelude::*;
use jubench::procurement::{exascale_partition_nodes, HighScalingAssessment};

fn build_reference() -> ReferenceSet {
    let registry = full_registry();
    let mut reference = ReferenceSet::new();
    for (id, weight) in [
        (BenchmarkId::Arbor, 1.0),
        (BenchmarkId::Juqcs, 1.0),
        (BenchmarkId::NekRs, 1.5),
    ] {
        let bench = registry.get(id).unwrap();
        let nodes = bench.reference_nodes();
        let out = bench.run(&RunConfig::test(nodes)).unwrap();
        reference.add(id, out.fom.time_metric().unwrap(), nodes, weight);
    }
    reference
}

fn proposal_machine() -> Machine {
    Machine {
        name: "test proposal",
        nodes: 4000,
        node: NodeSpec {
            gpu: GpuSpec::next_gen_96gb(),
            ..NodeSpec::juwels_booster()
        },
        ..Machine::juwels_booster()
    }
}

#[test]
fn full_procurement_round_trip() {
    let reference = build_reference();
    assert_eq!(reference.len(), 3);
    let commitments: Vec<Commitment> = reference
        .ids()
        .into_iter()
        .map(|id| Commitment {
            id,
            committed: TimeMetric(reference.reference(id).unwrap().0 / 3.0),
            nodes_used: 3,
        })
        .collect();
    let proposal = Proposal {
        name: "vendor X".into(),
        machine: proposal_machine(),
        price_eur: 500.0e6,
        commitments,
    };
    let tco = TcoModel::eurohpc_defaults(proposal.price_eur);
    let eval = proposal.evaluate(&reference, &tco).unwrap();
    assert!((eval.mean_speedup - 3.0).abs() < 1e-9);
    assert!(eval.value_for_money > 0.0);
    assert!(
        eval.tco_total_eur > proposal.price_eur,
        "opex must add to capex"
    );
}

#[test]
fn weights_shift_the_outcome() {
    // Two proposals: one fast on Arbor, one fast on nekRS. Re-weighting
    // the reference flips the preference (the "right number and balance"
    // discussion of §V-C).
    let registry = full_registry();
    let run = |id: BenchmarkId| {
        let bench = registry.get(id).unwrap();
        let out = bench
            .run(&RunConfig::test(bench.reference_nodes()))
            .unwrap();
        out.fom.time_metric().unwrap()
    };
    let arbor_ref = run(BenchmarkId::Arbor);
    let nekrs_ref = run(BenchmarkId::NekRs);

    let mk_ref = |arbor_weight: f64, nekrs_weight: f64| {
        let mut r = ReferenceSet::new();
        r.add(BenchmarkId::Arbor, arbor_ref, 8, arbor_weight);
        r.add(BenchmarkId::NekRs, nekrs_ref, 8, nekrs_weight);
        r
    };
    let mk_proposal = |name: &str, arbor_speed: f64, nekrs_speed: f64| Proposal {
        name: name.into(),
        machine: proposal_machine(),
        price_eur: 500.0e6,
        commitments: vec![
            Commitment {
                id: BenchmarkId::Arbor,
                committed: TimeMetric(arbor_ref.0 / arbor_speed),
                nodes_used: 4,
            },
            Commitment {
                id: BenchmarkId::NekRs,
                committed: TimeMetric(nekrs_ref.0 / nekrs_speed),
                nodes_used: 4,
            },
        ],
    };
    let tco = TcoModel::eurohpc_defaults(500.0e6);
    let a = mk_proposal("arbor-fast", 5.0, 2.0);
    let b = mk_proposal("nekrs-fast", 2.0, 5.0);

    let arbor_heavy = mk_ref(5.0, 1.0);
    let eval_a = a.evaluate(&arbor_heavy, &tco).unwrap();
    let eval_b = b.evaluate(&arbor_heavy, &tco).unwrap();
    assert!(eval_a.mean_speedup > eval_b.mean_speedup);

    let nekrs_heavy = mk_ref(1.0, 5.0);
    let eval_a = a.evaluate(&nekrs_heavy, &tco).unwrap();
    let eval_b = b.evaluate(&nekrs_heavy, &tco).unwrap();
    assert!(eval_b.mean_speedup > eval_a.mean_speedup);
}

#[test]
fn high_scaling_assessment_uses_best_fitting_variant() {
    let machine = proposal_machine();
    let nodes = exascale_partition_nodes(&machine);
    assert!(nodes > 0 && nodes <= machine.nodes);
    // Arbor offers T/S/M/L; a 96 GB device takes L.
    let meta = suite_meta();
    let arbor = meta.iter().find(|m| m.id == BenchmarkId::Arbor).unwrap();
    let assess = HighScalingAssessment::build(
        BenchmarkId::Arbor,
        arbor.high_scale.unwrap().variants,
        machine.node.gpu.memory_bytes,
        TimeMetric(600.0),
        TimeMetric(550.0),
    )
    .unwrap();
    assert_eq!(assess.variant, MemoryVariant::Large);
    assert!((assess.ratio() - 550.0 / 600.0).abs() < 1e-12);
}

#[test]
fn commitments_must_cover_the_reference_set() {
    let reference = build_reference();
    let proposal = Proposal {
        name: "incomplete".into(),
        machine: proposal_machine(),
        price_eur: 500.0e6,
        commitments: vec![Commitment {
            id: BenchmarkId::Arbor,
            committed: TimeMetric(1.0),
            nodes_used: 1,
        }],
    };
    let tco = TcoModel::eurohpc_defaults(500.0e6);
    assert!(matches!(
        proposal.evaluate(&reference, &tco),
        Err(SuiteError::RuleViolation { .. })
    ));
}
