//! Regression tests for the pool migration of `kernels::linalg` and the
//! `apps-common` rank-spawn cap.
//!
//! These live in their own test binary: the dedicated-thread counters in
//! `jubench::pool` are process-global atomics, so delta assertions on
//! them must not race other integration tests spawning worlds.

use jubench::apps_common::real_exec_world;
use jubench::kernels::{gemm, rank_rng, Matrix};
use jubench::pool::{
    dedicated_peak_in_flight, dedicated_spawned_total, run_dedicated, with_threads,
    MAX_DEDICATED_THREADS,
};
use jubench::prelude::*;
use std::sync::{Mutex, OnceLock};

/// Serializes the tests that assert on deltas of the process-global
/// spawn counters — the default test harness runs tests concurrently.
fn counter_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// The straightforward triple loop `gemm` replaced: the pre-migration
/// sequential reference.
fn gemm_reference(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols, b.rows);
    let k = a.cols;
    Matrix::from_fn(a.rows, b.cols, |i, j| {
        let mut acc = 0.0;
        for p in 0..k {
            acc += a[(i, p)] * b[(p, j)];
        }
        acc
    })
}

/// `gemm` on the pool is bitwise-identical to the sequential reference
/// for every pool width: row chunking never changes the per-row loop
/// order, so the floating-point results cannot drift.
#[test]
fn pooled_gemm_matches_sequential_reference_bitwise() {
    for case in 0..6u64 {
        let mut rng = rank_rng(0xAC + case, 21);
        let m = rng.gen_range(1usize..96);
        let k = rng.gen_range(1usize..48);
        let n = rng.gen_range(1usize..96);
        let a = Matrix::from_fn(m, k, |_, _| rng.gen_range(-2.0..2.0));
        let b = Matrix::from_fn(k, n, |_, _| rng.gen_range(-2.0..2.0));
        let reference = gemm_reference(&a, &b);
        for threads in [1usize, 2, 8] {
            let c = with_threads(threads, || gemm(&a, &b));
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(
                        c[(i, j)].to_bits(),
                        reference[(i, j)].to_bits(),
                        "case {case}: gemm({m}x{k}x{n}) at {threads} threads, \
                         element ({i},{j}) not bitwise-identical"
                    );
                }
            }
        }
    }
}

/// The rank-spawn cap: a real-execution world over any machine size
/// collapses to at most `MAX_DEDICATED_THREADS` ranks.
#[test]
fn real_exec_rank_count_is_capped_at_dedicated_limit() {
    let world = real_exec_world(Machine::juwels_booster().partition(936));
    assert_eq!(world.ranks(), MAX_DEDICATED_THREADS);
    let small = real_exec_world(Machine::juwels_booster().partition(2));
    assert!(small.ranks() <= MAX_DEDICATED_THREADS);
}

/// `run_dedicated` spawns exactly `n` OS threads per call (counted by
/// the process-global totals) and all `n` are concurrently alive — a
/// `Barrier` rendezvous across them deadlocks otherwise.
#[test]
fn run_dedicated_spawn_count_never_exceeds_request() {
    let _guard = counter_lock();
    let n = MAX_DEDICATED_THREADS;
    let before = dedicated_spawned_total();
    let barrier = std::sync::Barrier::new(n as usize);
    let out = run_dedicated(n, |rank| {
        barrier.wait();
        rank
    });
    let spawned = dedicated_spawned_total() - before;
    assert_eq!(spawned, n as usize, "exactly one OS thread per rank");
    assert!(dedicated_peak_in_flight() >= n as usize);
    let ranks: Vec<u32> = out.into_iter().map(|r| r.unwrap()).collect();
    assert_eq!(ranks, (0..n).collect::<Vec<_>>());
}

/// A capped world run end to end: 936 virtual nodes execute on 16 real
/// threads, and the spawn-count delta for the run is exactly the capped
/// rank count — the cap is what bounds OS-thread usage, not the machine
/// size.
#[test]
fn capped_world_run_spawns_only_capped_thread_count() {
    let _guard = counter_lock();
    let world = real_exec_world(Machine::juwels_booster().partition(936));
    let ranks = world.ranks();
    let before = dedicated_spawned_total();
    let results = world.run(|comm| {
        let mut acc = [1.0f64];
        comm.allreduce_f64(&mut acc, ReduceOp::Sum).unwrap();
        acc[0]
    });
    let spawned = dedicated_spawned_total() - before;
    assert_eq!(spawned, ranks as usize);
    assert!(results.iter().all(|r| r.value == ranks as f64));
}
