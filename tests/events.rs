//! Determinism harness for the event-driven virtual-time core.
//!
//! The scheduler's event engine (`Scheduler::run`, pops the next event
//! off a global `(time, class, rank, seq)`-ordered queue) soaked for
//! one PR against the legacy ticked engine as a byte-for-byte oracle;
//! that oracle is now deleted and this harness pins the surviving
//! contracts directly: every artifact the suite exports — the decision
//! log, the rendered schedule table, the `RunReport` aggregate, and the
//! Chrome trace JSON — is byte-identical across pool widths and across
//! any snapshot/resume slicing of the same campaign. Any divergence in
//! event ordering, float arithmetic, or tie-breaking shows up as a byte
//! diff here, not as a subtly different table in a paper figure.

use std::sync::Arc;

use jubench::pool::with_threads;
use jubench::prelude::*;
use jubench::sched::registry_jobs;
use jubench::trace::RunReport;

const THREADS: [usize; 3] = [1, 2, 8];

fn booster_scheduler(seed: u64) -> Scheduler {
    Scheduler::new(
        Machine::juwels_booster().partition(144),
        NetModel::juwels_booster(),
        SchedulerConfig::new(
            QueuePolicy::ConservativeBackfill,
            PlacementPolicy::Contiguous,
            seed,
        ),
    )
}

/// A plan that measurably perturbs the registry campaign: two drain
/// windows and one node crash landing while jobs are running.
fn faulted_plan() -> FaultPlan {
    FaultPlan::new(5)
        .with_slow_node_window(3, 2.0, 0.5, 3.0)
        .with_slow_node_window(70, 2.0, 1.0, 4.0)
        .with_rank_crash(10, 2.0)
}

/// Every exported artifact of one campaign run, concatenated: the
/// byte-identity surface of the harness.
fn campaign_bundle(scheduler: &Scheduler, jobs: &[Job], plan: &FaultPlan) -> String {
    let schedule = scheduler.run(jobs, plan);
    let rec = Arc::new(Recorder::new());
    schedule.emit(rec.as_ref());
    let events = rec.take_events();
    format!(
        "{}\n{}\n{}\n{}",
        schedule.log.join("\n"),
        schedule.render(),
        RunReport::from_events(&events).render(),
        chrome_trace_json(&events)
    )
}

/// The headline contract: over the full registry campaign, with and
/// without faults, the event engine's bytes are identical at every pool
/// width.
#[test]
fn event_engine_is_byte_identical_across_the_pool_matrix() {
    let registry = full_registry();
    let jobs = registry_jobs(&registry, 0.05);
    assert_eq!(jobs.len(), registry.len(), "one job per benchmark");
    let scheduler = booster_scheduler(2024);
    for (name, plan) in [("empty", FaultPlan::new(0)), ("faulted", faulted_plan())] {
        let oracle = with_threads(1, || campaign_bundle(&scheduler, &jobs, &plan));
        for &t in &THREADS {
            let bundle = with_threads(t, || campaign_bundle(&scheduler, &jobs, &plan));
            assert_eq!(
                bundle, oracle,
                "event engine is thread-variant ({name} plan, {t} pool threads)"
            );
        }
    }
}

/// The faulted arm of the matrix must actually exercise fault handling,
/// or the matrix above degenerates into the empty-plan case run twice.
#[test]
fn faulted_matrix_arm_preempts_jobs() {
    let jobs = registry_jobs(&full_registry(), 0.05);
    let scheduler = booster_scheduler(2024);
    let faulted = scheduler.run(&jobs, &faulted_plan());
    let clean = scheduler.run(&jobs, &FaultPlan::new(0));
    assert_eq!(faulted.finished(), jobs.len(), "retries recover every job");
    let preemptions: u32 = faulted.records.iter().map(|r| r.preemptions()).sum();
    assert!(preemptions > 0, "the drains must hit running jobs");
    assert_ne!(faulted.log, clean.log, "the plan must perturb the log");
}

/// The event queue is rebuilt from `CampaignState` on each `advance`,
/// never persisted — so a campaign sliced at arbitrary points, with a
/// snapshot/restore round trip across every slice boundary, produces
/// the same bytes as the straight-through run. This is the test that
/// pins that design now that the cross-engine handover oracle is gone.
#[test]
fn snapshot_slicing_matches_the_straight_run() {
    let jobs = registry_jobs(&full_registry(), 0.05);
    let plan = faulted_plan();
    let scheduler = booster_scheduler(2024);
    let oracle = scheduler.run(&jobs, &plan);

    // First half → snapshot → resume to the end.
    let mut state = scheduler.begin(&jobs);
    scheduler.advance(&mut state, &jobs, &plan, oracle.makespan_s / 2.0);
    let bytes = state.snapshot();
    let mut resumed = scheduler
        .resume(&bytes, &jobs)
        .expect("own snapshot restores");
    scheduler.advance(&mut resumed, &jobs, &plan, f64::INFINITY);
    let handover = scheduler.finish(resumed);
    assert_eq!(handover.log, oracle.log, "half-way handover drifted");
    assert_eq!(handover.makespan_s, oracle.makespan_s);

    // Slice with an awkward width, snapshotting across every boundary.
    let mut state = scheduler.begin(&jobs);
    let slice = oracle.makespan_s / 7.3;
    let mut until = 0.0;
    loop {
        until += slice;
        let mut s = scheduler
            .resume(&state.snapshot(), &jobs)
            .expect("slice snapshot restores");
        let done = scheduler.advance(&mut s, &jobs, &plan, until);
        state = s;
        if done {
            break;
        }
    }
    let sliced = scheduler.finish(state);
    assert_eq!(sliced.log, oracle.log, "slice alternation drifted");
    assert_eq!(sliced.makespan_s, oracle.makespan_s);
}

/// The engine reports its own economy: far fewer processed events than
/// the virtual seconds it covered, with idle stretches skipped.
#[test]
fn event_engine_counters_reflect_event_economy() {
    let _guard = jubench::metrics::registry::test_mutex().lock().unwrap();
    jubench::metrics::set_enabled(true);
    let jobs = registry_jobs(&full_registry(), 0.05);
    let scheduler = booster_scheduler(2024);

    jubench::metrics::reset();
    let schedule = scheduler.run(&jobs, &faulted_plan());
    let snap = jubench::metrics::snapshot();
    let processed = snap.counters.get("events/processed").copied().unwrap_or(0);
    let skipped = snap
        .counters
        .get("events/ticks_skipped")
        .copied()
        .unwrap_or(0);
    assert!(processed > 0, "the campaign processes events");
    assert!(
        (processed as f64) < schedule.makespan_s * 100.0,
        "processed {processed} events should be far below the tick count \
         of a {}s campaign",
        schedule.makespan_s
    );
    assert!(skipped > 0, "idle stretches are skipped, not stepped");
}
