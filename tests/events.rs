//! Differential harness for the event-driven virtual-time core.
//!
//! The scheduler's event engine (`Scheduler::run`, pops the next event
//! off a global `(time, class, rank, seq)`-ordered queue) is checked
//! against the legacy ticked engine (`Scheduler::run_ticked`, kept
//! behind the `legacy-ticked` feature for exactly this transition) as a
//! byte-for-byte oracle. Every artifact the suite exports — the
//! decision log, the rendered schedule table, the `RunReport`
//! aggregate, and the Chrome trace JSON — is produced by both engines
//! over the full benchmark-registry campaign, with and without a fault
//! plan, at 1, 2, and 8 pool threads, and asserted **byte-identical**.
//! Any divergence in event ordering, float arithmetic, or tie-breaking
//! shows up as a byte diff here, not as a subtly different table in a
//! paper figure.

use std::sync::Arc;

use jubench::pool::with_threads;
use jubench::prelude::*;
use jubench::sched::registry_jobs;
use jubench::trace::RunReport;

const THREADS: [usize; 3] = [1, 2, 8];

fn booster_scheduler(seed: u64) -> Scheduler {
    Scheduler::new(
        Machine::juwels_booster().partition(144),
        NetModel::juwels_booster(),
        SchedulerConfig::new(
            QueuePolicy::ConservativeBackfill,
            PlacementPolicy::Contiguous,
            seed,
        ),
    )
}

/// A plan that measurably perturbs the registry campaign: two drain
/// windows and one node crash landing while jobs are running.
fn faulted_plan() -> FaultPlan {
    FaultPlan::new(5)
        .with_slow_node_window(3, 2.0, 0.5, 3.0)
        .with_slow_node_window(70, 2.0, 1.0, 4.0)
        .with_rank_crash(10, 2.0)
}

/// Every exported artifact of one campaign run, concatenated: the
/// byte-identity surface of the differential harness.
fn campaign_bundle(scheduler: &Scheduler, jobs: &[Job], plan: &FaultPlan, ticked: bool) -> String {
    let schedule = if ticked {
        scheduler.run_ticked(jobs, plan)
    } else {
        scheduler.run(jobs, plan)
    };
    let rec = Arc::new(Recorder::new());
    schedule.emit(rec.as_ref());
    let events = rec.take_events();
    format!(
        "{}\n{}\n{}\n{}",
        schedule.log.join("\n"),
        schedule.render(),
        RunReport::from_events(&events).render(),
        chrome_trace_json(&events)
    )
}

/// The tentpole contract: over the full registry campaign, with and
/// without faults, at every pool width, the event engine's bytes equal
/// the ticked oracle's.
#[test]
fn event_engine_is_byte_identical_to_ticked_oracle_across_the_matrix() {
    let registry = full_registry();
    let jobs = registry_jobs(&registry, 0.05);
    assert_eq!(jobs.len(), registry.len(), "one job per benchmark");
    let scheduler = booster_scheduler(2024);
    for (name, plan) in [("empty", FaultPlan::new(0)), ("faulted", faulted_plan())] {
        let oracle = with_threads(1, || campaign_bundle(&scheduler, &jobs, &plan, true));
        for &t in &THREADS {
            let event = with_threads(t, || campaign_bundle(&scheduler, &jobs, &plan, false));
            assert_eq!(
                event, oracle,
                "event engine diverged from the ticked oracle ({name} plan, {t} pool threads)"
            );
            let ticked = with_threads(t, || campaign_bundle(&scheduler, &jobs, &plan, true));
            assert_eq!(
                ticked, oracle,
                "ticked engine is itself thread-variant ({name} plan, {t} pool threads)"
            );
        }
    }
}

/// The faulted arm of the matrix must actually exercise fault handling,
/// or the differential above degenerates into the empty-plan case run
/// twice.
#[test]
fn faulted_matrix_arm_preempts_jobs() {
    let jobs = registry_jobs(&full_registry(), 0.05);
    let scheduler = booster_scheduler(2024);
    let faulted = scheduler.run(&jobs, &faulted_plan());
    let clean = scheduler.run(&jobs, &FaultPlan::new(0));
    assert_eq!(faulted.finished(), jobs.len(), "retries recover every job");
    let preemptions: u32 = faulted.records.iter().map(|r| r.preemptions()).sum();
    assert!(preemptions > 0, "the drains must hit running jobs");
    assert_ne!(faulted.log, clean.log, "the plan must perturb the log");
}

/// The engines share one campaign-state format: a snapshot taken
/// mid-campaign by the ticked engine restores into the event engine
/// (and vice versa, alternating every slice) without a byte of drift in
/// the final artifacts. The event queue is rebuilt from state on each
/// `advance`, never persisted — this is the test that pins that design.
#[test]
fn engines_interoperate_through_snapshots_mid_campaign() {
    let jobs = registry_jobs(&full_registry(), 0.05);
    let plan = faulted_plan();
    let scheduler = booster_scheduler(2024);
    let oracle = scheduler.run_ticked(&jobs, &plan);

    // Ticked first half → snapshot → event engine to the end.
    let mut state = scheduler.begin(&jobs);
    scheduler.advance_ticked(&mut state, &jobs, &plan, oracle.makespan_s / 2.0);
    let bytes = state.snapshot();
    let mut resumed = scheduler
        .resume(&bytes, &jobs)
        .expect("own snapshot restores");
    scheduler.advance(&mut resumed, &jobs, &plan, f64::INFINITY);
    let handover = scheduler.finish(resumed);
    assert_eq!(handover.log, oracle.log, "ticked→event handover drifted");
    assert_eq!(handover.makespan_s, oracle.makespan_s);

    // Alternate engines every slice, snapshotting across each switch.
    let mut state = scheduler.begin(&jobs);
    let slice = oracle.makespan_s / 7.3;
    let mut until = 0.0;
    let mut ticked_turn = false;
    loop {
        until += slice;
        let mut s = scheduler
            .resume(&state.snapshot(), &jobs)
            .expect("alternating snapshot restores");
        let done = if ticked_turn {
            scheduler.advance_ticked(&mut s, &jobs, &plan, until)
        } else {
            scheduler.advance(&mut s, &jobs, &plan, until)
        };
        state = s;
        ticked_turn = !ticked_turn;
        if done {
            break;
        }
    }
    let alternated = scheduler.finish(state);
    assert_eq!(alternated.log, oracle.log, "engine alternation drifted");
    assert_eq!(alternated.makespan_s, oracle.makespan_s);
}

/// Both engines agree on the counters that downstream reports read
/// (`sched/events_processed`, `sched/advance_steps` stays legacy-only);
/// the event engine additionally reports its own economy: far fewer
/// processed events than the virtual seconds it covered.
#[test]
fn event_engine_counters_reflect_event_economy() {
    let _guard = jubench::metrics::registry::test_mutex().lock().unwrap();
    jubench::metrics::set_enabled(true);
    let jobs = registry_jobs(&full_registry(), 0.05);
    let scheduler = booster_scheduler(2024);

    jubench::metrics::reset();
    let schedule = scheduler.run(&jobs, &faulted_plan());
    let snap = jubench::metrics::snapshot();
    let processed = snap.counters.get("events/processed").copied().unwrap_or(0);
    let skipped = snap
        .counters
        .get("events/ticks_skipped")
        .copied()
        .unwrap_or(0);
    assert!(processed > 0, "the campaign processes events");
    assert!(
        (processed as f64) < schedule.makespan_s * 100.0,
        "processed {processed} events should be far below the tick count \
         of a {}s campaign",
        schedule.makespan_s
    );
    assert!(skipped > 0, "idle stretches are skipped, not stepped");
}
