//! The campaign-service chaos drill: deterministic fault injection
//! against the guarded service.
//!
//! Headline invariant: under any seeded chaos plan — shard crashes at
//! unit boundaries, stragglers, torn or corrupted wire frames — the
//! service yields results byte-identical to the fault-free run, or a
//! typed, quota-accounted rejection/cancellation. Never a panic, never
//! a hang.

use jubench::prelude::*;
use jubench::serve::wire::CancelReason;
use jubench::serve::{
    serve_session, ChaosPlan, Client, DuplexPipe, Emit, Frame, RejectReason, SupervisorConfig,
    Transport, WireError,
};

fn campaign(name: &str, nodes: u32, seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new("chaos-tenant", name, nodes, seed)
        .with_point(RunPoint::test("STREAM", 2, seed))
        .with_point(RunPoint::test("OSU", 2, seed + 1))
        .with_point(RunPoint::test("LinkTest", 4, seed + 2));
    spec.slice_s = 5.0;
    spec
}

/// Strip the run report from `Done` frames: its out-of-band cache and
/// guard tallies legitimately differ between chaotic and clean runs.
fn stripped(emits: &[Emit]) -> Vec<Frame> {
    emits
        .iter()
        .map(|e| match &e.frame {
            Frame::Done {
                campaign,
                table,
                chrome_trace,
                ..
            } => Frame::Done {
                campaign: *campaign,
                table: table.clone(),
                chrome_trace: chrome_trace.clone(),
                report: String::new(),
            },
            other => other.clone(),
        })
        .collect()
}

/// Silence the panic backtraces of deliberately injected chaos crashes
/// (they are caught and recovered; the default hook would spam stderr).
fn quiet_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let chaos = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.starts_with("chaos:"))
                .unwrap_or(false);
            if !chaos {
                default(info);
            }
        }));
    });
}

fn submit_population(server: &mut Server, registry: &Registry) -> Vec<(u64, u32)> {
    [
        ("a", 8u32, 3u64),
        ("b", 16, 11),
        ("c", 24, 19),
        ("d", 8, 27),
    ]
    .iter()
    .map(|&(name, nodes, seed)| {
        server
            .submit(1, campaign(name, nodes, seed), registry)
            .unwrap()
    })
    .collect()
}

/// The headline invariant, swept over seeds: scattered crash plans plus
/// stragglers, absorbed by the restart budget, leave both the serial
/// and the parallel supervised drains byte-identical to the fault-free
/// reference.
#[test]
fn seeded_chaos_plans_preserve_bytes_under_supervision() {
    quiet_chaos_panics();
    let registry = full_registry();
    // Serial and parallel drains interleave frames differently (per
    // unit vs per shard) — supervision must reproduce each one's own
    // fault-free stream exactly.
    let serial_reference = {
        let mut server = Server::new(4, 64);
        submit_population(&mut server, &registry);
        stripped(&server.drain(&registry).unwrap())
    };
    let parallel_reference = {
        let mut server = Server::new(4, 64);
        submit_population(&mut server, &registry);
        stripped(&server.drain_parallel(&registry).unwrap())
    };
    for seed in [0x0DDBA11u64, 0x5CA1AB1E, 0xBEEFCAFE] {
        let plan = ChaosPlan::scattered(seed, 4, 5, 8)
            .with_straggler((seed % 4) as u32)
            .with_straggler(((seed >> 8) % 4) as u32);
        let cfg = SupervisorConfig {
            max_restarts: plan.crash_count() as u32 + 1,
            ..SupervisorConfig::default()
        };
        let mut serial = Server::new(4, 64);
        submit_population(&mut serial, &registry);
        let serial_outcome = serial
            .drain_supervised(&registry, &cfg, Some(&plan))
            .unwrap();
        assert!(
            !serial_outcome.degraded(),
            "seed {seed:#x}: serial degraded"
        );
        assert_eq!(
            stripped(&serial_outcome.emits),
            serial_reference,
            "seed {seed:#x}: serial supervised chaos diverged (interleave included)"
        );
        let mut parallel = Server::new(4, 64);
        submit_population(&mut parallel, &registry);
        let parallel_outcome = parallel
            .drain_supervised_parallel(&registry, &cfg, Some(&plan))
            .unwrap();
        assert!(
            !parallel_outcome.degraded(),
            "seed {seed:#x}: parallel degraded"
        );
        assert_eq!(
            stripped(&parallel_outcome.emits),
            parallel_reference,
            "seed {seed:#x}: parallel supervised chaos diverged"
        );
    }
}

/// A supervised drain with no chaos plan and no failures is exactly the
/// plain drain — same frames, zero restarts, zero backoff.
#[test]
fn supervision_without_faults_is_free() {
    let registry = full_registry();
    let mut plain = Server::new(4, 64);
    submit_population(&mut plain, &registry);
    let reference = plain.drain(&registry).unwrap();
    let mut supervised = Server::new(4, 64);
    submit_population(&mut supervised, &registry);
    let outcome = supervised
        .drain_supervised(&registry, &SupervisorConfig::default(), None)
        .unwrap();
    assert_eq!(
        outcome.emits, reference,
        "fault-free supervision is identity"
    );
    assert_eq!(outcome.restarts, 0);
    assert_eq!(outcome.backoff_s, 0.0);
    assert!(outcome.cancelled.is_empty() && !outcome.degraded());
}

/// Stragglers alone (no crashes) perturb thread timing but never bytes,
/// and charge nothing to the guard ledger.
#[test]
fn stragglers_change_nothing() {
    let registry = full_registry();
    let mut plain = Server::new(4, 64);
    submit_population(&mut plain, &registry);
    let reference = plain.drain_parallel(&registry).unwrap();
    let plan = ChaosPlan::new(1)
        .with_straggler(0)
        .with_straggler(1)
        .with_straggler(2)
        .with_straggler(3);
    let mut slow = Server::new(4, 64);
    submit_population(&mut slow, &registry);
    let outcome = slow
        .drain_supervised_parallel(&registry, &SupervisorConfig::default(), Some(&plan))
        .unwrap();
    assert_eq!(outcome.emits, reference);
    assert_eq!(outcome.restarts, 0, "stragglers are not failures");
}

/// A crash at unit 0 of every active shard forces exactly one restart
/// per active shard; each restores from its pre-attempt snapshot, the
/// restarts land in the `serve/restarts` counter and the per-shard
/// guard ledger, and finished campaigns surface them in their report.
#[test]
fn restarts_restore_from_snapshot_and_are_counted() {
    quiet_chaos_panics();
    let registry = full_registry();
    let mut server = Server::new(4, 64);
    submit_population(&mut server, &registry);
    let active: Vec<u32> = (0..4).filter(|&s| !server.shard(s).idle()).collect();
    assert!(!active.is_empty());
    let mut plan = ChaosPlan::new(7);
    for &s in &active {
        plan = plan.with_shard_crash(s, 0);
    }
    let before = jubench::metrics::snapshot()
        .counters
        .get("serve/restarts")
        .copied()
        .unwrap_or(0);
    let outcome = server
        .drain_supervised_parallel(&registry, &SupervisorConfig::default(), Some(&plan))
        .unwrap();
    assert_eq!(
        outcome.restarts,
        active.len() as u64,
        "one restart per crashed shard"
    );
    assert!(outcome.backoff_s > 0.0, "restarts charge virtual backoff");
    assert!(!outcome.degraded());
    let after = jubench::metrics::snapshot()
        .counters
        .get("serve/restarts")
        .copied()
        .unwrap_or(0);
    assert!(
        after - before >= active.len() as u64,
        "serve/restarts moved {before} → {after} for {} crashes",
        active.len()
    );
    for &s in &active {
        assert_eq!(server.shard(s).guard().restarts, 1, "shard {s} ledger");
    }
    let reported = outcome
        .emits
        .iter()
        .filter(
            |e| matches!(&e.frame, Frame::Done { report, .. } if report.contains("guard activity")),
        )
        .count();
    assert!(
        reported > 0,
        "no finished campaign surfaced the guard tallies in its report"
    );
}

/// A campaign whose virtual deadline falls inside its schedule is cut
/// at the first unit boundary past the line: a typed `Cancelled` frame,
/// the `serve/deadline_cancels` counter, and a quota refund — the
/// tenant can immediately submit again.
#[test]
fn deadline_cancellation_is_typed_counted_and_refunded() {
    let registry = full_registry();
    let mut server = Server::new(1, 64).with_admission(AdmissionConfig {
        max_active_per_tenant: 1,
        token_capacity: 8,
        max_points_per_campaign: 8,
    });
    let mut doomed = campaign("doomed", 8, 5).with_deadline(1.0);
    doomed.slice_s = 0.75;
    let (id, _) = server.submit(1, doomed, &registry).unwrap();
    // The slot is held while the campaign is live.
    let refused = server
        .submit(1, campaign("queued", 8, 6), &registry)
        .unwrap_err();
    assert!(matches!(
        refused.reason,
        RejectReason::CampaignQuota {
            active: 1,
            limit: 1
        }
    ));
    let before = jubench::metrics::snapshot()
        .counters
        .get("serve/deadline_cancels")
        .copied()
        .unwrap_or(0);
    let emits = server.drain(&registry).unwrap();
    let cancels: Vec<&Frame> = emits
        .iter()
        .map(|e| &e.frame)
        .filter(|f| matches!(f, Frame::Cancelled { .. }))
        .collect();
    match cancels.as_slice() {
        [Frame::Cancelled { campaign, reason }] => {
            assert_eq!(*campaign, id);
            match reason {
                CancelReason::DeadlineExceeded {
                    deadline_s,
                    horizon_s,
                } => {
                    assert_eq!(*deadline_s, 1.0);
                    assert!(*horizon_s >= 1.0, "cut at the boundary past the line");
                }
                other => panic!("wrong cancel reason: {other}"),
            }
        }
        other => panic!("expected exactly one Cancelled frame, got {other:?}"),
    }
    assert!(
        !emits.iter().any(|e| matches!(
            &e.frame,
            Frame::Done { campaign, .. } if *campaign == id
        )),
        "a cancelled campaign must not also finish"
    );
    let after = jubench::metrics::snapshot()
        .counters
        .get("serve/deadline_cancels")
        .copied()
        .unwrap_or(0);
    assert!(after > before, "serve/deadline_cancels never moved");
    // Cancellation retired the campaign: the quota slot is free again.
    let usage = server.admission().usage("chaos-tenant");
    assert_eq!((usage.active, usage.tokens), (0, 0));
    server
        .submit(1, campaign("retry", 8, 7), &registry)
        .unwrap();
}

/// A shard that out-crashes its restart budget is given up on: its
/// remaining campaigns end in typed `ShardFailed` cancellations, the
/// drain reports itself degraded, and every other shard's campaigns
/// still match the fault-free bytes.
#[test]
fn restart_budget_exhaustion_degrades_to_typed_partials() {
    quiet_chaos_panics();
    let registry = full_registry();
    let reference = {
        let mut server = Server::new(4, 64);
        submit_population(&mut server, &registry);
        stripped(&server.drain_parallel(&registry).unwrap())
    };
    let mut server = Server::new(4, 64);
    let placed = submit_population(&mut server, &registry);
    let victim = placed[0].1;
    // Crash the victim's worker at the head of every attempt: with
    // budget 1, attempt 1 fires (victim, 0), the retry fires another
    // head crash, and the supervisor gives up.
    let plan = ChaosPlan::new(3)
        .with_shard_crash(victim, 0)
        .with_shard_crash(victim, 0)
        .with_shard_crash(victim, 0);
    let cfg = SupervisorConfig {
        max_restarts: 1,
        ..SupervisorConfig::default()
    };
    let outcome = server
        .drain_supervised_parallel(&registry, &cfg, Some(&plan))
        .unwrap();
    assert!(
        outcome.degraded(),
        "budget 1 cannot absorb repeated crashes"
    );
    assert_eq!(outcome.failed_shards.len(), 1);
    assert_eq!(outcome.failed_shards[0].0, victim);
    let doomed: Vec<u64> = placed
        .iter()
        .filter(|(_, s)| *s == victim)
        .map(|(id, _)| *id)
        .collect();
    assert_eq!(
        outcome.cancelled, doomed,
        "every campaign on the dead shard is cancelled, no other"
    );
    for e in &outcome.emits {
        if let Frame::Cancelled { campaign, reason } = &e.frame {
            assert!(doomed.contains(campaign));
            assert!(
                matches!(reason, CancelReason::ShardFailed { restarts: 1 }),
                "wrong reason: {reason}"
            );
        }
    }
    // Survivors are byte-identical to their fault-free runs.
    let survivors: Vec<Frame> = reference
        .iter()
        .filter(|f| match f {
            Frame::Row { campaign, .. }
            | Frame::JobDone { campaign, .. }
            | Frame::Done { campaign, .. }
            | Frame::Cancelled { campaign, .. } => !doomed.contains(campaign),
            _ => true,
        })
        .cloned()
        .collect();
    let trial_survivors: Vec<Frame> = stripped(&outcome.emits)
        .into_iter()
        .filter(|f| !matches!(f, Frame::Cancelled { .. }))
        .collect();
    assert_eq!(trial_survivors, survivors);
    assert!(server.shard(victim).guard().giveups >= 1, "giveup ledger");
    // The give-up retired the dead shard's campaigns: quota fully
    // refunded, the server is reusable.
    let usage = server.admission().usage("chaos-tenant");
    assert_eq!((usage.active, usage.tokens), (0, 0));
    assert!(server.idle());
}

/// Quota rejections cross the wire as typed `Rejected` frames; the
/// session keeps serving, the drain completes, and the stats frame
/// shows the accounted rejections.
#[test]
fn quota_rejections_cross_the_wire_typed() {
    let registry = full_registry();
    let (client_end, mut server_end) = DuplexPipe::pair();
    let session = std::thread::spawn(move || {
        let mut server = Server::new(2, 64).with_admission(AdmissionConfig {
            max_active_per_tenant: 2,
            token_capacity: 16,
            max_points_per_campaign: 8,
        });
        let registry = full_registry();
        serve_session(&mut server, &registry, &mut server_end, 1)
    });
    let mut client = Client::new(client_end);
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for i in 0..5u64 {
        match client.submit(&campaign(&format!("w{i}"), 8, i)).unwrap() {
            Ok(_) => accepted += 1,
            Err(rejection) => {
                assert_eq!(rejection.tenant, "chaos-tenant");
                assert!(matches!(
                    rejection.reason,
                    RejectReason::CampaignQuota { limit: 2, .. }
                ));
                rejected += 1;
            }
        }
    }
    assert_eq!((accepted, rejected), (2, 3), "quota of 2 admits exactly 2");
    let frames = client.drain().unwrap();
    let done = frames
        .iter()
        .filter(|f| matches!(f, Frame::Done { .. }))
        .count();
    assert_eq!(done, accepted, "every admitted campaign completes");
    let stats = client.stats("serve/").unwrap();
    assert!(
        stats.contains("serve_rejected"),
        "rejections missing from exposition:\n{stats}"
    );
    client.bye().unwrap();
    session.join().unwrap().unwrap();
    let _ = registry;
}

/// Validation failures are rejections too — typed and attributed, not
/// errors that kill the session.
#[test]
fn invalid_specs_reject_typed_without_ending_the_session() {
    let registry = full_registry();
    let mut server = Server::new(1, 16);
    let mut bad = campaign("bad", 8, 1);
    bad.points.clear();
    let rejection = server.submit(1, bad, &registry).unwrap_err();
    assert!(matches!(rejection.reason, RejectReason::Invalid { .. }));
    let mut nan = campaign("nan", 8, 1);
    nan.deadline_s = f64::NAN;
    let rejection = server.submit(1, nan, &registry).unwrap_err();
    assert!(matches!(rejection.reason, RejectReason::Invalid { .. }));
    // The gate charged nothing for refused campaigns.
    let usage = server.admission().usage("chaos-tenant");
    assert_eq!((usage.active, usage.tokens), (0, 0));
    server.submit(1, campaign("ok", 8, 1), &registry).unwrap();
    assert_eq!(
        server
            .drain(&registry)
            .unwrap()
            .iter()
            .filter(|e| matches!(e.frame, Frame::Done { .. }))
            .count(),
        1
    );
}

/// A frame torn mid-body ends the session with a typed `Truncated`
/// error; a hangup between frames is a clean goodbye. Neither panics,
/// neither hangs.
#[test]
fn torn_frames_end_sessions_typed_and_hangups_end_them_clean() {
    let registry = full_registry();
    // Torn mid-frame: the length prefix promises 64 bytes, 5 arrive.
    let (mut client_end, mut server_end) = DuplexPipe::pair();
    client_end.write_all(&64u32.to_le_bytes()).unwrap();
    client_end.write_all(&[1, 2, 3, 4, 5]).unwrap();
    client_end.shutdown();
    let mut server = Server::new(1, 16);
    let err = serve_session(&mut server, &registry, &mut server_end, 1).unwrap_err();
    assert!(
        err.to_string().contains("truncated"),
        "wrong error for a torn frame: {err}"
    );
    // Hangup between frames: a clean end of session.
    let (client_end, mut server_end) = DuplexPipe::pair();
    drop(client_end);
    serve_session(&mut server, &registry, &mut server_end, 1).unwrap();
    // Corrupt length prefix larger than the frame cap: typed, not an
    // allocation attempt.
    let (mut client_end, mut server_end) = DuplexPipe::pair();
    client_end.write_all(&u32::MAX.to_le_bytes()).unwrap();
    client_end.shutdown();
    let err = serve_session(&mut server, &registry, &mut server_end, 1).unwrap_err();
    assert!(
        matches!(
            err,
            jubench::serve::ServeError::Wire(WireError::Oversized(_))
        ),
        "wrong error for an oversized prefix: {err}"
    );
}
