//! Property-style tests on the core invariants of the suite's substrates.
//!
//! Previously driven by `proptest`; now a deterministic sweep over seeded
//! pseudo-random cases (the suite carries no external dependencies so it
//! builds in offline containers). Each test exercises the same invariant
//! over dozens of generated inputs.

use jubench::cluster::{
    balanced_dims3, balanced_dims4, pattern_time, CommPattern, Machine, NetModel, Placement,
};
use jubench::kernels::{
    cg::{cg_solve, DenseOp},
    fft_1d, ifft_1d, lu_factor, lu_solve, rank_rng, thomas_solve,
    tridiag::tridiag_apply,
    Matrix, C64,
};
use jubench::prelude::*;

/// FFT round trip is the identity for any power-of-two length.
#[test]
fn fft_round_trip() {
    for case in 0..64u64 {
        let mut rng = rank_rng(0xF0 + case, 0);
        let log_n = rng.gen_range(1usize..9);
        let n = 1usize << log_n;
        let mut data: Vec<C64> = (0..n)
            .map(|_| C64::new(rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)))
            .collect();
        let original = data.clone();
        fft_1d(&mut data);
        ifft_1d(&mut data);
        for (a, b) in data.iter().zip(&original) {
            assert!((*a - *b).abs() < 1e-9, "case {case}");
        }
    }
}

/// Parseval: the FFT conserves energy (up to the 1/n convention).
#[test]
fn fft_parseval() {
    for case in 0..64u64 {
        let mut rng = rank_rng(0x9E + case, 0);
        let log_n = rng.gen_range(1usize..9);
        let n = 1usize << log_n;
        let data: Vec<C64> = (0..n)
            .map(|_| C64::new(rng.gen_range(-0.5..0.5), rng.gen_range(-0.5..0.5)))
            .collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = data;
        fft_1d(&mut freq);
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!(
            (time_energy - freq_energy).abs() <= 1e-9 * time_energy.max(1.0),
            "case {case}"
        );
    }
}

/// LU solves random well-conditioned systems.
#[test]
fn lu_solves_diagonally_dominant_systems() {
    for case in 0..48u64 {
        let mut rng = rank_rng(0x1B + case, 1);
        let n = rng.gen_range(2usize..24);
        let mut a = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        for i in 0..n {
            a[(i, i)] += n as f64; // diagonal dominance
        }
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| a.row(i).iter().zip(&x_true).map(|(aij, xj)| aij * xj).sum())
            .collect();
        let f = lu_factor(&a).expect("diagonally dominant ⇒ nonsingular");
        let x = lu_solve(&f, &b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-7, "case {case}");
        }
    }
}

/// The Thomas solver inverts diagonally dominant tridiagonal systems.
#[test]
fn thomas_inverts() {
    for case in 0..48u64 {
        let mut rng = rank_rng(0x7A + case, 2);
        let n = rng.gen_range(1usize..64);
        let lower: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let upper: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let diag: Vec<f64> = (0..n)
            .map(|i| 3.0 + lower[i].abs() + upper[i].abs())
            .collect();
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let rhs = tridiag_apply(&lower, &diag, &upper, &x_true);
        let x = thomas_solve(&lower, &diag, &upper, &rhs);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-8, "case {case}");
        }
    }
}

/// CG converges on SPD systems built as AᵀA + n·I.
#[test]
fn cg_converges_on_spd() {
    for case in 0..32u64 {
        let mut rng = rank_rng(0xC6 + case, 3);
        let n = rng.gen_range(2usize..16);
        let m = Matrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += m[(k, i)] * m[(k, j)];
                }
                a[(i, j)] = acc + if i == j { n as f64 } else { 0.0 };
            }
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut x = vec![0.0; n];
        let res = cg_solve(&DenseOp(a), &b, &mut x, 1e-10, 10 * n + 20);
        assert!(
            res.converged,
            "case {case}: residual {}",
            res.relative_residual
        );
    }
}

/// Balanced factorizations always multiply back to n.
#[test]
fn balanced_dims_factorize() {
    for n in 1u32..2048 {
        let d3 = balanced_dims3(n);
        assert_eq!(d3.iter().product::<u32>(), n);
        let d4 = balanced_dims4(n);
        assert_eq!(d4.iter().product::<u32>(), n);
    }
}

/// Communication pattern costs are non-negative, finite, and increase
/// (weakly) with payload size.
#[test]
fn pattern_costs_are_monotone_in_bytes() {
    for case in 0..64u64 {
        let mut rng = rank_rng(0xAB + case, 4);
        let nodes = rng.gen_range(1u32..936);
        let kb = rng.gen_range(1u64..4096);
        let machine = Machine::juwels_booster().partition(nodes);
        let placement = Placement::per_gpu(machine);
        let net = NetModel::juwels_booster();
        let small = CommPattern::AllReduce { bytes: kb * 1024 };
        let large = CommPattern::AllReduce { bytes: kb * 2048 };
        let t_small = pattern_time(small, &placement, &net);
        let t_large = pattern_time(large, &placement, &net);
        assert!(t_small.is_finite() && t_small >= 0.0, "case {case}");
        assert!(t_large >= t_small, "case {case}");
    }
}

/// The congestion factor is bounded and monotone non-increasing.
#[test]
fn congestion_bounds() {
    let net = NetModel::juwels_booster();
    let mut rng = rank_rng(0xC0, 5);
    for case in 0..128 {
        let a = rng.gen_range(1u32..936);
        let b = rng.gen_range(1u32..936);
        let (lo, hi) = (a.min(b), a.max(b));
        let f_lo = net.congestion_factor(lo);
        let f_hi = net.congestion_factor(hi);
        assert!((net.congestion_floor..=1.0).contains(&f_lo), "case {case}");
        assert!(f_hi <= f_lo, "case {case}");
    }
}

/// Memory-variant sizing: fractions are ordered and the best fit never
/// exceeds the proposed memory.
#[test]
fn variant_best_fit_fits() {
    for gib in 1u64..512 {
        let proposed = gib << 30;
        let reference = 40u64 << 30;
        if let Some(v) = MemoryVariant::best_fit(&MemoryVariant::ALL, reference, proposed) {
            assert!(v.target_bytes(reference) <= proposed);
            // No larger offered variant would also fit.
            for bigger in MemoryVariant::ALL.into_iter().filter(|b| *b > v) {
                assert!(bigger.target_bytes(reference) > proposed);
            }
        } else {
            assert!(MemoryVariant::Tiny.target_bytes(reference) > proposed);
        }
    }
}

/// JUQCS memory law: monotone, exact powers of two.
#[test]
fn juqcs_memory_law() {
    use jubench::apps_quantum::{max_qubits, state_bytes};
    for n in 1u32..100 {
        assert_eq!(state_bytes(n), 16u128 << n);
        assert_eq!(max_qubits(state_bytes(n)), n);
        assert_eq!(max_qubits(state_bytes(n) - 1), n - 1);
    }
}

/// Parameter substitution is idempotent: expanding twice gives the same
/// resolution.
#[test]
fn parameter_substitution_idempotent() {
    let names = ["x", "abc", "zzzzzz", "q"];
    let nums = ["0", "42", "9999"];
    for a in names {
        for b in nums {
            let mut ps = ParameterSet::new();
            ps.set("base", a);
            ps.set("num", b);
            ps.set("combo", "${base}-${num}");
            let once = ps.expand(&[]).unwrap();
            let twice = ps.expand(&[]).unwrap();
            assert_eq!(&once, &twice);
            assert_eq!(once[0]["combo"].clone(), format!("{a}-{b}"));
        }
    }
}

/// Archive manifests verify their own content for arbitrary members.
#[test]
fn archive_manifest_round_trip() {
    use jubench::jube::Archive;
    for case in 0..32u64 {
        let mut rng = rank_rng(0xA0 + case, 6);
        let member_count = rng.gen_range(1usize..6);
        let names: Vec<String> = (0..member_count)
            .map(|i| {
                let len = rng.gen_range(1usize..12);
                let mut s: String = (0..len)
                    .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
                    .collect();
                s.push((b'a' + (i % 26) as u8) as char); // force uniqueness
                s
            })
            .collect();
        let payload: Vec<u8> = (0..rng.gen_range(0usize..256))
            .map(|_| rng.gen_range(0u8..255))
            .collect();
        let mut a = Archive::new();
        for (i, name) in names.iter().enumerate() {
            let mut content = payload.clone();
            content.push(i as u8);
            a.add(name, content);
        }
        let manifest = a.manifest();
        assert!(a.verify(&manifest).is_empty(), "case {case}");
        // Any bit flip in a member is caught.
        let mut tampered = Archive::new();
        for (i, name) in names.iter().enumerate() {
            let mut content = payload.clone();
            content.push(i as u8);
            if i == 0 {
                content.push(0xFF);
            }
            tampered.add(name, content);
        }
        assert!(!tampered.verify(&manifest).is_empty(), "case {case}");
    }
}

/// The nekRS settling model predicts synthetic runs within 10 %.
#[test]
fn settling_model_predicts() {
    use jubench::apps_cfd::perf_model::{predict_run, synthetic_profile, StepProfile};
    for case in 0..32u64 {
        let mut rng = rank_rng(0x5E + case, 7);
        let initial = rng.gen_range(50.0..300.0);
        let asymptote = rng.gen_range(10.0..45.0);
        let decay = rng.gen_range(0.7..0.96);
        let truth = synthetic_profile(600, initial, asymptote, decay);
        let true_total: f64 = truth.iterations.iter().sum();
        let prefix = StepProfile {
            iterations: truth.iterations[..60].to_vec(),
        };
        let (predicted, _) = predict_run(&prefix, 600).unwrap();
        assert!(
            (predicted - true_total).abs() / true_total < 0.10,
            "case {case}"
        );
    }
}

/// exp of a traceless anti-Hermitian matrix is special unitary for
/// arbitrary entries.
#[test]
fn su3_exponential_is_special_unitary() {
    use jubench::apps_lattice::hmc::{exp_matrix, project_ta};
    use jubench::kernels::C64;
    for case in 0..32u64 {
        let mut rng = rank_rng(0x53 + case, 8);
        let mut m = [[C64::ZERO; 3]; 3];
        for row in &mut m {
            for entry in row.iter_mut() {
                *entry = C64::new(rng.gen_range(-2.0..2.0), rng.gen_range(-2.0..2.0));
            }
        }
        let u = exp_matrix(&project_ta(&m));
        assert!(u.unitarity_error() < 1e-10, "case {case}");
        assert!((u.det() - C64::ONE).abs() < 1e-10, "case {case}");
    }
}

/// Baseline stores round-trip arbitrary positive values at full precision.
#[test]
fn baseline_store_round_trip() {
    use jubench::continuous::BaselineStore;
    let mut rng = rank_rng(0xBA, 9);
    for case in 0..64 {
        // Log-uniform over [1e-6, 1e12).
        let value = 10f64.powf(rng.gen_range(-6.0..12.0));
        let mut store = BaselineStore::new();
        store.set(BenchmarkId::NekRs, value);
        let back = BaselineStore::from_text(&store.to_text()).unwrap();
        assert_eq!(back.get(BenchmarkId::NekRs), Some(value), "case {case}");
    }
}

/// Distributed allreduce equals the sequential reduction for any data.
#[test]
fn allreduce_matches_sequential() {
    for case in 0..8u64 {
        let mut rng = rank_rng(0xA1 + case, 10);
        let values: Vec<f64> = (0..4).map(|_| rng.gen_range(-100.0..100.0)).collect();
        let w = World::new(Machine::juwels_booster().partition(1)); // 4 ranks
        let vals = values.clone();
        let results = w.run(move |comm| {
            let mut buf = [vals[comm.rank() as usize]];
            comm.allreduce_f64(&mut buf, ReduceOp::Sum).unwrap();
            buf[0]
        });
        let expect: f64 = values.iter().sum();
        for r in &results {
            assert!((r.value - expect).abs() < 1e-9, "case {case}");
        }
    }
}

/// Running under an **empty** fault plan is bit-identical to running with
/// no plan at all: every guard in the runtime must leave the arithmetic
/// untouched when no fault applies.
#[test]
fn empty_fault_plan_is_bit_identical_to_no_plan() {
    for case in 0..8u64 {
        let mut rng = rank_rng(0xFA + case, 12);
        let compute_s = rng.gen_range(1e-4..1e-2);
        let elems = rng.gen_range(1usize..256);
        let workload = move |comm: &mut Comm| {
            comm.advance_compute(compute_s);
            comm.sendrecv_f64(comm.rank() ^ 1, &vec![1.0; elems])
                .unwrap();
            let mut acc = [comm.rank() as f64; 4];
            comm.allreduce_f64(&mut acc, ReduceOp::Sum).unwrap();
            comm.barrier();
        };
        let machine = Machine::juwels_booster().partition(2);
        let bare = World::new(machine).run(workload);
        let planned = World::new(machine)
            .with_fault_plan(FaultPlan::new(case))
            .run(workload);
        for (a, b) in bare.iter().zip(&planned) {
            assert_eq!(a.clock.compute_s, b.clock.compute_s, "case {case}");
            assert_eq!(a.clock.comm_s, b.clock.comm_s, "case {case}");
        }
    }
}

/// Placement never double-books a node: in fault-free runs every job has
/// one attempt, and any two attempts overlapping in time hold disjoint
/// node sets drawn from the machine.
#[test]
fn scheduler_never_double_books_a_node() {
    use jubench::sched::JobOutcome;
    for case in 0..24u64 {
        let mut rng = rank_rng(0x5C + case, 13);
        let cells = rng.gen_range(2u32..8);
        let machine = Machine::juwels_booster().partition(cells * 48);
        let jobs: Vec<Job> = (0..rng.gen_range(4u32..16))
            .map(|i| {
                Job::new(i, &format!("j{i}"), rng.gen_range(1u32..120), {
                    rng.gen_range(0.1..4.0)
                })
                .with_comm_fraction(rng.gen_range(0.0..0.9))
                .with_priority(rng.gen_range(0u32..3) as i32)
                .with_submit(rng.gen_range(0.0..2.0))
            })
            .collect();
        for placement in PlacementPolicy::ALL {
            let schedule = Scheduler::new(
                machine,
                NetModel::juwels_booster(),
                SchedulerConfig::new(QueuePolicy::ConservativeBackfill, placement, case),
            )
            .run(&jobs, &FaultPlan::new(0));
            let done: Vec<_> = schedule
                .records
                .iter()
                .filter(|r| r.outcome == JobOutcome::Finished)
                .collect();
            for r in &done {
                assert_eq!(r.attempts.len(), 1, "fault-free: one attempt");
                assert_eq!(r.allocation.len(), r.nodes as usize, "case {case}");
                assert!(r.allocation.iter().all(|&n| n < machine.nodes));
            }
            for (i, a) in done.iter().enumerate() {
                for b in &done[i + 1..] {
                    let (sa, ea) = (a.attempts[0].start_s, a.end_s.unwrap());
                    let (sb, eb) = (b.attempts[0].start_s, b.end_s.unwrap());
                    if sa < eb && sb < ea {
                        assert!(
                            a.allocation.iter().all(|n| !b.allocation.contains(n)),
                            "case {case}: jobs {} and {} overlap in time and nodes",
                            a.id,
                            b.id
                        );
                    }
                }
            }
        }
    }
}

/// Conservative backfill never delays a higher-priority job: with every
/// job eligible at t = 0 and placement-independent runtimes, each job
/// starts exactly when it would have if all lower-priority jobs were
/// dropped from the queue.
#[test]
fn backfill_never_delays_higher_priority_starts() {
    for case in 0..24u64 {
        let mut rng = rank_rng(0xBF + case, 14);
        let machine = Machine::juwels_booster().partition(rng.gen_range(2u32..6) * 48);
        // comm_fraction 0 ⇒ runtime is independent of where a job lands,
        // so dropping the low-priority jobs perturbs nothing else.
        let jobs: Vec<Job> = (0..rng.gen_range(4u32..14))
            .map(|i| {
                Job::new(i, &format!("j{i}"), rng.gen_range(1u32..96), {
                    rng.gen_range(0.1..4.0)
                })
                .with_priority(rng.gen_range(0u32..3) as i32)
            })
            .collect();
        let run = |set: &[Job]| {
            Scheduler::new(
                machine,
                NetModel::juwels_booster(),
                SchedulerConfig::new(
                    QueuePolicy::ConservativeBackfill,
                    PlacementPolicy::Contiguous,
                    case,
                ),
            )
            .run(set, &FaultPlan::new(0))
        };
        let full = run(&jobs);
        for cut in [1i32, 2] {
            let high: Vec<Job> = jobs.iter().filter(|j| j.priority >= cut).cloned().collect();
            let filtered = run(&high);
            for r in &filtered.records {
                let in_full = full.records.iter().find(|f| f.id == r.id).unwrap();
                let (a, b) = (in_full.start_s().unwrap(), r.start_s().unwrap());
                assert!(
                    (a - b).abs() < 1e-9,
                    "case {case} cut {cut}: job {} starts at {a} with backfill, {b} without",
                    r.id
                );
            }
        }
    }
}

/// `par_map_indexed` is exactly-once and order-preserving: for random
/// task counts, payloads, and pool widths, every task executes exactly
/// once and the results come back in submission order — nothing lost,
/// duplicated, or reordered.
#[test]
fn par_map_indexed_is_exactly_once_in_order() {
    use jubench::pool::{par_map_indexed, with_threads};
    use std::sync::atomic::{AtomicUsize, Ordering};
    for case in 0..48u64 {
        let mut rng = rank_rng(0xDE + case, 15);
        let n = rng.gen_range(0usize..200);
        let threads = rng.gen_range(1usize..9);
        let payloads: Vec<u64> = (0..n).map(|_| rng.gen_range(0u64..1 << 20)).collect();
        let executions = AtomicUsize::new(0);
        let out = with_threads(threads, || {
            par_map_indexed(n, |i| {
                executions.fetch_add(1, Ordering::Relaxed);
                // A payload-dependent result that would expose index mixups.
                payloads[i].wrapping_mul(31).wrapping_add(i as u64)
            })
        });
        assert_eq!(
            executions.load(Ordering::Relaxed),
            n,
            "case {case}: every task exactly once"
        );
        let expected: Vec<u64> = payloads
            .iter()
            .enumerate()
            .map(|(i, p)| p.wrapping_mul(31).wrapping_add(i as u64))
            .collect();
        assert_eq!(out, expected, "case {case}: submission order preserved");
    }
}

/// A panicking task propagates its payload out of `par_map_indexed`, no
/// task ever runs more than once, and the (cached, shared) pool stays
/// usable for the next map. At one thread the map is a plain sequential
/// iteration, so the panic stops it at the bomb; at two or more threads
/// every spawned task still settles before the scope re-raises.
#[test]
fn par_map_indexed_survives_panicking_tasks() {
    use jubench::pool::{par_map_indexed, with_threads};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    for case in 0..24u64 {
        let mut rng = rank_rng(0xBE + case, 16);
        let n = rng.gen_range(2usize..80);
        let threads = rng.gen_range(1usize..9);
        let bomb = rng.gen_range(0usize..n);
        let executions: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        with_threads(threads, || {
            let err = catch_unwind(AssertUnwindSafe(|| {
                par_map_indexed(n, |i| {
                    executions[i].fetch_add(1, Ordering::Relaxed);
                    if i == bomb {
                        panic!("bomb at {i}");
                    }
                    i
                })
            }))
            .expect_err("panic must propagate to the caller");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .expect("panic payload carried through");
            assert_eq!(msg, format!("bomb at {bomb}"), "case {case}");
            for (i, count) in executions.iter().enumerate() {
                let ran = count.load(Ordering::Relaxed);
                assert!(ran <= 1, "case {case}: task {i} ran {ran} times");
                let must_run = threads > 1 || i <= bomb;
                assert_eq!(
                    ran, must_run as usize,
                    "case {case}: task {i} (bomb {bomb}, {threads} threads)"
                );
            }
            // Same pool instance (the per-width pool is cached): it must
            // execute the next map as if nothing happened.
            let out = par_map_indexed(n, |i| i * 2);
            assert_eq!(
                out,
                (0..n).map(|i| i * 2).collect::<Vec<_>>(),
                "case {case}"
            );
        });
    }
}

/// Snapshot → restore → snapshot is the byte identity for arbitrary
/// mid-campaign scheduler states: random machines, job sets (mixed
/// checkpointing specs), fault plans, and stop times.
#[test]
fn campaign_snapshot_restore_snapshot_is_byte_identity() {
    use jubench::sched::Scheduler;
    for case in 0..16u64 {
        let mut rng = rank_rng(0xCA + case, 17);
        let nodes = rng.gen_range(2u32..6) * 48;
        let machine = Machine::juwels_booster().partition(nodes);
        let jobs: Vec<Job> = (0..rng.gen_range(3u32..12))
            .map(|i| {
                let mut j = Job::new(i, &format!("j{i}"), rng.gen_range(1u32..96), {
                    rng.gen_range(0.5..4.0)
                })
                .with_comm_fraction(rng.gen_range(0.0..0.8))
                .with_priority(rng.gen_range(0u32..3) as i32)
                .with_submit(rng.gen_range(0.0..2.0))
                .with_retry(RetryPolicy::new(rng.gen_range(1u32..8), 0.05));
                if rng.gen_bool(0.5) {
                    j = j.with_checkpointing(rng.gen_range(0.1..1.5), rng.gen_range(0.001..0.1));
                }
                j
            })
            .collect();
        let plan = FaultPlan::periodic_drains(
            case,
            nodes,
            rng.gen_range(1.0..6.0),
            rng.gen_range(0.1..1.0),
            20.0,
            4.0,
        );
        let sched = Scheduler::new(
            machine,
            NetModel::juwels_booster(),
            SchedulerConfig::new(
                QueuePolicy::ConservativeBackfill,
                PlacementPolicy::ALL[case as usize % 2],
                case,
            ),
        );
        let mut state = sched.begin(&jobs);
        sched.advance(&mut state, &jobs, &plan, rng.gen_range(0.0..8.0));
        let snap = state.snapshot();
        let mut restored = sched.begin(&jobs);
        restored.restore(&snap).unwrap();
        assert_eq!(restored.snapshot(), snap, "case {case}");
        assert_eq!(restored.now(), state.now(), "case {case}");
        assert_eq!(restored.log(), state.log(), "case {case}");
    }
}

/// Snapshot → restore → snapshot is the byte identity for arbitrary HMC
/// chain states, and the restored chain continues bit-identically.
#[test]
fn hmc_snapshot_restore_snapshot_is_byte_identity() {
    use jubench::apps_lattice::HmcChain;
    for case in 0..8u64 {
        let mut rng = rank_rng(0x4C + case, 18);
        let beta = rng.gen_range(4.0..6.5);
        let steps = rng.gen_range(2u32..6);
        let dt = rng.gen_range(0.05..0.2);
        let mut chain = HmcChain::cold([2, 2, 2, 2], beta, steps, dt, case);
        chain.run(rng.gen_range(0u64..4));
        let snap = chain.snapshot();
        // Restore into a chain built with different parameters: the
        // snapshot must fully determine the state.
        let mut restored = HmcChain::cold([2, 2, 2, 2], 1.0, 1, 0.5, 999);
        restored.restore(&snap).unwrap();
        assert_eq!(restored.snapshot(), snap, "case {case}");
        chain.run(2);
        restored.run(2);
        assert_eq!(restored.snapshot(), chain.snapshot(), "case {case}");
    }
}

/// Registry merge is order-independent: folding any permutation of a
/// set of per-thread shard snapshots — in any association — yields the
/// identical aggregate. This is the property that makes the metrics
/// snapshot deterministic even though shard registration order depends
/// on thread scheduling.
#[test]
fn metrics_merge_is_order_independent() {
    use jubench::metrics::registry::HIST_BUCKETS;
    use jubench::metrics::{HistogramSnapshot, MetricsSnapshot, ScopeStat};
    let names = [
        "pool/steals",
        "sched/backfill_scans",
        "simmpi/bytes/send",
        "ckpt/seal_ns",
        "trace/events_recorded",
    ];
    for case in 0..32u64 {
        let mut rng = rank_rng(0x3E + case, 19);
        let shards: Vec<MetricsSnapshot> = (0..rng.gen_range(2usize..7))
            .map(|_| {
                let mut s = MetricsSnapshot::default();
                for name in names {
                    if rng.gen_bool(0.7) {
                        s.counters
                            .insert(name.to_string(), rng.gen_range(0u64..1000));
                    }
                    if rng.gen_bool(0.5) {
                        let g = rng.gen_range(0u64..100) as i64 - 50;
                        s.gauges.insert(name.to_string(), g);
                    }
                    if rng.gen_bool(0.5) {
                        let mut counts = vec![0u64; HIST_BUCKETS];
                        let (mut count, mut sum) = (0u64, 0u64);
                        let (mut min, mut max) = (u64::MAX, 0u64);
                        for _ in 0..rng.gen_range(1usize..16) {
                            let v = rng.gen_range(0u64..1 << 30);
                            counts[rng.gen_range(0usize..HIST_BUCKETS)] += 1;
                            count += 1;
                            sum += v;
                            min = min.min(v);
                            max = max.max(v);
                        }
                        s.histograms.insert(
                            name.to_string(),
                            HistogramSnapshot {
                                counts,
                                count,
                                sum,
                                min,
                                max,
                            },
                        );
                    }
                    if rng.gen_bool(0.5) {
                        s.scopes.insert(
                            name.to_string(),
                            ScopeStat {
                                count: rng.gen_range(1u64..50),
                                inclusive_ns: rng.gen_range(0u64..1 << 40),
                                exclusive_ns: rng.gen_range(0u64..1 << 40),
                            },
                        );
                    }
                }
                s
            })
            .collect();
        let fold = |order: &[usize]| {
            let mut acc = MetricsSnapshot::default();
            for &i in order {
                acc.merge(&shards[i]);
            }
            acc
        };
        let identity: Vec<usize> = (0..shards.len()).collect();
        let reference = fold(&identity);
        // Shuffled orders.
        for _ in 0..4 {
            let mut order = identity.clone();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0usize..i + 1));
            }
            assert_eq!(fold(&order), reference, "case {case}: order {order:?}");
        }
        // A different association: pairwise tree merge.
        let mut level = shards.clone();
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| {
                    let mut acc = pair[0].clone();
                    if let Some(b) = pair.get(1) {
                        acc.merge(b);
                    }
                    acc
                })
                .collect();
        }
        assert_eq!(level[0], reference, "case {case}: tree merge");
    }
}

/// The event queue pops in the `(time, class, rank, seq)` total order
/// for arbitrary pushes — duplicated timestamps, shared classes and
/// ranks, negative-zero times — never in push or heap-internal order.
#[test]
fn event_queue_pop_is_the_total_order() {
    use jubench::events::EventQueue;
    for case in 0..48u64 {
        let mut rng = rank_rng(0xE0 + case, 20);
        let n = rng.gen_range(1usize..128);
        // A small time domain forces plenty of exact collisions.
        let times = [0.0, -0.0, 0.5, 1.0, 1.0 + 1e-15, 3.25];
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(
                times[rng.gen_range(0usize..times.len())],
                rng.gen_range(0u8..4),
                rng.gen_range(0u32..4),
                i,
            );
        }
        let popped: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(popped.len(), n, "case {case}: nothing lost");
        for w in popped.windows(2) {
            assert!(
                w[0].key < w[1].key,
                "case {case}: {:?} !< {:?}",
                w[0].key,
                w[1].key
            );
        }
    }
}

/// Merging k queues is observationally identical to inserting every
/// event into one queue: the global pop sequence — keys *and* payloads
/// — does not depend on how sources were partitioned.
#[test]
fn merged_queues_match_single_queue_insertion() {
    use jubench::events::{EventQueue, MergedQueues};
    for case in 0..32u64 {
        let mut rng = rank_rng(0xE8 + case, 21);
        let n = rng.gen_range(1usize..96);
        let k = rng.gen_range(1usize..6);
        // Global sequence numbers, so the same event carries the same key
        // whichever queue it lands in.
        let events: Vec<(f64, u8, u32, u64)> = (0..n)
            .map(|i| {
                (
                    f64::from(rng.gen_range(0u8..8)) * 0.25,
                    rng.gen_range(0u8..3),
                    rng.gen_range(0u32..3),
                    i as u64,
                )
            })
            .collect();
        let mut single = EventQueue::new();
        let mut parts: Vec<EventQueue<usize>> = (0..k).map(|_| EventQueue::new()).collect();
        for (i, &(t, class, rank, seq)) in events.iter().enumerate() {
            single.push_with_seq(t, class, rank, seq, i);
            parts[rng.gen_range(0usize..k)].push_with_seq(t, class, rank, seq, i);
        }
        let mut merged = MergedQueues::from_queues(parts);
        assert_eq!(merged.len(), single.len(), "case {case}");
        while let Some(want) = single.pop() {
            let (_, got) = merged.pop().expect("merged drains in step");
            assert_eq!(got.key, want.key, "case {case}");
            assert_eq!(got.payload, want.payload, "case {case}");
        }
        assert!(merged.pop().is_none(), "case {case}: both empty together");
    }
}

/// Tie-breaking is a property of the keys, not of heap insertion order:
/// pushing the same explicitly-numbered events in any permutation pops
/// the identical sequence.
#[test]
fn event_tie_break_is_stable_under_push_permutation() {
    use jubench::events::EventQueue;
    for case in 0..32u64 {
        let mut rng = rank_rng(0xF2 + case, 22);
        let n = rng.gen_range(2usize..64);
        let events: Vec<(f64, u8, u32, u64)> = (0..n)
            .map(|i| {
                (
                    f64::from(rng.gen_range(0u8..3)), // heavy collisions
                    rng.gen_range(0u8..2),
                    rng.gen_range(0u32..2),
                    i as u64,
                )
            })
            .collect();
        let drain = |order: &[usize]| -> Vec<(u64, usize)> {
            let mut q = EventQueue::new();
            for &i in order {
                let (t, class, rank, seq) = events[i];
                q.push_with_seq(t, class, rank, seq, i);
            }
            std::iter::from_fn(|| q.pop())
                .map(|e| (e.key.seq, e.payload))
                .collect()
        };
        let identity: Vec<usize> = (0..n).collect();
        let reference = drain(&identity);
        for _ in 0..4 {
            let mut order = identity.clone();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.gen_range(0usize..i + 1));
            }
            assert_eq!(drain(&order), reference, "case {case}: order {order:?}");
        }
    }
}

/// The event engine is slice-invariant on randomly generated campaigns
/// whose fault instants deliberately collide — crashes, drain windows,
/// and submissions sharing exact timestamps — so the per-instant
/// handler order (finish, crash, undrain, drain, submit, start) is
/// pinned under every generated collision pattern even when an advance
/// window splits the colliding instant off from its neighbours. (The
/// ticked oracle this differential originally ran against is deleted;
/// slicing through snapshots is the surviving cross-check.)
#[test]
fn sliced_campaigns_agree_on_colliding_fault_instants() {
    use jubench::sched::Scheduler;
    for case in 0..16u64 {
        let mut rng = rank_rng(0xEC + case, 23);
        let nodes = rng.gen_range(2u32..5) * 48;
        let machine = Machine::juwels_booster().partition(nodes);
        // Integer-grid times maximize exact collisions between job
        // events and fault instants.
        let jobs: Vec<Job> = (0..rng.gen_range(4u32..14))
            .map(|i| {
                let mut j = Job::new(i, &format!("j{i}"), rng.gen_range(1u32..96), {
                    f64::from(rng.gen_range(1u8..5))
                })
                .with_comm_fraction(0.0)
                .with_priority(rng.gen_range(0u32..3) as i32)
                .with_submit(f64::from(rng.gen_range(0u8..4)))
                .with_retry(RetryPolicy::new(rng.gen_range(2u32..8), 0.05));
                if rng.gen_bool(0.3) {
                    j = j.with_checkpointing(rng.gen_range(0.5..1.5), rng.gen_range(0.01..0.1));
                }
                j
            })
            .collect();
        let mut plan = FaultPlan::new(case);
        for _ in 0..rng.gen_range(1usize..4) {
            let from = f64::from(rng.gen_range(1u8..6));
            plan = plan.with_slow_node_window(
                rng.gen_range(0u32..nodes),
                2.0,
                from,
                from + f64::from(rng.gen_range(1u8..3)),
            );
        }
        if rng.gen_bool(0.5) {
            plan =
                plan.with_rank_crash(rng.gen_range(0u32..nodes), f64::from(rng.gen_range(1u8..6)));
        }
        let sched = Scheduler::new(
            machine,
            NetModel::juwels_booster(),
            SchedulerConfig::new(
                QueuePolicy::ConservativeBackfill,
                PlacementPolicy::ALL[case as usize % 2],
                case,
            ),
        );
        let straight = sched.run(&jobs, &plan);
        // Advance in windows deliberately landing on the integer grid
        // (and just off it), snapshotting across each boundary.
        let mut state = sched.begin(&jobs);
        let mut until = 0.0;
        loop {
            until += if (until as u64).is_multiple_of(2) {
                1.0
            } else {
                0.5
            };
            let mut s = sched
                .resume(&state.snapshot(), &jobs)
                .expect("case snapshot restores");
            let done = sched.advance(&mut s, &jobs, &plan, until);
            state = s;
            if done {
                break;
            }
        }
        let sliced = sched.finish(state);
        assert_eq!(straight.log, sliced.log, "case {case}: logs diverged");
        assert_eq!(straight.makespan_s, sliced.makespan_s, "case {case}");
    }
}

/// Gate application preserves the norm for arbitrary phase angles.
#[test]
fn quantum_gates_are_unitary() {
    for case in 0..8u64 {
        let mut rng = rank_rng(0x9A + case, 11);
        let theta = rng.gen_range(-std::f64::consts::TAU..std::f64::consts::TAU);
        let qubit = rng.gen_range(0u32..6);
        use jubench::apps_quantum::statevector::{DistStateVector, Gate1};
        let w = World::new(Machine::juwels_booster().partition(1));
        let results = w.run(move |comm| {
            let mut sv = DistStateVector::zero_state(comm, 6);
            for q in 0..6 {
                sv.apply(comm, q, Gate1::h()).unwrap();
            }
            sv.apply(comm, qubit, Gate1::phase(theta)).unwrap();
            sv.norm_sqr(comm).unwrap()
        });
        for r in &results {
            assert!((r.value - 1.0).abs() < 1e-10, "case {case}");
        }
    }
}

/// `Frame::decode` on arbitrarily corrupted bytes — truncations, bit
/// flips, spliced garbage, pure noise — returns a typed error or a
/// valid frame, never panics; and whatever it accepts re-encodes to
/// bytes that decode back to the same frame.
#[test]
fn wire_decode_survives_arbitrary_corruption() {
    use jubench::serve::{CampaignSpec, CancelReason, Frame, RunPoint};
    let pool: Vec<Frame> = vec![
        Frame::Submit {
            spec: CampaignSpec::new("fuzz", "campaign", 16, 9)
                .with_point(RunPoint::test("STREAM", 1, 1))
                .with_deadline(250.0),
        },
        Frame::Drain,
        Frame::Stats {
            prefix: "serve/".into(),
        },
        Frame::Bye,
        Frame::Accepted {
            campaign: 7,
            shard: 3,
        },
        Frame::Row {
            campaign: 7,
            index: 2,
            cells: vec!["STREAM".into(), "pass".into()],
        },
        Frame::JobDone {
            campaign: 7,
            job: 2,
            end_s: 41.5,
        },
        Frame::Done {
            campaign: 7,
            table: "| a | b |".into(),
            chrome_trace: "[]".into(),
            report: "ok".into(),
        },
        Frame::Cancelled {
            campaign: 7,
            reason: CancelReason::ShardFailed { restarts: 3 },
        },
        Frame::StatsReply {
            prometheus: "# TYPE x counter\nx 1\n".into(),
        },
    ];
    for case in 0..512u64 {
        let mut rng = rank_rng(0xF8A2 + case, 24);
        let mut bytes = pool[rng.gen_range(0usize..pool.len())].encode();
        match rng.gen_range(0u8..4) {
            // Truncate at an arbitrary point.
            0 => bytes.truncate(rng.gen_range(0usize..bytes.len() + 1)),
            // Flip one to eight random bits.
            1 => {
                for _ in 0..rng.gen_range(1usize..9) {
                    let at = rng.gen_range(0usize..bytes.len());
                    bytes[at] ^= 1 << rng.gen_range(0u8..8);
                }
            }
            // Splice a run of random bytes over a random range.
            2 => {
                let at = rng.gen_range(0usize..bytes.len());
                let len = rng.gen_range(1usize..17).min(bytes.len() - at);
                for b in &mut bytes[at..at + len] {
                    *b = (rng.next_u64() & 0xFF) as u8;
                }
            }
            // Replace the whole buffer with noise.
            _ => {
                bytes = (0..rng.gen_range(0usize..64))
                    .map(|_| (rng.next_u64() & 0xFF) as u8)
                    .collect();
            }
        }
        if let Ok(frame) = Frame::decode(&bytes) {
            let roundtrip = Frame::decode(&frame.encode());
            assert_eq!(
                roundtrip,
                Ok(frame),
                "case {case}: accepted frames round-trip"
            );
        }
    }
}

/// `read_frame` on streams whose length prefix lies — promising more
/// than MAX_FRAME_BYTES, more than the peer ever delivers, or fewer
/// bytes than the body needs — returns a typed error; it never panics
/// and never blocks past the peer's hangup.
#[test]
fn read_frame_rejects_length_lies_without_hanging() {
    use jubench::serve::{read_frame, DuplexPipe, Frame, Transport, WireError, MAX_FRAME_BYTES};
    for case in 0..96u64 {
        let mut rng = rank_rng(0x11E5 + case, 25);
        let body = Frame::Accepted {
            campaign: case,
            shard: 1,
        }
        .encode();
        let (mut client, mut server) = DuplexPipe::pair();
        let kind = rng.gen_range(0u8..3);
        match kind {
            // An oversized promise is rejected before any body read.
            0 => {
                let len = MAX_FRAME_BYTES + 1 + rng.gen_range(0u32..1 << 16);
                client.write_all(&len.to_le_bytes()).unwrap();
                client.shutdown();
                assert_eq!(
                    read_frame(&mut server),
                    Err(WireError::Oversized(len)),
                    "case {case}"
                );
            }
            // A prefix promising more than the peer delivers: the
            // mid-body hangup is a torn frame, not a clean goodbye.
            1 => {
                let promised = body.len() as u32 + 1 + rng.gen_range(0u32..512);
                client.write_all(&promised.to_le_bytes()).unwrap();
                let deliver = rng.gen_range(0usize..body.len() + 1);
                client.write_all(&body[..deliver]).unwrap();
                client.shutdown();
                assert_eq!(
                    read_frame(&mut server),
                    Err(WireError::Truncated { expected: promised }),
                    "case {case}"
                );
            }
            // A prefix promising fewer bytes than the body needs: the
            // short body must fail decoding, not panic.
            _ => {
                let promised = rng.gen_range(0usize..body.len()) as u32;
                client.write_all(&promised.to_le_bytes()).unwrap();
                client.write_all(&body).unwrap();
                client.shutdown();
                assert!(
                    read_frame(&mut server).is_err(),
                    "case {case}: short body decoded"
                );
            }
        }
    }
}

/// Frames routed through a faulty transport — truncated after a random
/// byte count, or with a random bit flipped in flight — come out as
/// clean frames or typed errors. No panic, no hang: the reader always
/// reaches the fault or the end of the stream.
#[test]
fn faulty_transports_yield_typed_frames_or_errors() {
    use jubench::serve::{
        read_frame, write_frame, DuplexPipe, FaultyTransport, Frame, Transport, WireFault,
    };
    for case in 0..96u64 {
        let mut rng = rank_rng(0xFA17 + case, 26);
        let frames: Vec<Frame> = (0..rng.gen_range(1u64..6))
            .map(|i| Frame::Row {
                campaign: i,
                index: i as u32,
                cells: vec![format!("cell{i}"), "pass".into()],
            })
            .collect();
        let total: usize = frames.iter().map(|f| f.encode().len() + 4).sum();
        let fault = if rng.gen_bool(0.5) {
            WireFault::TruncateAfter {
                bytes: rng.gen_range(0u64..total as u64 + 1),
            }
        } else {
            WireFault::FlipBit {
                at_byte: rng.gen_range(0u64..total as u64),
                bit: rng.gen_range(0u8..8),
            }
        };
        let (client, mut server) = DuplexPipe::pair();
        let mut faulty = FaultyTransport::new(client, fault);
        for frame in &frames {
            if write_frame(&mut faulty, frame).is_err() {
                break; // the truncation point closed the stream mid-write
            }
        }
        faulty.shutdown();
        let mut delivered = 0usize;
        // The loop ends on the first typed error (Transport, Truncated,
        // or Malformed) — the fault guarantees one arrives.
        while read_frame(&mut server).is_ok() {
            delivered += 1;
            assert!(
                delivered <= frames.len(),
                "case {case}: more frames out than in"
            );
        }
    }
}
