//! Property-based tests on the core invariants of the suite's substrates.

use jubench::cluster::{
    balanced_dims3, balanced_dims4, pattern_time, CommPattern, Machine, NetModel, Placement,
};
use jubench::kernels::{
    cg::{cg_solve, DenseOp},
    fft_1d, ifft_1d, lu_factor, lu_solve, thomas_solve,
    tridiag::tridiag_apply,
    C64, Matrix,
};
use jubench::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FFT round trip is the identity for any power-of-two length.
    #[test]
    fn fft_round_trip(log_n in 1u32..9, values in proptest::collection::vec(-10.0f64..10.0, 1..256)) {
        let n = 1usize << log_n;
        let mut data: Vec<C64> = (0..n)
            .map(|i| C64::new(values[i % values.len()], values[(i * 7 + 3) % values.len()]))
            .collect();
        let original = data.clone();
        fft_1d(&mut data);
        ifft_1d(&mut data);
        for (a, b) in data.iter().zip(&original) {
            prop_assert!((*a - *b).abs() < 1e-9);
        }
    }

    /// Parseval: the FFT conserves energy (up to the 1/n convention).
    #[test]
    fn fft_parseval(log_n in 1u32..9, seed in 0u64..1000) {
        let n = 1usize << log_n;
        let mut rng_state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        let data: Vec<C64> = (0..n).map(|_| C64::new(next(), next())).collect();
        let time_energy: f64 = data.iter().map(|z| z.norm_sqr()).sum();
        let mut freq = data;
        fft_1d(&mut freq);
        let freq_energy: f64 = freq.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((time_energy - freq_energy).abs() <= 1e-9 * time_energy.max(1.0));
    }

    /// LU solves random well-conditioned systems.
    #[test]
    fn lu_solves_diagonally_dominant_systems(n in 2usize..24, seed in 0u64..500) {
        let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (s >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        };
        let mut a = Matrix::from_fn(n, n, |_, _| next());
        for i in 0..n {
            a[(i, i)] += n as f64; // diagonal dominance
        }
        let x_true: Vec<f64> = (0..n).map(|_| next()).collect();
        let b: Vec<f64> = (0..n)
            .map(|i| a.row(i).iter().zip(&x_true).map(|(aij, xj)| aij * xj).sum())
            .collect();
        let f = lu_factor(&a).expect("diagonally dominant ⇒ nonsingular");
        let x = lu_solve(&f, &b);
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-7);
        }
    }

    /// The Thomas solver inverts diagonally dominant tridiagonal systems.
    #[test]
    fn thomas_inverts(n in 1usize..64, seed in 0u64..500) {
        let mut s = seed.wrapping_add(7);
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(99);
            (s >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        };
        let lower: Vec<f64> = (0..n).map(|_| next()).collect();
        let upper: Vec<f64> = (0..n).map(|_| next()).collect();
        let diag: Vec<f64> = (0..n).map(|i| 3.0 + lower[i].abs() + upper[i].abs()).collect();
        let x_true: Vec<f64> = (0..n).map(|_| next()).collect();
        let rhs = tridiag_apply(&lower, &diag, &upper, &x_true);
        let x = thomas_solve(&lower, &diag, &upper, &rhs);
        for (got, want) in x.iter().zip(&x_true) {
            prop_assert!((got - want).abs() < 1e-8);
        }
    }

    /// CG converges on SPD systems built as AᵀA + n·I.
    #[test]
    fn cg_converges_on_spd(n in 2usize..16, seed in 0u64..200) {
        let mut s = seed.wrapping_add(13);
        let mut next = move || {
            s = s.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (s >> 33) as f64 / (1u64 << 31) as f64 - 1.0
        };
        let m = Matrix::from_fn(n, n, |_, _| next());
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..n {
                    acc += m[(k, i)] * m[(k, j)];
                }
                a[(i, j)] = acc + if i == j { n as f64 } else { 0.0 };
            }
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let mut x = vec![0.0; n];
        let res = cg_solve(&DenseOp(a), &b, &mut x, 1e-10, 10 * n + 20);
        prop_assert!(res.converged, "residual {}", res.relative_residual);
    }

    /// Balanced factorizations always multiply back to n.
    #[test]
    fn balanced_dims_factorize(n in 1u32..2048) {
        let d3 = balanced_dims3(n);
        prop_assert_eq!(d3.iter().product::<u32>(), n);
        let d4 = balanced_dims4(n);
        prop_assert_eq!(d4.iter().product::<u32>(), n);
    }

    /// Communication pattern costs are non-negative, finite, and increase
    /// (weakly) with payload size.
    #[test]
    fn pattern_costs_are_monotone_in_bytes(nodes in 1u32..936, kb in 1u64..4096) {
        let machine = Machine::juwels_booster().partition(nodes);
        let placement = Placement::per_gpu(machine);
        let net = NetModel::juwels_booster();
        let small = CommPattern::AllReduce { bytes: kb * 1024 };
        let large = CommPattern::AllReduce { bytes: kb * 2048 };
        let t_small = pattern_time(small, &placement, &net);
        let t_large = pattern_time(large, &placement, &net);
        prop_assert!(t_small.is_finite() && t_small >= 0.0);
        prop_assert!(t_large >= t_small);
    }

    /// The congestion factor is bounded and monotone non-increasing.
    #[test]
    fn congestion_bounds(a in 1u32..936, b in 1u32..936) {
        let net = NetModel::juwels_booster();
        let (lo, hi) = (a.min(b), a.max(b));
        let f_lo = net.congestion_factor(lo);
        let f_hi = net.congestion_factor(hi);
        prop_assert!((net.congestion_floor..=1.0).contains(&f_lo));
        prop_assert!(f_hi <= f_lo);
    }

    /// Memory-variant sizing: fractions are ordered and the best fit never
    /// exceeds the proposed memory.
    #[test]
    fn variant_best_fit_fits(gib in 1u64..512) {
        let proposed = gib << 30;
        let reference = 40u64 << 30;
        if let Some(v) = MemoryVariant::best_fit(&MemoryVariant::ALL, reference, proposed) {
            prop_assert!(v.target_bytes(reference) <= proposed);
            // No larger offered variant would also fit.
            for bigger in MemoryVariant::ALL.into_iter().filter(|b| *b > v) {
                prop_assert!(bigger.target_bytes(reference) > proposed);
            }
        } else {
            prop_assert!(MemoryVariant::Tiny.target_bytes(reference) > proposed);
        }
    }

    /// JUQCS memory law: monotone, exact powers of two.
    #[test]
    fn juqcs_memory_law(n in 1u32..100) {
        use jubench::apps_quantum::{max_qubits, state_bytes};
        prop_assert_eq!(state_bytes(n), 16u128 << n);
        prop_assert_eq!(max_qubits(state_bytes(n)), n);
        prop_assert_eq!(max_qubits(state_bytes(n) - 1), n - 1);
    }

    /// Parameter substitution is idempotent: expanding twice gives the
    /// same resolution.
    #[test]
    fn parameter_substitution_idempotent(a in "[a-z]{1,6}", b in "[0-9]{1,4}") {
        let mut ps = ParameterSet::new();
        ps.set("base", a.clone());
        ps.set("num", b.clone());
        ps.set("combo", "${base}-${num}");
        let once = ps.expand(&[]).unwrap();
        let twice = ps.expand(&[]).unwrap();
        prop_assert_eq!(&once, &twice);
        prop_assert_eq!(once[0]["combo"].clone(), format!("{a}-{b}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Archive manifests verify their own content for arbitrary members.
    #[test]
    fn archive_manifest_round_trip(
        names in proptest::collection::btree_set("[a-z]{1,12}", 1..6),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        use jubench::jube::Archive;
        let mut a = Archive::new();
        for (i, name) in names.iter().enumerate() {
            let mut content = payload.clone();
            content.push(i as u8);
            a.add(name, content);
        }
        let manifest = a.manifest();
        prop_assert!(a.verify(&manifest).is_empty());
        // Any bit flip in a member is caught.
        let mut tampered = Archive::new();
        for (i, name) in names.iter().enumerate() {
            let mut content = payload.clone();
            content.push(i as u8);
            if i == 0 {
                content.push(0xFF);
            }
            tampered.add(name, content);
        }
        prop_assert!(!tampered.verify(&manifest).is_empty());
    }

    /// The nekRS settling model predicts synthetic runs within 10 %.
    #[test]
    fn settling_model_predicts(
        initial in 50.0f64..300.0,
        asymptote in 10.0f64..45.0,
        decay in 0.7f64..0.96,
    ) {
        use jubench::apps_cfd::perf_model::{predict_run, synthetic_profile, StepProfile};
        let truth = synthetic_profile(600, initial, asymptote, decay);
        let true_total: f64 = truth.iterations.iter().sum();
        let prefix = StepProfile { iterations: truth.iterations[..60].to_vec() };
        let (predicted, _) = predict_run(&prefix, 600).unwrap();
        prop_assert!((predicted - true_total).abs() / true_total < 0.10);
    }

    /// exp of a traceless anti-Hermitian matrix is special unitary for
    /// arbitrary entries.
    #[test]
    fn su3_exponential_is_special_unitary(entries in proptest::collection::vec(-2.0f64..2.0, 18)) {
        use jubench::apps_lattice::hmc::{exp_matrix, project_ta};
        use jubench::kernels::C64;
        let mut m = [[C64::ZERO; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                let k = (i * 3 + j) * 2;
                m[i][j] = C64::new(entries[k], entries[k + 1]);
            }
        }
        let u = exp_matrix(&project_ta(&m));
        prop_assert!(u.unitarity_error() < 1e-10);
        prop_assert!((u.det() - C64::ONE).abs() < 1e-10);
    }

    /// Baseline stores round-trip arbitrary positive values at full
    /// precision.
    #[test]
    fn baseline_store_round_trip(value in 1e-6f64..1e12) {
        use jubench::continuous::BaselineStore;
        let mut store = BaselineStore::new();
        store.set(BenchmarkId::NekRs, value);
        let back = BaselineStore::from_text(&store.to_text()).unwrap();
        prop_assert_eq!(back.get(BenchmarkId::NekRs), Some(value));
    }
}

proptest! {
    // Thread-spawning properties get fewer cases.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Distributed allreduce equals the sequential reduction for any data.
    #[test]
    fn allreduce_matches_sequential(values in proptest::collection::vec(-100.0f64..100.0, 4)) {
        let w = World::new(Machine::juwels_booster().partition(1)); // 4 ranks
        let vals = values.clone();
        let results = w.run(move |comm| {
            let mut buf = [vals[comm.rank() as usize]];
            comm.allreduce_f64(&mut buf, ReduceOp::Sum).unwrap();
            buf[0]
        });
        let expect: f64 = values.iter().sum();
        for r in &results {
            prop_assert!((r.value - expect).abs() < 1e-9);
        }
    }

    /// Gate application preserves the norm for arbitrary phase angles.
    #[test]
    fn quantum_gates_are_unitary(theta in -6.28f64..6.28, qubit in 0u32..6) {
        use jubench::apps_quantum::statevector::{DistStateVector, Gate1};
        let w = World::new(Machine::juwels_booster().partition(1));
        let results = w.run(move |comm| {
            let mut sv = DistStateVector::zero_state(comm, 6);
            for q in 0..6 {
                sv.apply(comm, q, Gate1::h()).unwrap();
            }
            sv.apply(comm, qubit, Gate1::phase(theta)).unwrap();
            sv.norm_sqr(comm).unwrap()
        });
        for r in &results {
            prop_assert!((r.value - 1.0).abs() < 1e-10);
        }
    }
}
