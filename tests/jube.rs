//! The JUBE layer's packaging and platform mechanisms as integration
//! tests: platform-inherited workflows that hand jobs to the batch
//! scheduler (the §III-B "batch submission template" path), and result
//! archives whose manifests survive the round trip.

use jubench::jube::{fnv1a64, verify_download, Archive, Platform};
use jubench::prelude::*;
use jubench::sched::{submit_step, SubmitQueue};

/// A platform workflow submits jobs to the scheduler instead of running
/// them inline — the JUBE → SLURM handoff, end to end.
#[test]
fn platform_workflow_feeds_the_scheduler() {
    let queue = SubmitQueue::new();
    let mut wf = Workflow::on_platform(&Platform::juwels_booster());
    wf.params.set("nodes", "8");
    wf.params.set("script", "bench.job");
    wf.add_step(submit_step(
        "submit_amber",
        &queue,
        Job::new(0, "amber", 8, 2.0),
    ));
    wf.add_step(submit_step(
        "submit_icon",
        &queue,
        Job::new(1, "icon", 96, 1.0).with_priority(1),
    ));
    let results = wf.execute(&[]).expect("workflow");
    // The submit steps expose the submission in their outputs alongside
    // the platform's parameters.
    assert!(results[0].value("job.id").is_some());
    assert_eq!(results[0].value("partition"), Some("booster"));

    let jobs = queue.drain();
    assert_eq!(jobs.len(), 2);
    let schedule = Scheduler::new(
        Machine::juwels_booster().partition(192),
        NetModel::juwels_booster(),
        SchedulerConfig::new(
            QueuePolicy::ConservativeBackfill,
            PlacementPolicy::Contiguous,
            0,
        ),
    )
    .run(&jobs, &FaultPlan::new(0));
    assert_eq!(schedule.finished(), 2);
}

/// Platform inheritance: the same submit steps run unchanged on another
/// module; only the platform parameters differ.
#[test]
fn submit_steps_are_platform_independent() {
    for (platform, partition) in [
        (Platform::juwels_booster(), "booster"),
        (Platform::juwels_cluster(), "batch"),
    ] {
        let queue = SubmitQueue::new();
        let mut wf = Workflow::on_platform(&platform);
        wf.params.set("nodes", "4");
        wf.params.set("script", "s");
        wf.add_step(submit_step("submit", &queue, Job::new(0, "probe", 4, 1.0)));
        let results = wf.execute(&[]).unwrap();
        assert_eq!(results[0].value("partition"), Some(partition));
        assert_eq!(queue.len(), 1, "{}", platform.name);
    }
}

/// A campaign's deliverables — schedule table and decision log — package
/// into an archive whose manifest detects any tampering.
#[test]
fn campaign_results_archive_round_trips() {
    let jobs = vec![
        Job::new(0, "amber", 8, 2.0),
        Job::new(1, "icon", 16, 1.0).with_submit(0.5),
    ];
    let schedule = Scheduler::new(
        Machine::juwels_booster().partition(96),
        NetModel::juwels_booster(),
        SchedulerConfig::new(
            QueuePolicy::ConservativeBackfill,
            PlacementPolicy::Contiguous,
            7,
        ),
    )
    .run(&jobs, &FaultPlan::new(0));

    let mut archive = Archive::new();
    archive.add("campaign.md", schedule.render().into_bytes());
    archive.add("schedule.log", schedule.log.join("\n").into_bytes());
    assert_eq!(archive.len(), 2);

    let manifest = archive.manifest();
    assert!(manifest.contains("campaign.md"));
    assert!(archive.verify(&manifest).is_empty(), "self-consistent");

    // The package hash commits to the exact schedule: a different seed's
    // log is a different download.
    let hash = archive.package_hash();
    assert!(verify_download(&schedule.log.join("\n").into_bytes(), {
        fnv1a64(&schedule.log.join("\n").into_bytes())
    }));
    let mut tampered = Archive::new();
    tampered.add("campaign.md", schedule.render().into_bytes());
    tampered.add("schedule.log", b"forged".to_vec());
    assert_ne!(tampered.package_hash(), hash);
    assert!(!tampered.verify(&manifest).is_empty(), "tampering caught");
}

/// Archive manifests single out exactly the members that changed.
#[test]
fn archive_verify_names_the_offending_member() {
    let mut a = Archive::new();
    a.add("results.csv", b"1,2,3".to_vec());
    a.add("run.log", b"ok".to_vec());
    let manifest = a.manifest();

    let mut b = Archive::new();
    b.add("results.csv", b"1,2,3".to_vec());
    b.add("run.log", b"edited".to_vec());
    let bad = b.verify(&manifest);
    assert!(bad.iter().any(|m| m.contains("run.log")), "{bad:?}");
    assert!(bad.iter().all(|m| !m.contains("results.csv")), "{bad:?}");
}
