//! The differential parallel-vs-sequential harness: the workspace-wide
//! determinism guarantee as an enforced invariant.
//!
//! Every study, the full campaign, and a traced workflow are executed at
//! 1, 2, and 8 pool threads (`jubench::pool::with_threads`), and their
//! rendered result tables, `RunReport` aggregates, and Chrome trace
//! exports are asserted **byte-identical**. One pool thread is the
//! sequential reference; any scheduling-order leak into an output shows
//! up as a byte diff here.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use jubench::pool::with_threads;
use jubench::prelude::*;
use jubench::scaling::{
    campaign_table, ckpt_table, fig3_all_series, resilience_table, strong_scaling_series,
    traffic_table,
};
use jubench::sched::{registry_jobs, run_campaign};
use jubench::trace::RunReport;

const THREADS: [usize; 3] = [1, 2, 8];

/// Render `artifact()` at each pool width and assert the bytes agree
/// with the 1-thread (sequential) reference.
fn assert_thread_invariant(what: &str, artifact: impl Fn() -> String) {
    let reference = with_threads(THREADS[0], &artifact);
    for &t in &THREADS[1..] {
        let got = with_threads(t, &artifact);
        assert_eq!(
            got, reference,
            "{what}: output at {t} pool threads diverged from sequential"
        );
    }
}

#[test]
fn strong_scaling_series_are_thread_invariant() {
    let r = full_registry();
    for id in [BenchmarkId::Arbor, BenchmarkId::Gromacs, BenchmarkId::Juqcs] {
        let bench = r.get(id).unwrap();
        assert_thread_invariant(&format!("strong scaling of {}", id.name()), || {
            strong_scaling_series(bench, 1).render()
        });
    }
}

#[test]
fn weak_scaling_series_are_thread_invariant() {
    assert_thread_invariant("Fig. 3 weak scaling (all series)", || {
        fig3_all_series(1)
            .iter()
            .map(|s| s.render())
            .collect::<Vec<_>>()
            .join("\n")
    });
}

#[test]
fn traffic_table_is_thread_invariant() {
    assert_thread_invariant("traffic table", || traffic_table(&[1, 2, 4]).render());
}

#[test]
fn resilience_table_is_thread_invariant() {
    assert_thread_invariant("resilience table", || {
        resilience_table(4, &[0.0, 0.25, 0.5], 4.0, 17).render()
    });
}

#[test]
fn ckpt_study_is_thread_invariant() {
    assert_thread_invariant("checkpoint-interval study table", || {
        ckpt_table(8, 0.05, &[None, Some(0.8)], &[6.0, 12.0], 17).render()
    });
}

#[test]
fn campaign_study_is_thread_invariant() {
    let registry = full_registry();
    assert_thread_invariant("campaign study table", || {
        campaign_table(&registry, &[144], 0.05, 2024).render()
    });
}

/// The full-campaign artifact bundle: probe the whole registry into a
/// job set, schedule it, and export the schedule's rendered table, its
/// `RunReport` aggregate, and its Chrome trace JSON. Shared between the
/// thread-invariance and metrics-invariance sweeps.
fn campaign_artifact(registry: &Registry) -> String {
    let jobs = registry_jobs(registry, 0.05);
    let schedule = run_campaign(
        Machine::juwels_booster().partition(144),
        NetModel::juwels_booster(),
        SchedulerConfig::new(
            QueuePolicy::ConservativeBackfill,
            PlacementPolicy::Contiguous,
            2024,
        ),
        &jobs,
        &FaultPlan::new(0),
    );
    let recorder = Arc::new(Recorder::new());
    schedule.emit(recorder.as_ref());
    let events = recorder.take_events();
    let report = RunReport::from_events(&events);
    format!(
        "{}\n{}\n{}",
        schedule.render(),
        report.render(),
        chrome_trace_json(&events)
    )
}

/// The full campaign end to end at every pool width.
#[test]
fn full_campaign_artifacts_are_thread_invariant() {
    let registry = full_registry();
    assert_thread_invariant("full campaign (table + report + trace)", || {
        campaign_artifact(&registry)
    });
}

/// The hard invariant of `jubench-metrics`: recording is observational
/// only. The full-campaign artifact bundle — which exercises the
/// instrumented pool, scheduler, simulated MPI, checkpoint, and trace
/// paths — must be **byte-identical** with metrics enabled and disabled,
/// at 1, 2, and 8 pool threads.
#[test]
fn artifacts_are_byte_identical_with_metrics_on_and_off() {
    let _guard = jubench::metrics::registry::test_mutex().lock().unwrap();
    let registry = full_registry();
    jubench::metrics::set_enabled(true);
    let reference = with_threads(THREADS[0], || campaign_artifact(&registry));
    for &t in &THREADS {
        for on in [true, false] {
            jubench::metrics::set_enabled(on);
            let got = with_threads(t, || campaign_artifact(&registry));
            assert_eq!(
                got,
                reference,
                "campaign artifact at {t} pool threads with metrics {} diverged",
                if on { "on" } else { "off" }
            );
        }
    }
    jubench::metrics::set_enabled(true);
}

/// A traced parameter-space workflow with dependent levels and a
/// deterministically flaky step: results, per-step attempt counts, and
/// the exported trace must not depend on the pool width.
#[test]
fn traced_workflow_is_thread_invariant() {
    assert_thread_invariant("traced workflow (results + trace)", || {
        // Each workpackage's execute step fails exactly twice before
        // succeeding, tracked per workpackage so the retry count is
        // deterministic under any interleaving.
        let failures: Arc<Mutex<BTreeMap<String, u32>>> = Arc::new(Mutex::new(BTreeMap::new()));
        let rec = Arc::new(Recorder::new());
        let mut wf = Workflow::new();
        wf.params.set_list("nodes", ["2", "4", "8", "16"]);
        wf.add_step(Step::new("compile", |_| {
            Ok(jubench::jube::output1("binary", "bench.x"))
        }));
        let f = Arc::clone(&failures);
        wf.add_step(
            Step::new("execute", move |ctx| {
                let nodes = ctx.param("nodes").unwrap().to_string();
                let mut seen = f.lock().unwrap();
                let attempts = seen.entry(nodes.clone()).or_insert(0);
                *attempts += 1;
                if *attempts <= 2 {
                    Err(format!("transient failure on {nodes} nodes"))
                } else {
                    Ok(jubench::jube::output1("runtime", nodes))
                }
            })
            .with_retry(RetryPolicy::new(5, 0.1))
            .after("compile"),
        );
        wf.add_step(
            Step::new("verify", |ctx| {
                let rt = ctx.output("execute", "runtime").unwrap();
                Ok(jubench::jube::output1("verified", rt))
            })
            .after("execute"),
        );
        let wf = wf.with_recorder(rec.clone());
        let results = wf.execute(&[]).unwrap();
        let table: String = results
            .iter()
            .map(|r| {
                format!(
                    "nodes={} verified={} attempts={}\n",
                    r.value("nodes").unwrap(),
                    r.value("verified").unwrap(),
                    r.value("execute.attempts").unwrap(),
                )
            })
            .collect();
        let events = rec.take_events();
        let report = RunReport::from_events(&events);
        format!(
            "{table}\n{}\n{}",
            report.render(),
            chrome_trace_json(&events)
        )
    });
}

/// The simulated-MPI probe itself: rank programs run on dedicated
/// threads, so a traced world's report must be byte-stable regardless of
/// how wide the surrounding pool is.
#[test]
fn traced_world_report_is_thread_invariant() {
    assert_thread_invariant("traced world run report", || {
        let rec = Arc::new(Recorder::new());
        let w = World::new(Machine::juwels_booster().partition(2)).with_recorder(rec.clone());
        w.run(|comm| {
            comm.advance_compute(1e-3 * (comm.rank() + 1) as f64);
            let mut acc = [comm.rank() as f64; 8];
            comm.allreduce_f64(&mut acc, ReduceOp::Sum).unwrap();
            comm.barrier();
        });
        let events = rec.take_events();
        format!(
            "{}\n{}",
            RunReport::from_events(&events).render(),
            chrome_trace_json(&events)
        )
    });
}
