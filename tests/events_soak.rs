//! Soak test for the event-driven virtual-time core: a sparse campaign
//! spanning a **million virtual seconds** with only a few thousand
//! events must be processed in O(events), not O(virtual time).
//!
//! The assertion is on the engine's own self-observability counters —
//! `events/processed` (queue pops acted on) and `events/ticks_skipped`
//! (idle virtual seconds jumped over) — not on wall clock, so the test
//! is immune to machine speed and build profile. A snapshot/resume
//! differential on a prefix of the same workload guards the counters
//! against measuring a wrong schedule fast.

use jubench::pool::with_threads;
use jubench::prelude::*;

const THREADS: [usize; 3] = [1, 2, 8];

/// `n` short jobs spaced `spacing_s` apart: the machine is idle for
/// almost the entire campaign, so a stepping engine would grind through
/// ~`n · spacing_s` virtual seconds while the event engine pops ~3
/// events per job (submit, start bookkeeping, finish).
fn sparse_jobs(n: u32, spacing_s: f64) -> Vec<Job> {
    (0..n)
        .map(|i| {
            Job::new(i, &format!("sparse-{i}"), 4, 10.0)
                .with_comm_fraction(0.1)
                .with_submit(f64::from(i) * spacing_s)
        })
        .collect()
}

fn small_scheduler(seed: u64) -> Scheduler {
    Scheduler::new(
        Machine::juwels_booster().partition(48),
        NetModel::juwels_booster(),
        SchedulerConfig::new(
            QueuePolicy::ConservativeBackfill,
            PlacementPolicy::Contiguous,
            seed,
        ),
    )
}

#[test]
fn million_second_sparse_campaign_processes_o_events() {
    let _guard = jubench::metrics::registry::test_mutex().lock().unwrap();
    jubench::metrics::set_enabled(true);
    let jobs = sparse_jobs(2000, 500.0);
    let scheduler = small_scheduler(7);
    // Sprinkle drains across the megasecond so fault arrivals ride the
    // same queue through the idle stretches.
    let plan = FaultPlan::periodic_drains(11, 48, 2.0e5, 50.0, 1.0e6, 4.0);

    let mut reference_log: Option<Vec<String>> = None;
    for &t in &THREADS {
        jubench::metrics::reset();
        let schedule = with_threads(t, || scheduler.run(&jobs, &plan));
        assert_eq!(schedule.finished(), jobs.len(), "{t} threads");
        assert!(
            schedule.makespan_s > 9.9e5,
            "the campaign must actually span ~1M virtual seconds, got {}",
            schedule.makespan_s
        );

        let snap = jubench::metrics::snapshot();
        let processed = snap.counters.get("events/processed").copied().unwrap_or(0);
        let skipped = snap
            .counters
            .get("events/ticks_skipped")
            .copied()
            .unwrap_or(0);
        let stale = snap
            .counters
            .get("events/stale_dropped")
            .copied()
            .unwrap_or(0);
        assert!(
            processed > 0 && processed < 10_000,
            "{t} threads: {processed} events processed for 2000 jobs — \
             the engine must scale with events, not virtual seconds"
        );
        assert!(
            skipped > 900_000,
            "{t} threads: only {skipped} idle virtual seconds skipped \
             over a ~1M-second campaign"
        );
        assert!(
            stale <= processed,
            "{t} threads: lazy deletion ({stale} stale) must stay a \
             fraction of live traffic ({processed})"
        );

        // The counters must measure the *same* schedule at every width.
        match &reference_log {
            None => reference_log = Some(schedule.log.clone()),
            Some(reference) => assert_eq!(
                &schedule.log, reference,
                "{t} threads: soak schedule diverged from sequential"
            ),
        }
    }
}

/// The economy proven above must not come from computing a different
/// (cheaper) schedule: on a prefix of the same sparse workload, slicing
/// the campaign through snapshot/resume boundaries reproduces the
/// straight run byte for byte.
#[test]
fn sparse_campaign_prefix_is_slice_invariant() {
    let jobs = sparse_jobs(300, 500.0);
    let scheduler = small_scheduler(7);
    let plan = FaultPlan::periodic_drains(11, 48, 2.0e5, 50.0, 1.5e5, 4.0);
    let straight = scheduler.run(&jobs, &plan);
    let mut state = scheduler.begin(&jobs);
    let mut until = 0.0;
    loop {
        until += straight.makespan_s / 11.7;
        let mut s = scheduler
            .resume(&state.snapshot(), &jobs)
            .expect("slice snapshot restores");
        let done = scheduler.advance(&mut s, &jobs, &plan, until);
        state = s;
        if done {
            break;
        }
    }
    let sliced = scheduler.finish(state);
    assert_eq!(sliced.log, straight.log);
    assert_eq!(sliced.makespan_s, straight.makespan_s);
}
