//! Fleet-study determinism and cache-keying invariants.
//!
//! The fleet report is a procurement artifact: its bytes must not
//! depend on pool width, shard count, or cache temperature, and two
//! different catalog backends must never answer each other's cached
//! points.

use jubench::fleet::{standard_catalog, FleetStudy};
use jubench::pool::with_threads;
use jubench::prelude::*;
use jubench::scaling::full_registry;

/// The rendered report is byte-identical at 1, 2, and 8 pool threads —
/// the `JUBENCH_POOL_THREADS` matrix run in-process.
#[test]
fn fleet_report_is_pool_thread_invariant() {
    let registry = full_registry();
    let render = || FleetStudy::standard().run(&registry).unwrap().render();
    let sequential = with_threads(1, render);
    for threads in [2, 8] {
        let got = with_threads(threads, render);
        assert_eq!(
            got, sequential,
            "fleet report at {threads} pool threads diverged from sequential"
        );
    }
}

/// Re-running the study on the same service hits the warm result cache
/// and reproduces the cold report byte for byte.
#[test]
fn warm_cache_reproduces_the_cold_report() {
    let registry = full_registry();
    let study = FleetStudy::standard();
    let mut server = Server::new(study.n_shards, study.cache_capacity);
    let cold = study.run_on(&mut server, &registry).unwrap().render();
    let misses_after_cold: u64 = (0..study.n_shards)
        .map(|i| server.shard(i as u32).cache().stats().misses)
        .sum();
    let warm = study.run_on(&mut server, &registry).unwrap().render();
    let misses_after_warm: u64 = (0..study.n_shards)
        .map(|i| server.shard(i as u32).cache().stats().misses)
        .sum();
    assert_eq!(warm, cold, "warm cache changed the report bytes");
    assert_eq!(
        misses_after_warm, misses_after_cold,
        "warm pass should answer every point from the cache"
    );
    assert!(misses_after_cold > 0, "cold pass must actually execute");
}

/// The same run point on two different catalog backends never shares a
/// serve cache key — the regression the extended machine fingerprint
/// exists to prevent.
#[test]
fn catalog_backends_never_share_point_keys() {
    let registry = full_registry();
    let specs: Vec<CampaignSpec> = standard_catalog()
        .into_iter()
        .map(|model| {
            let mut spec =
                CampaignSpec::new("fleet", model.key, 96, 42).with_backend(model.machine);
            for bench in registry.iter() {
                spec = spec.with_point(RunPoint::test(
                    bench.meta().id.name(),
                    bench.reference_nodes(),
                    42,
                ));
            }
            spec
        })
        .collect();
    for point in 0..specs[0].points.len() {
        for (i, a) in specs.iter().enumerate() {
            for b in specs.iter().skip(i + 1) {
                assert_ne!(
                    a.point_key(point),
                    b.point_key(point),
                    "point {point} shares a cache key between `{}` and `{}`",
                    a.name,
                    b.name
                );
            }
        }
    }
}

/// The composite ranking of the standard catalog is a stable,
/// deterministic contract: fatter nodes win, the CPU cluster trails.
#[test]
fn standard_catalog_ranking_is_stable() {
    let registry = full_registry();
    let report = FleetStudy::standard().run(&registry).unwrap();
    assert_eq!(report.ranking(), vec!["nextgen", "cloud", "booster", "cpu"]);
    let reference = report.reference();
    assert!((reference.composite.score - 1.0).abs() < 1e-12);
}
