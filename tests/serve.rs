//! Integration tests of the campaign service (`jubench-serve`): the
//! determinism contract end to end.
//!
//! The headline invariant: for a fixed campaign, the result table and
//! Chrome trace are byte-identical across warm vs cold caches, every
//! pool width (1/2/8), kill-and-restore of a shard mid-run, and
//! resubmission after a partial spec change. The cache moves *when*
//! work happens, never *what* is produced.

use jubench::ckpt::Checkpointable;
use jubench::pool::with_threads;
use jubench::prelude::*;
use jubench::serve::{Emit, Frame, ShardState};

const THREADS: [usize; 3] = [1, 2, 8];

fn campaign(name: &str, seed: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new("integration", name, 16, seed)
        .with_point(RunPoint::test("STREAM", 2, seed))
        .with_point(RunPoint::test("OSU", 2, seed + 1))
        .with_point(RunPoint::test("LinkTest", 4, seed + 2));
    spec.slice_s = 5.0;
    spec
}

/// The `(table, chrome_trace)` artifacts of every completed campaign,
/// in campaign order.
fn artifacts(emits: &[Emit]) -> Vec<(String, String)> {
    emits
        .iter()
        .filter_map(|e| match &e.frame {
            Frame::Done {
                table,
                chrome_trace,
                ..
            } => Some((table.clone(), chrome_trace.clone())),
            _ => None,
        })
        .collect()
}

/// The frame stream of one campaign (ids differ between submissions of
/// the same spec, so comparisons go through this projection).
fn frames_of(emits: &[Emit], campaign: u64) -> Vec<Frame> {
    emits
        .iter()
        .filter_map(|e| match &e.frame {
            Frame::Row { campaign: c, .. }
            | Frame::JobDone { campaign: c, .. }
            | Frame::Done { campaign: c, .. }
                if *c == campaign =>
            {
                Some(e.frame.clone())
            }
            _ => None,
        })
        .collect()
}

#[test]
fn warm_and_cold_campaigns_are_byte_identical_at_every_pool_width() {
    let per_width: Vec<_> = THREADS
        .iter()
        .map(|&t| {
            with_threads(t, || {
                let registry = full_registry();
                let mut server = Server::new(2, 64);
                server.submit(1, campaign("nightly", 7), &registry).unwrap();
                let cold = artifacts(&server.drain(&registry).unwrap());
                // Same spec again: every point answers from the cache.
                let (_, shard) = server.submit(1, campaign("nightly", 7), &registry).unwrap();
                let warm = artifacts(&server.drain(&registry).unwrap());
                let hits = server.shard(shard).cache().stats().hits;
                assert!(hits >= 3, "warm resubmission must hit, got {hits} hits");
                assert_eq!(warm, cold, "warm != cold at {t} pool threads");
                cold
            })
        })
        .collect();
    for (&t, arts) in THREADS[1..].iter().zip(&per_width[1..]) {
        assert_eq!(
            arts, &per_width[0],
            "artifacts at {t} pool threads diverged from sequential"
        );
    }
}

#[test]
fn kill_and_restore_of_a_shard_mid_run_is_byte_identical() {
    let registry = full_registry();
    let submit_all = |server: &mut Server| {
        for (i, seed) in [3u64, 11, 19].iter().enumerate() {
            server
                .submit(1, campaign(&format!("c{i}"), *seed), &registry)
                .unwrap();
        }
    };
    let reference = {
        let mut server = Server::new(4, 64);
        submit_all(&mut server);
        server.drain(&registry).unwrap()
    };
    for kill_at in [1usize, 3, 6] {
        let mut server = Server::new(4, 64);
        submit_all(&mut server);
        let mut emits = Vec::new();
        for _ in 0..kill_at {
            emits.extend(server.step(&registry).unwrap());
        }
        // Snapshot every shard, lose them all (the crash), then restore
        // each into a shard constructed with wrong parameters.
        for s in 0..4u32 {
            let snapshot = server.shard(s).snapshot();
            *server.shard_mut(s) = ShardState::new(99, 1);
            server.shard_mut(s).restore(&snapshot).unwrap();
        }
        emits.extend(server.drain(&registry).unwrap());
        assert_eq!(emits, reference, "kill at step {kill_at} diverged");
    }
}

#[test]
fn resubmission_reexecutes_only_the_changed_points() {
    let registry = full_registry();
    let mut server = Server::new(1, 64);
    let spec = campaign("sweep", 5);
    server.submit(1, spec.clone(), &registry).unwrap();
    server.drain(&registry).unwrap();
    let cold = server.shard(0).cache().stats();
    assert_eq!((cold.hits, cold.misses), (0, 3));

    // Change one point's seed: two points stay cached, one re-executes.
    let mut changed = spec;
    changed.points[1].seed ^= 0x5eed;
    server.submit(1, changed, &registry).unwrap();
    server.drain(&registry).unwrap();
    let warm = server.shard(0).cache().stats();
    assert_eq!(warm.hits - cold.hits, 2, "unchanged points must hit");
    assert_eq!(warm.misses - cold.misses, 1, "the changed point must miss");
}

#[test]
fn bounded_cache_evicts_deterministically_without_changing_bytes() {
    let registry = full_registry();
    let run = |capacity: usize| {
        let mut server = Server::new(1, capacity);
        server.submit(1, campaign("evict", 2), &registry).unwrap();
        let first = artifacts(&server.drain(&registry).unwrap());
        server.submit(1, campaign("evict", 2), &registry).unwrap();
        let second = artifacts(&server.drain(&registry).unwrap());
        assert_eq!(first, second, "capacity {capacity} changed bytes");
        (first, server)
    };
    // A 2-entry cache under a 3-point campaign must evict, stay within
    // its bound, and still produce the bytes of the unbounded run.
    let (unbounded, _) = run(64);
    let (bounded, server) = run(2);
    assert_eq!(bounded, unbounded);
    let cache = server.shard(0).cache();
    assert!(cache.len() <= 2, "bound violated: {} entries", cache.len());
    assert!(cache.stats().evictions > 0, "eviction never triggered");

    // Replaying the same workload replays the same evictions: the final
    // shard states (cache contents, recency clock, tallies) agree.
    let (_, replay) = run(2);
    assert_eq!(server.shard(0), replay.shard(0));
}

#[test]
fn migration_mid_campaign_preserves_artifacts() {
    let registry = full_registry();
    let reference = {
        let mut server = Server::new(4, 64);
        server.submit(1, campaign("mig", 13), &registry).unwrap();
        artifacts(&server.drain(&registry).unwrap())
    };
    let mut server = Server::new(4, 64);
    let (id, shard) = server.submit(1, campaign("mig", 13), &registry).unwrap();
    server.step(&registry).unwrap();
    assert!(server.migrate(id, (shard + 2) % 4).unwrap());
    assert_eq!(artifacts(&server.drain(&registry).unwrap()), reference);
}

#[test]
fn serial_and_parallel_drains_agree_per_campaign() {
    let registry = full_registry();
    let submit_all = |server: &mut Server| -> Vec<u64> {
        (0..4u64)
            .map(|i| {
                let spec = campaign(&format!("p{i}"), 31 + i);
                server.submit(1, spec, &registry).unwrap().0
            })
            .collect()
    };
    let mut serial = Server::new(3, 64);
    let ids = submit_all(&mut serial);
    let serial_emits = serial.drain(&registry).unwrap();
    let mut parallel = Server::new(3, 64);
    submit_all(&mut parallel);
    let parallel_emits = parallel.drain_parallel(&registry).unwrap();
    for id in ids {
        assert_eq!(
            frames_of(&serial_emits, id),
            frames_of(&parallel_emits, id),
            "campaign {id} diverged between serial and parallel drains"
        );
    }
}
