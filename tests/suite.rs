//! Cross-crate integration: the full registry executes, verifies, and
//! reports consistently.

use jubench::prelude::*;

/// Every benchmark of the suite runs at a small scale and passes its own
/// verification — the suite-wide "thorough testing ensures stable
/// execution in different environments" requirement (§II-C).
#[test]
fn every_benchmark_runs_and_verifies() {
    let registry = full_registry();
    assert_eq!(registry.len(), 23);
    for bench in registry.iter() {
        let meta = bench.meta();
        let nodes = match meta.id {
            BenchmarkId::Ior => 65, // hard-rule-safe and easy-valid
            BenchmarkId::Stream | BenchmarkId::Amber => 1,
            _ => bench.reference_nodes().min(16),
        };
        let nodes = (1..=nodes)
            .rev()
            .find(|&n| bench.validate_nodes(n).is_ok())
            .expect("some valid node count");
        let out = bench
            .run(&RunConfig::test(nodes))
            .unwrap_or_else(|e| panic!("{} failed: {e}", meta.id.name()));
        assert!(
            out.verification.passed(),
            "{} failed verification: {:?}",
            meta.id.name(),
            out.verification
        );
        assert!(out.virtual_time_s > 0.0, "{}", meta.id.name());
        assert!(out.virtual_time_s.is_finite(), "{}", meta.id.name());
    }
}

/// Base benchmarks yield time metrics; synthetic ones use their own FOM
/// classes (§II-C: synthetic benchmarks are "evaluated distinctly").
#[test]
fn fom_classes_match_categories() {
    let registry = full_registry();
    for bench in registry.by_category(Category::Base) {
        let nodes = (1..=bench.reference_nodes().min(16))
            .rev()
            .find(|&n| bench.validate_nodes(n).is_ok())
            .unwrap();
        let out = bench.run(&RunConfig::test(nodes)).unwrap();
        assert!(
            out.fom.time_metric().is_some(),
            "{} must normalize to a time metric",
            bench.meta().id.name()
        );
    }
    let synthetic_foms: Vec<_> = registry
        .by_category(Category::Synthetic)
        .map(|b| {
            let nodes = match b.meta().id {
                BenchmarkId::Ior => 65,
                BenchmarkId::Stream => 1,
                _ => 4,
            };
            let out = b.run(&RunConfig::test(nodes)).unwrap();
            (b.meta().id, out.fom)
        })
        .collect();
    for (id, fom) in synthetic_foms {
        let is_time_free = fom.time_metric().is_none();
        assert!(
            is_time_free,
            "{} should use a synthetic FOM, got {fom:?}",
            id.name()
        );
    }
}

/// Runs are deterministic per seed — the reproducibility requirement.
#[test]
fn runs_are_deterministic_per_seed() {
    let registry = full_registry();
    for id in [
        BenchmarkId::Juqcs,
        BenchmarkId::Nastja,
        BenchmarkId::ChromaQcd,
    ] {
        let bench = registry.get(id).unwrap();
        let a = bench.run(&RunConfig::test(8).with_seed(42)).unwrap();
        let b = bench.run(&RunConfig::test(8).with_seed(42)).unwrap();
        assert_eq!(a.virtual_time_s, b.virtual_time_s, "{}", id.name());
        assert_eq!(a.metrics, b.metrics, "{}", id.name());
    }
}

/// The memory-variant machinery: High-Scaling benchmarks accept their
/// offered variants and reject others.
#[test]
fn high_scaling_variants_are_enforced() {
    let registry = full_registry();
    for bench in registry.by_category(Category::HighScaling) {
        let meta = bench.meta();
        let hs = meta.high_scale.unwrap();
        let nodes = (1..=8)
            .rev()
            .find(|&n| bench.validate_nodes(n).is_ok())
            .unwrap();
        for &v in hs.variants {
            // Variant runs may legitimately fail for memory reasons at a
            // small node count (JUQCS Base needs ≥ 8 nodes), but must not
            // fail with UnsupportedVariant.
            match bench.run(&RunConfig::test(nodes).with_variant(v)) {
                Ok(_) => {}
                Err(SuiteError::UnsupportedVariant { .. }) => {
                    panic!("{} rejected its offered variant {v}", meta.id.name())
                }
                Err(_) => {}
            }
        }
    }
}

/// Bench-scale runs exercise the larger real-execution workloads and
/// still verify (the `WorkloadScale` axis of every proxy).
#[test]
fn bench_scale_runs_verify() {
    let registry = full_registry();
    for id in [
        BenchmarkId::Juqcs,
        BenchmarkId::NekRs,
        BenchmarkId::PIConGpu,
    ] {
        let bench = registry.get(id).unwrap();
        let nodes = (1..=bench.reference_nodes().min(8))
            .rev()
            .find(|&n| bench.validate_nodes(n).is_ok())
            .unwrap();
        let out = bench.run(&RunConfig::bench(nodes)).unwrap();
        assert!(out.verification.passed(), "{} at bench scale", id.name());
    }
}

/// The virtual-time decomposition is consistent: compute + exposed comm
/// equals the total.
#[test]
fn timing_decomposition_is_consistent() {
    let registry = full_registry();
    for id in [BenchmarkId::Arbor, BenchmarkId::NekRs, BenchmarkId::Gromacs] {
        let bench = registry.get(id).unwrap();
        let out = bench
            .run(&RunConfig::test(bench.reference_nodes().min(8)))
            .unwrap();
        let sum = out.compute_time_s + out.comm_time_s;
        assert!(
            (sum - out.virtual_time_s).abs() < 1e-9 * out.virtual_time_s.max(1.0),
            "{}: {} + {} != {}",
            id.name(),
            out.compute_time_s,
            out.comm_time_s,
            out.virtual_time_s
        );
    }
}
