//! The campaign-service soak drill: many concurrent campaigns across
//! four shards, one shard killed and restored mid-run, byte-identity
//! against an uninterrupted reference, and a full warm resubmission
//! with a non-zero cache hit rate.
//!
//! Campaign count defaults low so the local test run stays fast; CI
//! scales it to a few hundred via `JUBENCH_SOAK_CAMPAIGNS`.

use jubench::ckpt::Checkpointable;
use jubench::prelude::*;
use jubench::serve::{Emit, Frame, ShardState};

/// `JUBENCH_SOAK_CAMPAIGNS`, defaulting to a quick local drill.
fn n_campaigns() -> usize {
    std::env::var("JUBENCH_SOAK_CAMPAIGNS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(16)
}

/// Campaign `i` of the soak population: partition sizes and seeds vary
/// so campaigns spread across shards and share some cache keys.
fn soak_spec(i: usize) -> CampaignSpec {
    let benches = ["STREAM", "OSU", "LinkTest", "HPL"];
    let nodes = [8u32, 16, 24, 48][i % 4];
    let mut spec = CampaignSpec::new(
        &format!("tenant{}", i % 5),
        &format!("soak{i}"),
        nodes,
        i as u64,
    )
    .with_point(RunPoint::test(benches[i % 4], 2, (i / 4) as u64))
    .with_point(RunPoint::test(benches[(i + 1) % 4], 4, (i / 4) as u64));
    spec.slice_s = 10.0;
    spec
}

fn frames_of(emits: &[Emit], campaign: u64) -> Vec<Frame> {
    emits
        .iter()
        .filter_map(|e| match &e.frame {
            Frame::Row { campaign: c, .. }
            | Frame::JobDone { campaign: c, .. }
            | Frame::Done { campaign: c, .. }
                if *c == campaign =>
            {
                Some(e.frame.clone())
            }
            _ => None,
        })
        .collect()
}

/// Project a campaign's frames down to the deterministic artifacts
/// (rows, job completions, table, trace) — dropping the run report,
/// whose out-of-band cache tallies legitimately differ warm vs cold.
fn deterministic_frames(frames: &[Frame]) -> Vec<Frame> {
    frames
        .iter()
        .map(|f| match f {
            Frame::Done {
                campaign,
                table,
                chrome_trace,
                ..
            } => Frame::Done {
                campaign: *campaign,
                table: table.clone(),
                chrome_trace: chrome_trace.clone(),
                report: String::new(),
            },
            other => other.clone(),
        })
        .collect()
}

#[test]
fn soak_kill_restore_and_warm_resubmission() {
    let registry = full_registry();
    let n = n_campaigns();
    let submit_all = |server: &mut Server| -> Vec<u64> {
        (0..n)
            .map(|i| {
                server
                    .submit(1 + (i % 3) as u64, soak_spec(i), &registry)
                    .unwrap()
                    .0
            })
            .collect()
    };

    // The uninterrupted reference run.
    let mut reference = Server::new(4, 256);
    let ref_ids = submit_all(&mut reference);
    let ref_emits = reference.drain(&registry);

    // The trial run: advance partway, kill shard 1 (snapshot → drop →
    // restore into a shard built with wrong parameters), then finish on
    // dedicated rank threads.
    let mut trial = Server::new(4, 256);
    let trial_ids = submit_all(&mut trial);
    let mut trial_emits = Vec::new();
    for _ in 0..n {
        trial_emits.extend(trial.step(&registry));
    }
    let snapshot = trial.shard(1).snapshot();
    *trial.shard_mut(1) = ShardState::new(77, 1);
    trial.shard_mut(1).restore(&snapshot).unwrap();
    trial_emits.extend(trial.drain_parallel(&registry));

    assert_eq!(ref_ids, trial_ids);
    for &id in &ref_ids {
        assert_eq!(
            frames_of(&ref_emits, id),
            frames_of(&trial_emits, id),
            "campaign {id} diverged after the shard kill/restore"
        );
    }

    // Resubmit the full population against the warm trial server: the
    // deterministic frames repeat byte-for-byte and the caches hit.
    let hits_before: u64 = (0..4).map(|s| trial.shard(s).cache().stats().hits).sum();
    let warm_ids = submit_all(&mut trial);
    let warm_emits = trial.drain_parallel(&registry);
    for (&cold_id, &warm_id) in ref_ids.iter().zip(&warm_ids) {
        let mut expected = deterministic_frames(&frames_of(&ref_emits, cold_id));
        // The resubmitted campaign carries a fresh id; rewrite the
        // reference ids before comparing.
        for frame in &mut expected {
            match frame {
                Frame::Row { campaign, .. }
                | Frame::JobDone { campaign, .. }
                | Frame::Done { campaign, .. } => *campaign = warm_id,
                _ => {}
            }
        }
        assert_eq!(
            deterministic_frames(&frames_of(&warm_emits, warm_id)),
            expected,
            "warm campaign {warm_id} diverged from its cold run {cold_id}"
        );
    }
    let hits_after: u64 = (0..4).map(|s| trial.shard(s).cache().stats().hits).sum();
    assert!(
        hits_after > hits_before,
        "warm resubmission produced no cache hits ({hits_before} → {hits_after})"
    );
}
