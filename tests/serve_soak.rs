//! The campaign-service soak drill: a large multi-tenant campaign
//! population across four shards, driven through kill/restore, a seeded
//! chaos plan (injected shard crashes and a straggler) under
//! supervision, and per-tenant admission quotas — ending in byte-
//! identity against an uninterrupted fault-free reference and a full
//! warm resubmission with a non-zero cache hit rate.
//!
//! Campaign count defaults low so the local test run stays fast; CI
//! scales it to 2000 via `JUBENCH_SOAK_CAMPAIGNS`, and the serve-chaos
//! matrix flips the fault plan off via `JUBENCH_CHAOS=0` to pin that
//! supervision alone is byte-transparent.

use jubench::ckpt::Checkpointable;
use jubench::prelude::*;
use jubench::serve::{Emit, Frame, ShardState, SupervisorConfig};

/// `JUBENCH_SOAK_CAMPAIGNS`, defaulting to a quick local drill.
fn n_campaigns() -> usize {
    std::env::var("JUBENCH_SOAK_CAMPAIGNS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(16)
}

/// `JUBENCH_CHAOS` (default on): `0`/`false` runs the supervised drain
/// with no fault plan — the no-chaos arm of the CI serve-chaos matrix,
/// pinning that supervision itself is byte-transparent.
fn chaos_enabled() -> bool {
    !matches!(
        std::env::var("JUBENCH_CHAOS").as_deref(),
        Ok("0") | Ok("false")
    )
}

/// Campaign `i` of the soak population: partition sizes and seeds vary
/// so campaigns spread across shards and share some cache keys, and the
/// tenant cycles through five names so quotas see real contention.
fn soak_spec(i: usize) -> CampaignSpec {
    let benches = ["STREAM", "OSU", "LinkTest", "HPL"];
    let nodes = [8u32, 16, 24, 48][i % 4];
    let mut spec = CampaignSpec::new(
        &format!("tenant{}", i % 5),
        &format!("soak{i}"),
        nodes,
        i as u64,
    )
    .with_point(RunPoint::test(benches[i % 4], 2, (i / 4) as u64))
    .with_point(RunPoint::test(benches[(i + 1) % 4], 4, (i / 4) as u64));
    spec.slice_s = 10.0;
    spec
}

fn frames_of(emits: &[Emit], campaign: u64) -> Vec<Frame> {
    emits
        .iter()
        .filter_map(|e| match &e.frame {
            Frame::Row { campaign: c, .. }
            | Frame::JobDone { campaign: c, .. }
            | Frame::Done { campaign: c, .. }
                if *c == campaign =>
            {
                Some(e.frame.clone())
            }
            _ => None,
        })
        .collect()
}

/// Project a campaign's frames down to the deterministic artifacts
/// (rows, job completions, table, trace) — dropping the run report,
/// whose out-of-band cache/guard tallies legitimately differ warm vs
/// cold and chaotic vs clean.
fn deterministic_frames(frames: &[Frame]) -> Vec<Frame> {
    frames
        .iter()
        .map(|f| match f {
            Frame::Done {
                campaign,
                table,
                chrome_trace,
                ..
            } => Frame::Done {
                campaign: *campaign,
                table: table.clone(),
                chrome_trace: chrome_trace.clone(),
                report: String::new(),
            },
            other => other.clone(),
        })
        .collect()
}

/// Silence the panic backtraces of deliberately injected chaos crashes
/// (they are caught and recovered; the default hook would spam stderr).
fn quiet_chaos_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let chaos = info
                .payload()
                .downcast_ref::<String>()
                .map(|s| s.starts_with("chaos:"))
                .unwrap_or(false);
            if !chaos {
                default(info);
            }
        }));
    });
}

#[test]
fn soak_kill_restore_chaos_and_warm_resubmission() {
    quiet_chaos_panics();
    let registry = full_registry();
    let n = n_campaigns();
    // Cache capacity scales with the population: this drill pins
    // supervision and warm-hit behavior, not eviction pressure (which
    // has its own deterministic-eviction test).
    let cache_cap = 2 * n + 64;
    let submit_all = |server: &mut Server| -> Vec<u64> {
        (0..n)
            .map(|i| {
                server
                    .submit(1 + (i % 3) as u64, soak_spec(i), &registry)
                    .unwrap()
                    .0
            })
            .collect()
    };

    // The uninterrupted fault-free reference run.
    let mut reference = Server::new(4, cache_cap);
    let ref_ids = submit_all(&mut reference);
    let ref_emits = reference.drain(&registry).unwrap();

    // The trial run: advance partway, kill shard 1 (snapshot → drop →
    // restore into a shard built with wrong parameters), then finish on
    // dedicated rank threads under supervision with a seeded chaos plan
    // crashing every shard's worker once plus a scattered tail and a
    // straggler.
    let mut trial = Server::new(4, cache_cap);
    let trial_ids = submit_all(&mut trial);
    let mut trial_emits = Vec::new();
    for _ in 0..n.min(64) {
        trial_emits.extend(trial.step(&registry).unwrap());
    }
    let snapshot = trial.shard(1).snapshot();
    *trial.shard_mut(1) = ShardState::new(77, 1);
    trial.shard_mut(1).restore(&snapshot).unwrap();
    let chaos = chaos_enabled().then(|| {
        ChaosPlan::scattered(0xD15EA5E, 4, 6, 40)
            .with_shard_crash(0, 1)
            .with_shard_crash(1, 2)
            .with_shard_crash(2, 1)
            .with_shard_crash(3, 3)
            .with_straggler(2)
    });
    let cfg = SupervisorConfig {
        max_restarts: chaos.as_ref().map_or(1, |c| c.crash_count() as u32 + 1),
        ..SupervisorConfig::default()
    };
    let outcome = trial
        .drain_supervised_parallel(&registry, &cfg, chaos.as_ref())
        .unwrap();
    assert!(
        !outcome.degraded(),
        "restart budget should absorb the chaos plan: {:?}",
        outcome.failed_shards
    );
    if chaos.is_some() {
        assert!(
            outcome.restarts > 0,
            "the chaos plan must actually fire at least one crash"
        );
    } else {
        assert_eq!(outcome.restarts, 0, "no chaos, no restarts");
    }
    trial_emits.extend(outcome.emits);

    // Rows, job completions, tables, and traces are byte-identical;
    // the run report legitimately differs — it carries the out-of-band
    // guard tallies of the restarts the chaos plan forced.
    assert_eq!(ref_ids, trial_ids);
    for &id in &ref_ids {
        assert_eq!(
            deterministic_frames(&frames_of(&ref_emits, id)),
            deterministic_frames(&frames_of(&trial_emits, id)),
            "campaign {id} diverged after kill/restore + supervised chaos"
        );
    }

    // Resubmit the full population against the warm trial server: the
    // deterministic frames repeat byte-for-byte and the caches hit.
    let hits_before: u64 = (0..4).map(|s| trial.shard(s).cache().stats().hits).sum();
    let warm_ids = submit_all(&mut trial);
    let warm_emits = trial.drain_parallel(&registry).unwrap();
    for (&cold_id, &warm_id) in ref_ids.iter().zip(&warm_ids) {
        let mut expected = deterministic_frames(&frames_of(&ref_emits, cold_id));
        // The resubmitted campaign carries a fresh id; rewrite the
        // reference ids before comparing.
        for frame in &mut expected {
            match frame {
                Frame::Row { campaign, .. }
                | Frame::JobDone { campaign, .. }
                | Frame::Done { campaign, .. } => *campaign = warm_id,
                _ => {}
            }
        }
        assert_eq!(
            deterministic_frames(&frames_of(&warm_emits, warm_id)),
            expected,
            "warm campaign {warm_id} diverged from its cold run {cold_id}"
        );
    }
    let hits_after: u64 = (0..4).map(|s| trial.shard(s).cache().stats().hits).sum();
    assert!(
        hits_after > hits_before,
        "warm resubmission produced no cache hits ({hits_before} → {hits_after})"
    );
}

#[test]
fn soak_admission_quotas_account_every_rejection() {
    let registry = full_registry();
    let n = n_campaigns();
    // Five tenants share the population; each may hold at most two
    // campaigns (four point tokens) at once.
    let mut server = Server::new(4, 2 * n + 64).with_admission(AdmissionConfig {
        max_active_per_tenant: 2,
        token_capacity: 4,
        max_points_per_campaign: 8,
    });
    let mut admitted = Vec::new();
    let mut rejected = 0usize;
    let mut emits = Vec::new();
    for i in 0..n {
        match server.submit(1, soak_spec(i), &registry) {
            Ok((id, _)) => admitted.push(id),
            Err(rejection) => {
                // Typed, attributed, and displayable — never a panic.
                assert_eq!(rejection.tenant, format!("tenant{}", i % 5));
                assert!(!rejection.to_string().is_empty());
                rejected += 1;
            }
        }
        // Retiring campaigns refunds their quota charge, so draining
        // lets the next batch of the same tenants back in. The window
        // is longer than `5 tenants × 2 slots`, so some tenant always
        // overflows its quota within it.
        if i % 12 == 11 {
            emits.extend(server.drain(&registry).unwrap());
        }
    }
    emits.extend(server.drain(&registry).unwrap());
    assert_eq!(admitted.len() + rejected, n, "every submit is accounted");
    assert!(rejected > 0, "quotas this tight must reject something");
    let done = emits
        .iter()
        .filter(|e| matches!(e.frame, Frame::Done { .. }))
        .count();
    assert_eq!(done, admitted.len(), "every admitted campaign completes");
    for t in 0..5 {
        let usage = server.admission().usage(&format!("tenant{t}"));
        assert_eq!(
            (usage.active, usage.tokens),
            (0, 0),
            "tenant{t} still charged after all campaigns retired"
        );
    }
}
