//! The batch-scheduling layer end to end: determinism of the schedule
//! log, the placement → congestion → makespan coupling, and a
//! full-registry campaign flowing into the scaling table, the run
//! report, and the Chrome trace export.

use jubench::prelude::*;
use jubench::scaling::campaign::campaign_table;
use jubench::sched::{registry_jobs, run_campaign, Schedule};
use jubench::trace::RunReport;
use std::sync::Arc;

fn backfill(placement: PlacementPolicy) -> SchedulerConfig {
    SchedulerConfig::new(QueuePolicy::ConservativeBackfill, placement, 42)
}

/// A workload whose jobs are communication-heavy and big enough that a
/// scattered allocation spans past the congestion onset.
fn congested_jobs() -> Vec<Job> {
    (0..6u32)
        .map(|i| {
            Job::new(i, &format!("job-{i}"), 96, 2.0)
                .with_comm_fraction(0.6)
                .with_submit(f64::from(i) * 0.1)
        })
        .collect()
}

#[test]
fn identical_inputs_give_bit_identical_schedule_logs() {
    let jobs = congested_jobs();
    let run = || {
        Scheduler::new(
            Machine::juwels_booster().partition(192),
            NetModel::juwels_booster(),
            backfill(PlacementPolicy::Contiguous),
        )
        .run(&jobs, &FaultPlan::new(3))
    };
    let (a, b) = (run(), run());
    assert!(!a.log.is_empty());
    assert_eq!(a.log, b.log, "same seed and job set ⇒ same decisions");
    assert_eq!(a.makespan_s, b.makespan_s);
}

#[test]
fn contiguous_placement_beats_scatter_across_cells() {
    // Booster-sized partition: 13 cells, scattered 96-node jobs span the
    // whole 624 nodes and cross the 256-node congestion onset.
    let jobs = congested_jobs();
    let run = |placement| -> Schedule {
        Scheduler::new(
            Machine::juwels_booster().partition(624),
            NetModel::juwels_booster(),
            backfill(placement),
        )
        .run(&jobs, &FaultPlan::new(3))
    };
    let contiguous = run(PlacementPolicy::Contiguous);
    let scatter = run(PlacementPolicy::Scatter);
    for s in [&contiguous, &scatter] {
        assert_eq!(s.finished(), jobs.len(), "every job completes");
    }
    assert!(
        contiguous.makespan_s < scatter.makespan_s,
        "contiguous {} !< scatter {}",
        contiguous.makespan_s,
        scatter.makespan_s
    );
    // The schedule records show why: scattered attempts run slowed down.
    let max_slowdown = |s: &Schedule| {
        s.records
            .iter()
            .flat_map(|r| r.attempts.iter().map(|a| a.slowdown))
            .fold(1.0f64, f64::max)
    };
    assert_eq!(max_slowdown(&contiguous), 1.0, "single-cell placements");
    assert!(max_slowdown(&scatter) > 1.0);
}

#[test]
fn full_registry_campaign_reports_and_exports() {
    let registry = full_registry();
    let jobs = registry_jobs(&registry, 0.05);
    assert_eq!(jobs.len(), registry.len(), "one job per benchmark");
    let schedule = run_campaign(
        Machine::juwels_booster().partition(624),
        NetModel::juwels_booster(),
        backfill(PlacementPolicy::Contiguous),
        &jobs,
        &FaultPlan::new(0),
    );
    assert_eq!(schedule.finished(), jobs.len());

    // The campaign report carries utilization and waits for every job.
    let rendered = schedule.render();
    assert!(rendered.contains("utilization"));
    assert!(rendered.contains("wait"));
    for job in &jobs {
        assert!(rendered.contains(&job.name), "{} missing", job.name);
    }

    // Scheduler events flow into the run report…
    let rec = Arc::new(Recorder::new());
    schedule.emit(rec.as_ref());
    let events = rec.take_events();
    let report = RunReport::from_events(&events);
    assert_eq!(report.sched.finished as usize, jobs.len());
    assert!(report.sched.busy_node_s > 0.0);
    assert!(report.render().contains("scheduler activity"));

    // …and into the Chrome export, on per-cell tracks.
    let json = chrome_trace_json(&events);
    assert!(json.contains("\"cell 0\""), "cell process names");
    assert!(json.contains("\"sched\""), "sched category");
    assert!(json.contains("job-wait") && json.contains("job-run"));
}

#[test]
fn campaign_study_table_couples_placement_to_makespan() {
    let table = campaign_table(&full_registry(), &[624], 0.05, 7);
    let rendered = table.render();
    assert!(rendered.contains("| nodes | placement"));
    assert!(rendered.contains("contiguous") && rendered.contains("scatter"));
    let by = |p: PlacementPolicy| table.points.iter().find(|x| x.placement == p).unwrap();
    let (c, s) = (
        by(PlacementPolicy::Contiguous),
        by(PlacementPolicy::Scatter),
    );
    assert!(c.makespan_s <= s.makespan_s * (1.0 + 1e-9));
    assert!(c.utilization > 0.0 && s.utilization > 0.0);
}

#[test]
fn faulted_campaign_still_finishes_with_retries() {
    // Drain two nodes mid-campaign: affected jobs are preempted, requeued
    // under their retry policy, and the campaign still completes.
    let jobs = congested_jobs();
    let plan = FaultPlan::new(1)
        .with_slow_node_window(5, 2.0, 1.0, 3.0)
        .with_slow_node_window(100, 2.0, 1.0, 3.0);
    let schedule = Scheduler::new(
        Machine::juwels_booster().partition(192),
        NetModel::juwels_booster(),
        backfill(PlacementPolicy::Contiguous),
    )
    .run(&jobs, &plan);
    assert_eq!(schedule.finished(), jobs.len());
    let preemptions: u32 = schedule.records.iter().map(|r| r.preemptions()).sum();
    assert!(preemptions > 0, "the drains hit running jobs");
    // The empty-plan control is bit-identical to the fault-free run.
    let run_with = |plan: &FaultPlan| {
        Scheduler::new(
            Machine::juwels_booster().partition(192),
            NetModel::juwels_booster(),
            backfill(PlacementPolicy::Contiguous),
        )
        .run(&jobs, plan)
    };
    assert_eq!(
        run_with(&FaultPlan::new(9)).log,
        run_with(&FaultPlan::new(0)).log
    );
}
