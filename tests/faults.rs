//! Integration tests for the fault-injection subsystem: seeded plans are
//! bit-reproducible end to end, the golden straggler scenario pins its
//! makespan inflation exactly, reliable sends survive drop faults, and
//! crashes surface as errors while the survivors keep their clocks.

use std::sync::Arc;

use jubench::cluster::Machine;
use jubench::prelude::*;
use jubench::simmpi::SimError;
use jubench::trace::TraceEvent;

/// A lossy, degraded, straggling world: every fault class active at once.
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_degraded_link(0, 5, 10.0)
        .with_flapping_link(2, 6, 8.0, 1e-3, 0.5)
        .with_slow_node(1, 3.0)
        // (2, 7) is not a ring-neighbour pair, so the plain ring allreduce
        // below never crosses the lossy edge — only the reliable exchange
        // does.
        .with_message_drop(2, 7, 0.4)
}

/// Allreduce-coupled workload with a reliable exchange on the lossy edge.
fn chaos_workload(comm: &mut Comm) -> f64 {
    let policy = RetryPolicy::new(64, 1e-5);
    comm.advance_compute(1e-3);
    if comm.rank() == 2 {
        let sent = [3.0f64; 32];
        comm.send_f64_reliable(7, &sent, policy).unwrap();
    } else if comm.rank() == 7 {
        let (got, _) = comm.recv_f64_reliable(2, policy).unwrap();
        assert_eq!(got, vec![3.0f64; 32]);
    }
    let mut acc = [comm.rank() as f64; 8];
    comm.allreduce_f64(&mut acc, ReduceOp::Sum).unwrap();
    comm.now()
}

fn chaos_run(seed: u64) -> (Vec<f64>, Vec<TraceEvent>) {
    let rec = Arc::new(Recorder::new());
    let world = World::new(Machine::juwels_booster().partition(2))
        .with_fault_plan(chaos_plan(seed))
        .with_recorder(rec.clone());
    let results = world.run(chaos_workload);
    (
        results.into_iter().map(|r| r.value).collect(),
        rec.take_events(),
    )
}

#[test]
fn identical_seeds_reproduce_the_run_exactly() {
    let (clocks_a, events_a) = chaos_run(42);
    let (clocks_b, events_b) = chaos_run(42);
    assert_eq!(clocks_a, clocks_b, "per-rank finish times bit-identical");
    assert_eq!(events_a, events_b, "full event stream bit-identical");
}

#[test]
fn different_seeds_draw_different_drops() {
    // The drop pattern is the only seeded randomness in the chaos plan;
    // across a handful of seeds at p = 0.4 at least two must differ.
    let reports: Vec<u64> = (0..4u64)
        .map(|seed| {
            let (_, events) = chaos_run(seed);
            RunReport::from_events(&events).faults.dropped_messages
        })
        .collect();
    assert!(
        reports.iter().any(|&d| d != reports[0]),
        "drop counts across seeds: {reports:?}"
    );
}

#[test]
fn golden_straggler_inflation_is_exactly_the_slowdown() {
    // Compute-only workload, one node slowed 4×: the critical path is the
    // straggler's stretched compute, so the makespan inflates by exactly
    // the slowdown factor — no tolerance.
    let machine = Machine::juwels_booster().partition(2);
    let workload = |comm: &mut Comm| comm.advance_compute(0.5);
    let (_, base) = World::new(machine).run_timed(workload);
    let plan = FaultPlan::new(7).with_slow_node(1, 4.0);
    let (_, faulted) = World::new(machine)
        .with_fault_plan(plan)
        .run_timed(workload);
    assert_eq!(base.total_s(), 0.5);
    assert_eq!(faulted.total_s() / base.total_s(), 4.0);
}

#[test]
fn report_attributes_the_inflation_to_the_fault() {
    let run = |plan: Option<FaultPlan>| {
        let rec = Arc::new(Recorder::new());
        let mut world =
            World::new(Machine::juwels_booster().partition(2)).with_recorder(rec.clone());
        if let Some(p) = plan {
            world = world.with_fault_plan(p);
        }
        world.run(|comm| {
            comm.advance_compute(2e-3);
            let mut acc = [1.0f64; 4];
            comm.allreduce_f64(&mut acc, ReduceOp::Sum).unwrap();
        });
        RunReport::from_events(&rec.take_events())
    };
    let baseline = run(None);
    // A straggler node plus a degraded ring link: the straggler dominates
    // the makespan; the degraded sends make the fault observable in the
    // report's event tally (a stretched compute span alone leaves no
    // fault-marked events).
    let plan = FaultPlan::new(1)
        .with_slow_node(0, 5.0)
        .with_degraded_link(3, 4, 2.0);
    let faulted = run(Some(plan));
    assert!(!baseline.faults.any());
    assert!(faulted.faults.degraded_sends > 0);
    let inflation = faulted.makespan_inflation(&baseline);
    assert!(inflation > 3.0, "straggler must dominate: {inflation}");
    assert!(faulted.render().contains("faults observed"));
}

#[test]
fn checkpointing_shrinks_the_makespan_inflation_of_a_preempted_job() {
    // The scheduler-level companion of the straggler golden test: a
    // drain window preempts a long job mid-run. Without checkpoints the
    // retry restarts from zero; with them it resumes from the last
    // write. Each variant's inflation is measured against its own
    // fault-free baseline report (the checkpointing baseline already
    // carries the write overhead), so the shrink isolates the banked
    // progress.
    use jubench::cluster::NetModel;
    let report = |ckpt: bool, plan: &FaultPlan| {
        let mut job = Job::new(0, "victim", 8, 8.0).with_retry(RetryPolicy::new(3, 0.5));
        if ckpt {
            job = job.with_checkpointing(1.0, 0.01);
        }
        let schedule = Scheduler::new(
            Machine::juwels_booster().partition(8),
            NetModel::juwels_booster(),
            SchedulerConfig::new(
                QueuePolicy::ConservativeBackfill,
                PlacementPolicy::Contiguous,
                7,
            ),
        )
        .run(&[job], plan);
        let rec = Recorder::new();
        schedule.emit(&rec);
        RunReport::from_events(&rec.take_events())
    };
    let empty = FaultPlan::new(7);
    let drain = FaultPlan::new(7).with_slow_node_window(3, 8.0, 6.0, 7.0);
    let plain = report(false, &drain).makespan_inflation(&report(false, &empty));
    let ckpt = report(true, &drain).makespan_inflation(&report(true, &empty));
    assert!(plain > 1.0, "the drain must cost something: {plain}");
    assert!(
        ckpt < plain,
        "checkpointing must shrink the inflation: {ckpt} !< {plain}"
    );
    let faulted = report(true, &drain);
    assert!(faulted.ckpt.restores >= 1, "the resume must be visible");
    assert!(faulted.ckpt.lost_work_s > 0.0);
    assert!(faulted.render().contains("checkpoint activity"));
}

#[test]
fn reliable_send_defeats_a_lossy_link() {
    // At p = 0.9 a bare send usually times out; eight attempts make the
    // exchange dependable, and both sides agree on the attempt count.
    let plan = FaultPlan::new(11).with_message_drop(0, 1, 0.9);
    let world = World::new(Machine::juwels_booster().partition(1)).with_fault_plan(plan);
    let policy = RetryPolicy::new(64, 1e-6);
    let results = world.run(move |comm| match comm.rank() {
        0 => comm.send_f64_reliable(1, &[9.0; 16], policy).unwrap(),
        1 => {
            let (got, attempts) = comm.recv_f64_reliable(0, policy).unwrap();
            assert_eq!(got, vec![9.0; 16]);
            attempts
        }
        _ => 0,
    });
    assert_eq!(results[0].value, results[1].value, "attempt counts agree");
    assert!(results[0].value >= 1);
}

#[test]
fn crashed_rank_errors_and_survivors_keep_clocks() {
    let plan = FaultPlan::new(5).with_rank_crash(2, 1e-3);
    let world = World::new(Machine::juwels_booster().partition(1)).with_fault_plan(plan);
    let results = world.run(|comm| {
        comm.advance_compute(5e-3); // carries rank 2 past its crash time
        let r = comm.send_f64((comm.rank() + 1) % 4, &[1.0]);
        let _ = comm.recv_f64((comm.rank() + 3) % 4);
        r
    });
    assert_eq!(
        results[2].value,
        Err(SimError::RankCrashed { rank: 2 }),
        "the crashed rank reports its own death"
    );
    for r in results.iter().filter(|r| r.rank != 2) {
        assert!(r.clock.total_s() > 0.0, "rank {} kept its clock", r.rank);
    }
}
