//! # jubench — a Rust reproduction of the JUPITER Benchmark Suite
//!
//! This crate is the facade over the workspace implementing
//! *"Application-Driven Exascale: The JUPITER Benchmark Suite"* (Herten et
//! al., SC 2024): the 23 benchmarks (16 applications + 7 synthetic codes),
//! the JUBE-like workflow engine, the machine/network model substituting
//! the JUWELS Booster preparation system, the simulated MPI runtime, and
//! the TCO/value-for-money procurement methodology.
//!
//! ## Quick start
//!
//! ```
//! use jubench::prelude::*;
//!
//! // Run the JUQCS Base benchmark (n = 36 qubits) on an 8-node partition
//! // of the modeled JUWELS Booster.
//! let registry = jubench::scaling::full_registry();
//! let juqcs = registry.get(BenchmarkId::Juqcs).unwrap();
//! let out = juqcs.run(&RunConfig::test(8)).unwrap();
//! assert!(out.verification.passed());
//! assert_eq!(out.metric("qubits"), Some(36.0));
//! ```
//!
//! ## Crate map
//!
//! - [`core`]: suite abstractions — [`prelude::Benchmark`], FOMs,
//!   categories, dwarfs, Tables I/II metadata.
//! - [`jube`]: the workflow engine (parameters, tags, steps, result
//!   tables).
//! - [`cluster`]: the machine, topology, network, and roofline models.
//! - [`simmpi`]: the simulated MPI runtime with virtual-time clocks.
//! - [`faults`]: deterministic fault injection — seeded fault plans
//!   (degraded/flapping links, stragglers, message drops, rank crashes)
//!   and the retry policies that make runs resilient to them.
//! - [`kernels`]: shared numerics (FFT, LU, CG, multigrid, stencils).
//! - `apps_*`: the sixteen application proxies.
//! - [`synthetic`]: the seven synthetic benchmarks.
//! - [`procurement`]: TCO, commitments, High-Scaling assessment.
//! - [`scaling`]: the Fig. 2 / Fig. 3 studies and table renderers.
//! - [`sched`]: the topology-aware batch scheduler and suite campaign
//!   runner — placement policies, conservative backfill, fault-driven
//!   preemption, utilization/fairness reporting.
//! - [`trace`]: virtual-time tracing — structured events from the
//!   runtime and workflow engine, run reports, Chrome trace export.
//! - [`pool`]: the deterministic work-stealing thread pool every sweep
//!   runs on — ordered `par_map_indexed`, structured `scope`, counted
//!   dedicated rank threads, and the `JUBENCH_POOL_THREADS` knob.
//! - [`ckpt`]: checkpoint/restart — the versioned, checksummed snapshot
//!   envelope, the `Checkpointable` trait implemented by the iterative
//!   apps, the workflow, and the scheduler, and the Young/Daly
//!   optimal-interval formulas.
//! - [`serve`]: the multi-tenant campaign service — a deterministic
//!   long-running daemon sharding campaigns across worker shards, with
//!   a content-addressed result cache in front of execution, a
//!   length-prefixed wire protocol, incremental result streaming, and
//!   crash-safe durability via `ckpt` snapshots (kill/restore and live
//!   migration are byte-transparent). Guarded by an admission gate
//!   (per-tenant quotas, typed rejections), a shard supervisor
//!   (restore-and-retry with seeded bounded backoff, typed-cancellation
//!   degrade), and a deterministic chaos harness (seeded crash points,
//!   stragglers, wire faults).
//! - [`metrics`]: wall-clock self-observability — the sharded metrics
//!   registry (counters/gauges/histograms), `profile_scope!` collapsed-
//!   stack self-profiles, `BENCH_<n>.json` perf records, and the
//!   regression gate. Observational only; the `JUBENCH_METRICS=0` kill
//!   switch disables recording at runtime.
//! - [`fleet`]: the heterogeneous machine catalog and the cross-backend
//!   fleet study — the full suite executed on every catalog backend via
//!   [`serve`], condensed into FOM/composite-score/value-for-money
//!   tables with 1 EFLOP/s sub-partition extrapolation.
//! - [`events`]: the discrete-event core — the deterministic
//!   timestamped event queue (total-order tie-breaking on
//!   `(time, class, rank, seq)`), multi-queue merge, and event sources
//!   that let [`sched`] and [`simmpi`] pop next-event instead of
//!   stepping virtual time.

pub use jubench_apps_ai as apps_ai;
pub use jubench_apps_bio as apps_bio;
pub use jubench_apps_cfd as apps_cfd;
pub use jubench_apps_common as apps_common;
pub use jubench_apps_earth as apps_earth;
pub use jubench_apps_lattice as apps_lattice;
pub use jubench_apps_materials as apps_materials;
pub use jubench_apps_md as apps_md;
pub use jubench_apps_neuro as apps_neuro;
pub use jubench_apps_plasma as apps_plasma;
pub use jubench_apps_quantum as apps_quantum;
pub use jubench_ckpt as ckpt;
pub use jubench_cluster as cluster;
pub use jubench_continuous as continuous;
pub use jubench_core as core;
pub use jubench_events as events;
pub use jubench_faults as faults;
pub use jubench_fleet as fleet;
pub use jubench_jube as jube;
pub use jubench_kernels as kernels;
pub use jubench_metrics as metrics;
pub use jubench_metrics::profile_scope;
pub use jubench_pool as pool;
pub use jubench_procurement as procurement;
pub use jubench_scaling as scaling;
pub use jubench_sched as sched;
pub use jubench_serve as serve;
pub use jubench_simmpi as simmpi;
pub use jubench_synthetic as synthetic;
pub use jubench_trace as trace;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use jubench_ckpt::{Checkpointable, CkptError};
    pub use jubench_cluster::{Machine, NetModel, Placement, Roofline, Work};
    pub use jubench_core::{
        suite_meta, Benchmark, BenchmarkId, Category, Fom, MemoryVariant, Registry, RunConfig,
        RunOutcome, SuiteError, TimeMetric, VerificationOutcome,
    };
    pub use jubench_faults::{FaultPlan, RetryPolicy};
    pub use jubench_jube::{ParameterSet, ResultTable, Step, Workflow};
    pub use jubench_metrics::MetricsSnapshot;
    pub use jubench_procurement::{Commitment, Proposal, ReferenceSet, TcoModel};
    pub use jubench_scaling::full_registry;
    pub use jubench_sched::{Job, PlacementPolicy, QueuePolicy, Scheduler, SchedulerConfig};
    pub use jubench_serve::{
        AdmissionConfig, CampaignSpec, ChaosPlan, Rejection, RunPoint, ServeError, Server,
        SupervisorConfig,
    };
    pub use jubench_simmpi::{Comm, ReduceOp, World};
    pub use jubench_trace::{chrome_trace_json, Recorder, RunReport, TraceSink};
}
